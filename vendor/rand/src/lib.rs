//! Offline vendored subset of the `rand` crate API.
//!
//! This workspace builds in environments with no network access and no
//! crates.io mirror, so the external `rand` dependency is replaced by this
//! minimal, dependency-free implementation of exactly the surface the
//! workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], the
//! [`RngExt`] sampling helpers and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — a solid,
//! well-studied non-cryptographic PRNG. Streams are deterministic per seed
//! (all simulation results in this repo are reproducible) but are *not*
//! byte-compatible with upstream `rand`'s `StdRng`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling over a range type, used by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply range reduction (Lemire, bias < 2^-64).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_int_range!(u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (half-open or inclusive, ints or `f64`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.random_range(0u32..1000) != c.random_range(0u32..1000));
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
