//! Offline vendored subset of the `rayon` API.
//!
//! Implements exactly the data-parallel surface this workspace uses —
//! `slice.par_iter().map(..)` / `.map_init(..)` followed by standard
//! iterator adaptors — on top of `std::thread::scope`. The input slice is
//! split into one contiguous chunk per available core; each worker maps its
//! chunk into a local vector and the results are concatenated in input
//! order, so the output is deterministic and identical to the sequential
//! result.
//!
//! Unlike upstream rayon there is no work-stealing pool: tasks are
//! coarse-grained per-chunk threads, which matches this repo's workloads
//! (thousands of independent simulations of comparable cost).

use std::num::NonZeroUsize;

/// Number of worker threads: `RAYON_NUM_THREADS` when set to a positive
/// integer (matching upstream rayon's global-pool override, which the
/// `bgpsim` CLI uses for `--jobs`), otherwise the machine's available
/// parallelism.
fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of worker threads parallel regions will use, matching
/// upstream rayon's `current_num_threads`: the `RAYON_NUM_THREADS`
/// override when set, otherwise the machine's available parallelism. The
/// `bgpsim` CLI records this in run manifests so `--jobs 0` resolves to
/// the actual worker count instead of the literal zero.
#[must_use]
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Runs `f` over every element of `items` on all cores, preserving input
/// order in the returned vector.
fn parallel_map<'a, T, I, R, FI, F>(items: &'a [T], init: FI, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> I + Sync,
    F: Fn(&mut I, &'a T) -> R + Sync,
{
    let n = items.len();
    let workers = num_threads().min(n).max(1);
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    // Ceiling-divided contiguous chunks: worker k maps chunk k, and the
    // chunk results are concatenated in order afterwards.
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(|| {
                    let mut state = init();
                    part.iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-stub worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A pending parallel iteration over a slice.
///
/// Adaptors evaluate eagerly (in parallel) and hand back a standard
/// [`std::vec::IntoIter`], so any further `Iterator` combinators —
/// `flatten`, `filter`, `collect` — compose as usual.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; order-preserving.
    pub fn map<R, F>(self, f: F) -> std::vec::IntoIter<R>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        parallel_map(self.items, || (), |(), item| f(item)).into_iter()
    }

    /// Parallel map with one lazily-created state per worker (rayon's
    /// `map_init`): `init` runs once per worker thread and the state is
    /// reused across that worker's whole chunk.
    pub fn map_init<I, R, FI, F>(self, init: FI, f: F) -> std::vec::IntoIter<R>
    where
        R: Send,
        FI: Fn() -> I + Sync,
        F: Fn(&mut I, &'a T) -> R + Sync,
    {
        parallel_map(self.items, init, f).into_iter()
    }
}

/// Extension trait providing `par_iter` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// A parallel iterator borrowing the collection's elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_and_flattens() {
        let input: Vec<u32> = (0..1000).collect();
        let out: Vec<u32> = input
            .par_iter()
            .map_init(
                || 0u32,
                |counter, &x| {
                    *counter += 1;
                    if x % 2 == 0 {
                        Some(x)
                    } else {
                        None
                    }
                },
            )
            .flatten()
            .collect();
        assert_eq!(out, (0..1000).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
