//! Offline vendored subset of the `petgraph` API.
//!
//! Provides the small interop surface this workspace uses:
//! [`graph::UnGraph`] construction (`with_capacity`, `add_node`,
//! `add_edge`, `node_count`, `edge_count`) and
//! [`algo::connected_components`].

pub mod graph {
    /// Identifier of a node in a [`Graph`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct NodeIndex(pub usize);

    impl NodeIndex {
        /// The underlying index.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Identifier of an edge in a [`Graph`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct EdgeIndex(pub usize);

    /// Marker type: undirected edges.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Undirected;

    /// An adjacency-list graph with node weights `N` and edge weights `E`.
    /// Only the undirected flavor is implemented.
    #[derive(Debug, Clone, Default)]
    pub struct Graph<N, E, Ty = Undirected> {
        nodes: Vec<N>,
        edges: Vec<(usize, usize, E)>,
        _ty: std::marker::PhantomData<Ty>,
    }

    /// Undirected graph alias matching petgraph's.
    pub type UnGraph<N, E> = Graph<N, E, Undirected>;

    impl<N, E, Ty> Graph<N, E, Ty> {
        /// An empty graph with reserved capacity.
        pub fn with_capacity(nodes: usize, edges: usize) -> Self {
            Graph {
                nodes: Vec::with_capacity(nodes),
                edges: Vec::with_capacity(edges),
                _ty: std::marker::PhantomData,
            }
        }

        /// Adds a node carrying `weight`, returning its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            NodeIndex(self.nodes.len() - 1)
        }

        /// Adds an edge between `a` and `b` carrying `weight`.
        ///
        /// # Panics
        ///
        /// Panics if either endpoint is out of range.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len());
            self.edges.push((a.0, b.0, weight));
            EdgeIndex(self.edges.len() - 1)
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        pub(crate) fn edge_endpoints_raw(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
            self.edges.iter().map(|&(a, b, _)| (a, b))
        }
    }
}

pub mod algo {
    use crate::graph::Graph;

    /// Number of connected components of an undirected graph (union-find).
    pub fn connected_components<N, E, Ty>(g: &Graph<N, E, Ty>) -> usize {
        let n = g.node_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut components = n;
        for (a, b) in g.edge_endpoints_raw() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
                components -= 1;
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::algo::connected_components;
    use super::graph::UnGraph;

    #[test]
    fn counts_and_components() {
        let mut g: UnGraph<u32, ()> = UnGraph::with_capacity(4, 2);
        let n: Vec<_> = (0..4).map(|i| g.add_node(i)).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(connected_components(&g), 2); // {0,1,2} and {3}
        g.add_edge(n[2], n[3], ());
        assert_eq!(connected_components(&g), 1);
    }
}
