//! Offline vendored property-testing engine exposing the `proptest` API
//! subset this workspace uses.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `proptest` dependency is replaced by this self-contained
//! implementation: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map`, range / tuple / [`strategy::Just`] /
//! [`prop_oneof!`] / [`collection::vec`] strategies, `prop_assert*`, and a
//! deterministic runner with `.proptest-regressions` seed-file replay.
//!
//! Differences from upstream proptest, by design:
//!
//! * Case generation is seeded deterministically from the test name, so a
//!   failure reproduces on every run without any environment variable.
//! * Failing cases are persisted to the sibling `.proptest-regressions`
//!   file as a seed (first 16 hex digits of the `cc` token) and replayed
//!   before random generation on later runs, like upstream.
//! * There is no shrinking: the failing value is printed in full instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;
        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let first = self.inner.generate(rng);
            (self.f)(first).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (the [`crate::prop_oneof!`]
    /// expansion).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt::Debug;
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    use crate::strategy::Strategy;

    /// Deterministic generator driving all strategies (xoshiro256** seeded
    /// through SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform draw in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified with the given message.
        Fail(String),
        /// The input was rejected (counts against no budget here).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with `reason`.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with `reason`.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Outcome of one test-case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to generate (after regression replay).
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Locates the `.proptest-regressions` file for a `file!()` path.
    ///
    /// `file!()` paths are workspace-relative while test binaries run from
    /// the package root, so the suffix after the last `tests/` or `src/`
    /// component is re-anchored at `CARGO_MANIFEST_DIR`.
    fn regression_path(source_file: &str) -> Option<PathBuf> {
        let direct = Path::new(source_file).with_extension("proptest-regressions");
        if direct.exists() {
            return Some(direct);
        }
        let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
        let normalized = source_file.replace('\\', "/");
        for anchor in ["tests/", "src/"] {
            if let Some(pos) = normalized.rfind(anchor) {
                let candidate = Path::new(&manifest)
                    .join(&normalized[pos..])
                    .with_extension("proptest-regressions");
                return Some(candidate);
            }
        }
        Some(direct)
    }

    /// Parses the replay seeds out of a regression file: the first 16 hex
    /// digits of each `cc <token>` line.
    fn parse_seeds(content: &str) -> Vec<u64> {
        content
            .lines()
            .filter_map(|line| {
                let token = line.trim().strip_prefix("cc ")?.split_whitespace().next()?;
                let head: String = token.chars().take(16).collect();
                u64::from_str_radix(&head, 16).ok()
            })
            .collect()
    }

    /// Appends a failing seed to the regression file (best-effort).
    fn persist_failure(path: &Path, seed: u64, value: &dyn Debug) {
        let line = format!("cc {seed:016x}{:048x} # shrinks to {value:?}\n", 0u64);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let header_needed = !path.exists();
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            if header_needed {
                let _ = f.write_all(
                    b"# Seeds for failure cases proptest has generated in the past. It is\n\
                      # automatically read and these particular cases re-run before any\n\
                      # novel cases are generated.\n",
                );
            }
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// FNV-1a, used to derive the deterministic base seed per test.
    fn fnv1a(data: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in data.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs one property test: regression-file replay first, then
    /// `config.cases` deterministically-seeded random cases.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first falsified
    /// case, printing the seed and the generated value.
    pub fn run<S, F>(
        config: ProptestConfig,
        source_file: &str,
        test_name: &str,
        strategy: S,
        test: F,
    ) where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let regressions = regression_path(source_file);
        let mut replay_seeds = Vec::new();
        if let Some(path) = &regressions {
            if let Ok(content) = std::fs::read_to_string(path) {
                replay_seeds = parse_seeds(&content);
            }
        }

        let run_case = |seed: u64, pinned: bool| {
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    let mut rng = TestRng::from_seed(seed);
                    let value = strategy.generate(&mut rng);
                    if !pinned {
                        if let Some(path) = &regressions {
                            persist_failure(path, seed, &value);
                        }
                    }
                    let kind = if pinned {
                        "pinned regression"
                    } else {
                        "random"
                    };
                    panic!(
                        "proptest: {test_name} falsified on {kind} case (seed {seed:#018x})\n\
                         minimal input not computed (no shrinking); failing input:\n{value:#?}\n{msg}"
                    );
                }
            }
        };

        for &seed in &replay_seeds {
            run_case(seed, true);
        }
        let base = fnv1a(source_file) ^ fnv1a(test_name).rotate_left(17);
        for i in 0..config.cases as u64 {
            run_case(base.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15)), false);
        }
    }
}

/// Declares property tests. Mirrors upstream `proptest!` for the supported
/// grammar: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // The closure must be a direct argument so expected-type
                // propagation resolves the binding types inside `$body`.
                $crate::test_runner::run(
                    $cfg,
                    file!(),
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strat = (3u32..9, 0usize..5);
        for _ in 0..1000 {
            let (a, b) = strat.generate(&mut rng);
            assert!((3..9).contains(&a));
            assert!(b < 5);
        }
    }

    #[test]
    fn flat_map_respects_dependency() {
        let mut rng = TestRng::from_seed(2);
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..1000 {
            let (n, below) = strat.generate(&mut rng);
            assert!(below < n);
        }
    }

    #[test]
    fn vec_strategy_length_bounds() {
        let mut rng = TestRng::from_seed(3);
        let strat = crate::collection::vec(0u8..=255, 2..7);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(4);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec((0u32..100, 0u32..100), 1..20);
        let a = strat.generate(&mut TestRng::from_seed(9));
        let b = strat.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    // The macro-level grammar (config header, multi-binding, trailing
    // comma, early return) — compile-and-pass coverage.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_grammar_smoke(
            a in 0u32..50,
            b in 1u64..9,
            v in crate::collection::vec(0usize..10, 0..4),
        ) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(a < 50);
            prop_assert!(b >= 1, "b was {}", b);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(b, 0);
        }
    }
}
