//! Offline vendored `serde` trait stub.
//!
//! The workspace's `serde` support is an optional feature that is **off**
//! in the tier-1 build. This stub exists only so the optional dependency
//! resolves without network access; it defines the trait names but not the
//! derive macros, so enabling the workspace `serde` features requires
//! swapping this vendor path back to the real crates.io `serde`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
