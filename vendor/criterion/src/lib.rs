//! Offline vendored micro-benchmark harness exposing the `criterion` API
//! subset this workspace uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Behavior:
//!
//! * Under `cargo bench` (cargo passes `--bench` to the target) every
//!   benchmark is warmed up and timed, and a mean per-iteration wall time
//!   is printed in criterion's familiar `name ... time: [..]` shape.
//! * Under `cargo test` (no `--bench` argument) each benchmark body runs
//!   exactly once as a smoke test, so bench targets stay cheap in tier-1
//!   verification while still executing their code paths.
//!
//! There is no statistical analysis, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (upstream forwards to
/// `std::hint` as well).
pub use std::hint::black_box;

fn timed_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Drives one benchmark body.
pub struct Bencher {
    timed: bool,
    /// Mean per-iteration time measured by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its mean wall time (timed
    /// mode), or exactly once (smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.timed {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: grow the batch until it runs long
        // enough to time reliably, without a fixed iteration budget that
        // would penalize multi-second routines.
        let mut batch = 1u64;
        let floor = Duration::from_millis(200);
        let (iters, elapsed) = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= floor || batch >= 1 << 20 {
                break (batch, elapsed);
            }
            batch *= 2;
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let measured = start.elapsed().min(elapsed);
        self.mean = Some(measured / iters.max(1) as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Identifier combining a function name and a parameter, as in
/// `BenchmarkId::new("delta", n_ases)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    timed: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes how many samples feed the statistics; this harness
    /// takes a single calibrated measurement, so the value is accepted and
    /// ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored (see [`Self::sample_size`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            timed: self.timed,
            mean: None,
        };
        f(&mut b);
        if self.timed {
            let time = b
                .mean
                .map(format_duration)
                .unwrap_or_else(|| "no iter() call".to_string());
            println!(
                "{}/{id}\n                        time:   [{time}]",
                self.name
            );
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark manager handed to each `criterion_group!` function.
pub struct Criterion {
    timed: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            timed: timed_mode(),
        }
    }
}

impl Criterion {
    /// Opens a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let timed = self.timed;
        BenchmarkGroup {
            name: name.into(),
            timed,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group("");
        let mut b = Bencher {
            timed: group.timed,
            mean: None,
        };
        let mut f = f;
        f(&mut b);
        if group.timed {
            let time = b
                .mean
                .map(format_duration)
                .unwrap_or_else(|| "no iter() call".to_string());
            println!("{id}\n                        time:   [{time}]");
        }
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            timed: false,
            mean: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.mean.is_none());
    }

    #[test]
    fn timed_mode_measures_a_mean() {
        let mut b = Bencher {
            timed: true,
            mean: None,
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.mean.is_some());
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("delta", 2000).to_string(), "delta/2000");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
