//! Fig. 7 + the undetected-attack tables: three detector configurations
//! scored against the same random attacks.
//!
//! Writes `out/fig7_case*.svg`, `out/fig7.csv` and per-case undetected
//! tables.

use bgpsim_core::experiments::fig7;
use bgpsim_core::{ExperimentConfig, Lab};

fn main() {
    let lab = Lab::new(ExperimentConfig::from_env());
    let result = fig7(&lab);
    println!("{}", result.summary(&lab));
    let dir = std::path::Path::new("out");
    match result.write_artifacts(&lab, dir) {
        Ok(files) => println!("\nwrote {} to {}", files.join(", "), dir.display()),
        Err(e) => eprintln!("could not write artifacts: {e}"),
    }
}
