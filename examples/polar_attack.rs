//! Fig. 1 reproduction: polar snapshots of an aggressive origin hijack
//! propagating generation by generation.
//!
//! Writes `out/fig1_gen*.svg` and prints per-generation statistics.

use bgpsim_core::experiments::fig1;
use bgpsim_core::{ExperimentConfig, Lab};

fn main() {
    let lab = Lab::new(ExperimentConfig::from_env());
    let result = fig1(&lab);
    println!("{}", result.summary(&lab));
    let dir = std::path::Path::new("out");
    match result.write_artifacts(dir) {
        Ok(files) => println!("wrote {} to {}", files.join(", "), dir.display()),
        Err(e) => eprintln!("could not write artifacts: {e}"),
    }
}
