//! §VII reproduction: regional containment on the island region —
//! baseline, re-homing two levels up, and a single gateway filter — plus
//! the generated step-wise security plan.
//!
//! Writes `out/sec7_region.csv` and `out/sec7_plan.txt`.

use bgpsim_core::experiments::sec7;
use bgpsim_core::{ExperimentConfig, Lab};

fn main() {
    let lab = Lab::new(ExperimentConfig::from_env());
    let result = sec7(&lab);
    println!("{}", result.summary(&lab));
    let dir = std::path::Path::new("out");
    match result.write_artifacts(dir) {
        Ok(files) => println!("wrote {} to {}", files.join(", "), dir.display()),
        Err(e) => eprintln!("could not write artifacts: {e}"),
    }
}
