//! §VII's detection advice, operationalized: find blind spots in an
//! existing detector configuration and greedily pick the extra vantage
//! points that close them.
//!
//! Compares a BGPmon-like 24-peer configuration against a greedy
//! maximum-coverage plan of the same size, on the same attack workload.

use bgpsim_core::detection::{
    greedy_probe_selection, random_transit_attacks, run_detection_experiment, CoverageMatrix,
    ProbeSet,
};
use bgpsim_core::hijack::Defense;
use bgpsim_core::topology::select;
use bgpsim_core::{ExperimentConfig, Lab};

fn main() {
    let lab = Lab::new(ExperimentConfig::from_env());
    let topo = lab.topology();
    let sim = lab.simulator();
    let attacks = random_transit_attacks(topo, lab.config().detection_attacks.min(1_000), 99);

    let existing = ProbeSet::bgpmon_like(topo, 24, lab.config().seed ^ 0xb69);

    // Candidates: the 200 highest-degree ASes (realistic peering targets).
    let candidates = select::top_k_by_degree(topo, 200);
    let matrix = CoverageMatrix::build(&sim, &attacks, &candidates, &Defense::none());
    let plan = greedy_probe_selection(&matrix, existing.len());
    println!(
        "greedy plan: {} probes reach {:.1}% coverage on {} attacks",
        plan.probes.len(),
        100.0 * plan.final_coverage(),
        attacks.len()
    );
    for (i, (&p, &cov)) in plan.probes.iter().zip(&plan.coverage_steps).enumerate() {
        if i < 8 {
            println!(
                "  {}. {} -> {:.1}% cumulative",
                i + 1,
                lab.describe(p),
                100.0 * cov
            );
        }
    }

    let optimized = plan.into_probe_set("greedy max-coverage (same size)");
    let reports =
        run_detection_experiment(&sim, &[existing, optimized], &attacks, &Defense::none());
    println!();
    for r in &reports {
        println!("{r}");
    }
    let (before, after) = (reports[0].miss_rate(), reports[1].miss_rate());
    println!(
        "\nmiss rate {:.1}% -> {:.1}% with the same number of probes",
        100.0 * before,
        100.0 * after
    );
}
