//! Concurrent load generator for `bgpsim serve`.
//!
//! Bootstraps itself from `GET /v1/healthz` (the server advertises its
//! cast ASNs and a sample attacker pool exactly so clients need no
//! out-of-band knowledge of the generated topology), then hammers
//! `POST /v1/attacks` from several keep-alive connections and prints a
//! log₂ latency histogram — the same bucketing the server's own
//! `/v1/metrics` histograms use, so the two are directly comparable.
//!
//! ```text
//! bgpsim serve --scale quick &
//! cargo run --release --example loadgen -- --threads 8 --requests 200
//! ```
//!
//! The first requests are cold (the server builds the target's honest
//! baseline); everything after hits the baseline cache, which is the
//! point: the histogram shows the cold tail and the warm body in one
//! picture, and the closing `/v1/metrics` excerpt shows the cache's
//! hit/miss/coalesced ledger for the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bgpsim::fanout::client::{get, get_str, get_u64, Client};
use bgpsim::hijack::{wall_bucket, WALL_HIST_BUCKETS};
use bgpsim::manifest::Json;

struct Options {
    addr: String,
    threads: usize,
    requests: usize,
    defended: bool,
    /// Attacks per request: 0 sends one `POST /v1/attacks` per request,
    /// N > 0 sends N-attack `POST /v1/attacks:batch` envelopes.
    batch: usize,
    /// Also run async sweeps concurrently with the attack load.
    mix: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:8080".to_string(),
        threads: 4,
        requests: 200,
        defended: true,
        batch: 0,
        mix: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a number".to_string())?;
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests expects a number".to_string())?;
            }
            // Undefended attacks bypass the baseline cache (the race
            // solver is already closed-form); useful as a contrast run.
            "--undefended" => opts.defended = false,
            "--batch" => {
                opts.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch expects a number".to_string())?;
            }
            "--mix" => opts.mix = true,
            "--help" | "-h" => {
                println!(
                    "loadgen — hammer a bgpsim server\n\n\
                     OPTIONS:\n    --addr HOST:PORT  [127.0.0.1:8080]\n    \
                     --threads N       concurrent connections [4]\n    \
                     --requests N      requests per thread [200]\n    \
                     --batch N         pack N attacks into each request\n    \
                     \u{20}                 (POST /v1/attacks:batch) [0 = one per request]\n    \
                     --mix             run async sweeps concurrently with the attacks\n    \
                     --undefended      send cache-bypassing undefended attacks"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.threads == 0 || opts.requests == 0 {
        return Err("--threads and --requests must be at least 1".to_string());
    }
    Ok(opts)
}

/// Pulls `meta.ok` out of a batch response without parsing the whole
/// body — a quick-scale batch answer carries thousands of polluted ASNs
/// per item, and a full client-side parse would bill the server's own
/// CPU for work no load generator needs.
fn batch_ok_count(response: &str) -> Option<u64> {
    let meta = &response[response.rfind("\"meta\"")?..];
    let after = &meta[meta.find("\"ok\":")? + 5..];
    let digits: String = after
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() -> std::process::ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            return std::process::ExitCode::from(2);
        }
    };

    // Bootstrap: ask the server who it is and whom it can attack.
    let mut client = match Client::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "error: cannot connect to {}: {e} (is `bgpsim serve` up?)",
                opts.addr
            );
            return std::process::ExitCode::FAILURE;
        }
    };
    let healthz = match client.request("GET", "/v1/healthz", "") {
        Ok((200, body)) => match Json::parse(&body) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("error: /v1/healthz returned unparseable JSON: {e}");
                return std::process::ExitCode::FAILURE;
            }
        },
        Ok((status, body)) => {
            eprintln!("error: /v1/healthz returned {status}: {body}");
            return std::process::ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: /v1/healthz failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let target = get(&healthz, "cast")
        .and_then(|cast| get_u64(cast, "vulnerable_stub"))
        .expect("healthz advertises cast.vulnerable_stub");
    let attackers: Vec<u64> = match get(&healthz, "sample_attackers") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|v| {
                if let Json::Num(n) = v {
                    Some(*n as u64)
                } else {
                    None
                }
            })
            .collect(),
        _ => Vec::new(),
    };
    assert!(!attackers.is_empty(), "healthz advertises sample_attackers");
    let per_request = opts.batch.max(1);
    eprintln!(
        "target AS{target}, {} candidate attackers, {} threads x {} requests x {} attack(s) ({}{})",
        attackers.len(),
        opts.threads,
        opts.requests,
        per_request,
        if opts.defended {
            "defended, cacheable"
        } else {
            "undefended, cache bypass"
        },
        if opts.mix {
            ", sweeps running alongside"
        } else {
            ""
        }
    );

    // Shared log2 histogram (µs) of per-REQUEST latency, same bucketing
    // as the server's; `attacks_ok` counts individual attacks for the
    // throughput line (requests × batch size in batch mode).
    let hist: Vec<AtomicU64> = (0..WALL_HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
    let sum_us = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let attacks_ok = AtomicU64::new(0);
    let sweeps_done = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..opts.threads {
            let hist = &hist;
            let sum_us = &sum_us;
            let errors = &errors;
            let attacks_ok = &attacks_ok;
            let attackers = &attackers;
            let opts = &opts;
            scope.spawn(move || {
                let mut client = match Client::connect(&opts.addr) {
                    Ok(c) => c,
                    Err(_) => {
                        errors.fetch_add((opts.requests * per_request) as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0..opts.requests {
                    // Stagger workers across the pool so concurrent
                    // requests exercise distinct attacks.
                    let pick = |j: usize| {
                        attackers[(worker + (i * per_request + j) * opts.threads) % attackers.len()]
                    };
                    let defense = if opts.defended {
                        "\"defense\":{\"stub_defense\":true},"
                    } else {
                        ""
                    };
                    let (path, body) = if opts.batch > 0 {
                        let mut items = String::new();
                        for j in 0..opts.batch {
                            if j > 0 {
                                items.push(',');
                            }
                            items.push_str(&format!(
                                "{{\"attacker\":{},\"target\":{target}}}",
                                pick(j)
                            ));
                        }
                        (
                            "/v1/attacks:batch",
                            format!("{{{defense}\"attacks\":[{items}]}}"),
                        )
                    } else {
                        (
                            "/v1/attacks",
                            format!("{{{defense}\"attacker\":{},\"target\":{target}}}", pick(0)),
                        )
                    };
                    let begin = Instant::now();
                    match client.request("POST", path, &body) {
                        Ok((200, response)) => {
                            let us = begin.elapsed().as_micros() as u64;
                            hist[wall_bucket(us)].fetch_add(1, Ordering::Relaxed);
                            sum_us.fetch_add(us, Ordering::Relaxed);
                            let ok = if opts.batch > 0 {
                                // The batch answers per item; count what
                                // actually succeeded.
                                batch_ok_count(&response).unwrap_or(0)
                            } else {
                                1
                            };
                            attacks_ok.fetch_add(ok, Ordering::Relaxed);
                            errors.fetch_add(per_request as u64 - ok, Ordering::Relaxed);
                        }
                        _ => {
                            errors.fetch_add(per_request as u64, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        if opts.mix {
            // One extra connection keeps async sweeps in flight while the
            // attack threads hammer, exercising the executor pool and the
            // HTTP workers at once.
            let sweeps_done = &sweeps_done;
            let opts = &opts;
            scope.spawn(move || {
                let mut client = match Client::connect(&opts.addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                for _ in 0..2 {
                    let body = format!("{{\"target\":{target},\"attackers\":\"transit\"}}");
                    let id = match client.request("POST", "/v1/sweeps", &body) {
                        Ok((202, response)) => match Json::parse(&response)
                            .ok()
                            .and_then(|json| get_str(&json, "id").map(str::to_string))
                        {
                            Some(id) => id,
                            None => return,
                        },
                        _ => return,
                    };
                    loop {
                        let state = match client.request("GET", &format!("/v1/jobs/{id}"), "") {
                            Ok((200, response)) => Json::parse(&response)
                                .ok()
                                .and_then(|json| get_str(&json, "state").map(str::to_string)),
                            _ => return,
                        };
                        match state.as_deref() {
                            Some("done") => {
                                sweeps_done.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Some("queued") | Some("running") => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            _ => return,
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();

    // Report: histogram + quantiles from bucket upper bounds.
    let counts: Vec<u64> = hist.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let total: u64 = counts.iter().sum();
    let errors = errors.load(Ordering::Relaxed);
    println!(
        "\n{total} ok, {errors} errors in {:.2}s ({:.0} req/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64().max(1e-9)
    );
    // Machine-parseable line: attacks/sec regardless of envelope shape,
    // so batch and single runs compare on the same axis.
    let attacks_ok = attacks_ok.load(Ordering::Relaxed);
    println!(
        "throughput: {:.0} attacks/s ({attacks_ok} attacks)",
        attacks_ok as f64 / wall.as_secs_f64().max(1e-9)
    );
    if opts.mix {
        println!("sweeps completed: {}", sweeps_done.load(Ordering::Relaxed));
    }
    if total == 0 || attacks_ok == 0 {
        return std::process::ExitCode::FAILURE;
    }
    println!("mean {} µs", sum_us.load(Ordering::Relaxed) / total);
    for (q, label) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
        let rank = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (bucket, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                println!("{label} < {} µs", 1u64 << bucket);
                break;
            }
        }
    }
    println!("\nlatency histogram (log2 µs buckets):");
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (bucket, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
        println!("  < {:>10} µs  {count:>7}  {bar}", 1u64 << bucket);
    }

    // Close with the server's own cache ledger for this run.
    if let Ok((200, metrics)) = client.request("GET", "/v1/metrics", "") {
        println!("\nserver baseline cache:");
        for line in metrics.lines() {
            if line.starts_with("bgpsim_baseline_cache") {
                println!("  {line}");
            }
        }
    }
    std::process::ExitCode::SUCCESS
}
