//! Quickstart: generate a synthetic Internet, run one hijack, inspect the
//! damage, then see how origin-validation filters at the core change it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! BGPSIM_SCALE=paper cargo run --release --example quickstart   # full size
//! ```

use bgpsim_core::defense::DeploymentStrategy;
use bgpsim_core::experiments::tab_model;
use bgpsim_core::hijack::{Attack, Defense};
use bgpsim_core::{ExperimentConfig, Lab};

fn main() {
    let config = ExperimentConfig::from_env();
    println!(
        "generating a {}-AS synthetic Internet (seed {})...\n",
        config.params.num_ases, config.seed
    );
    let lab = Lab::new(config);

    // 1. Characterize the substrate (the paper's §III model table).
    let model = tab_model(&lab);
    println!("{}\n", model.summary());

    // 2. One origin hijack: the aggressive attacker vs the deep stub.
    let sim = lab.simulator();
    let cast = lab.cast();
    let attack = Attack::origin(cast.aggressive_attacker, cast.vulnerable_stub);
    let outcome = sim.run(attack, &Defense::none());
    println!(
        "undefended: {} hijacks {} -> {} ASes polluted ({:.1}% of the internet, {:.0}% of address space) in {} generations",
        lab.describe(cast.aggressive_attacker),
        lab.describe(cast.vulnerable_stub),
        outcome.pollution_count(),
        100.0 * outcome.pollution_count() as f64 / lab.topology().num_ases() as f64,
        100.0 * outcome.address_space_fraction(&lab.net().address_space),
        outcome.generations,
    );

    // 3. The same attack against incremental filter deployments.
    for strategy in [
        DeploymentStrategy::Tier1,
        DeploymentStrategy::TopKByDegree(((62.0 * lab.config().scale()).round() as usize).max(8)),
    ] {
        let defense = strategy.defense(lab.topology());
        let defended = sim.run(attack, &defense);
        println!(
            "with {} ({} filters): {} ASes polluted ({:.1}%)",
            strategy,
            defense.num_validators(),
            defended.pollution_count(),
            100.0 * defended.pollution_count() as f64 / lab.topology().num_ases() as f64,
        );
    }
    // 4. The limit of origin validation: a forged-origin (path-prepending)
    // attack claims the victim's ASN and sails through every ROV filter —
    // the attack class that motivates full path validation (paper §II).
    let everyone = DeploymentStrategy::Everyone.defense(lab.topology());
    let plain = sim.run(attack, &everyone);
    let forged = sim.run(
        Attack::forged_origin(cast.aggressive_attacker, cast.vulnerable_stub),
        &everyone,
    );
    println!(
        "\nuniversal ROV: plain origin hijack pollutes {} ASes; forged-origin hijack still pollutes {} ({:.1}%)",
        plain.pollution_count(),
        forged.pollution_count(),
        100.0 * forged.pollution_count() as f64 / lab.topology().num_ases() as f64,
    );

    println!("\nsee the other examples for the full figure reproductions.");
}
