//! Figs. 5–6 + the "still-potent attackers" tables: incremental
//! origin-validation deployment against a resistant and a vulnerable
//! target.
//!
//! Writes `out/fig{5,6}.{svg,csv}` and `out/fig{5,6}_potent.csv`.

use bgpsim_core::experiments::{fig5, fig6};
use bgpsim_core::{ExperimentConfig, Lab};

fn main() {
    let lab = Lab::new(ExperimentConfig::from_env());
    let dir = std::path::Path::new("out");
    for result in [fig5(&lab), fig6(&lab)] {
        println!("{}\n", result.summary(&lab));
        match result.write_artifacts(&lab, dir) {
            Ok(files) => println!("wrote {}\n", files.join(", ")),
            Err(e) => eprintln!("could not write artifacts: {e}"),
        }
    }
}
