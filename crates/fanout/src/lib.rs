//! Sharded sweep fan-out for `bgpsim-server` fleets.
//!
//! The paper's sweeps are embarrassingly parallel: every (attacker,
//! target, defense) cell is a pure function of the generated topology,
//! so a pool of attackers can be split across machines and the rows
//! re-interleaved with **zero** tolerance — the merged result is
//! byte-identical to a single-node run, and this crate's tests pin
//! that.
//!
//! Three layers:
//!
//! - [`shard`] — deterministic stride partitioning of an attacker pool
//!   and the positional merge that inverts it.
//! - [`client`] — the std-only HTTP/1.1 keep-alive client (promoted
//!   from `examples/loadgen.rs`) every coordinator connection uses.
//! - [`coordinator`] — worker registration with a compatibility
//!   [`Handshake`], shard dispatch over `/v1/attacks:batch` and
//!   `/v1/sweeps`, bounded retries, straggler hedging, and the merge.
//!
//! Consumed by `bgpsim serve --fanout-workers …` (the server deals its
//! sweep jobs to the fleet) and `bgpsim fanout` (one-shot CLI sweep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod shard;

pub use client::Client;
pub use coordinator::{
    Coordinator, FanoutConfig, FanoutError, FanoutStats, Handshake, NoopObserver, SweepObserver,
    SweepRequest, WorkerStats,
};
pub use shard::ShardPlan;
