//! Deterministic stride sharding of an attacker pool.
//!
//! Shard `k` of `n` takes pool positions `k, k+n, k+2n, …` — the same
//! stride discipline [`ExperimentConfig::attacker_stride`] applies to the
//! pool itself, so the union of all shards is the single-node pool
//! *exactly*, with no rounding seam at the end. Because every sweep row
//! is a pure function of (topology, target, attacker, defense) and rows
//! are mutually independent (the contract
//! [`Simulator::sweep_chunk_monitored`] documents), re-interleaving the
//! per-shard rows positionally reproduces the single-node result bit for
//! bit. The `merge_matches_single_node` proptest in this crate pins that
//! equivalence across random topologies, shard counts, and both routing
//! policies.
//!
//! [`ExperimentConfig::attacker_stride`]: bgpsim_core::ExperimentConfig
//! [`Simulator::sweep_chunk_monitored`]: bgpsim_hijack::Simulator::sweep_chunk_monitored

/// A stride partition of `pool_len` work items into `num_shards` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Items in the pool being partitioned.
    pub pool_len: usize,
    /// Shards the pool is split into (at least 1, at most `pool_len`
    /// for a non-empty pool).
    pub num_shards: usize,
}

impl ShardPlan {
    /// Plans `num_shards` stride shards over a pool of `pool_len` items.
    /// The shard count is clamped to `[1, pool_len]` (an empty pool plans
    /// one empty shard) so no shard is ever empty.
    pub fn new(pool_len: usize, num_shards: usize) -> ShardPlan {
        ShardPlan {
            pool_len,
            num_shards: num_shards.clamp(1, pool_len.max(1)),
        }
    }

    /// Number of items in shard `k`: positions `k, k+n, …` below
    /// `pool_len`.
    pub fn shard_len(&self, k: usize) -> usize {
        assert!(k < self.num_shards, "shard {k} out of {}", self.num_shards);
        (self.pool_len - k).div_ceil(self.num_shards)
    }

    /// The members of shard `k`, copied out of `pool` in stride order.
    ///
    /// # Panics
    ///
    /// Panics if `pool.len()` disagrees with the planned `pool_len` or
    /// `k` is out of range.
    pub fn members<T: Copy>(&self, pool: &[T], k: usize) -> Vec<T> {
        assert_eq!(pool.len(), self.pool_len, "pool changed since planning");
        assert!(k < self.num_shards, "shard {k} out of {}", self.num_shards);
        pool.iter()
            .copied()
            .skip(k)
            .step_by(self.num_shards)
            .collect()
    }

    /// Re-interleaves per-shard result rows back into pool order.
    ///
    /// `shard_rows[k][j]` answers pool position `k + j * num_shards`, so
    /// the merged vector is positionally — and therefore byte- —
    /// identical to a single-node sweep of the whole pool.
    ///
    /// # Errors
    ///
    /// Rejects a result set with the wrong shard count or a shard whose
    /// row count disagrees with the plan (a truncated or duplicated
    /// worker answer must never be silently accepted).
    pub fn merge(&self, shard_rows: &[Vec<u32>]) -> Result<Vec<u32>, String> {
        if shard_rows.len() != self.num_shards {
            return Err(format!(
                "merge got {} shard results, planned {}",
                shard_rows.len(),
                self.num_shards
            ));
        }
        let mut out = vec![0u32; self.pool_len];
        for (k, rows) in shard_rows.iter().enumerate() {
            if rows.len() != self.shard_len(k) {
                return Err(format!(
                    "shard {k} returned {} rows, expected {}",
                    rows.len(),
                    self.shard_len(k)
                ));
            }
            for (j, &row) in rows.iter().enumerate() {
                out[k + j * self.num_shards] = row;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_the_pool_exactly_once() {
        for pool_len in [0usize, 1, 2, 7, 64, 65] {
            let pool: Vec<usize> = (0..pool_len).collect();
            for n in [1usize, 2, 3, 7, 100] {
                let plan = ShardPlan::new(pool_len, n);
                let mut seen = vec![0u32; pool_len];
                for k in 0..plan.num_shards {
                    let members = plan.members(&pool, k);
                    assert_eq!(members.len(), plan.shard_len(k));
                    for m in members {
                        seen[m] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "pool_len={pool_len} n={n}: {seen:?}"
                );
            }
        }
    }

    #[test]
    fn no_planned_shard_is_empty() {
        for pool_len in [1usize, 2, 3, 8] {
            for n in [1usize, 2, 5, 16] {
                let plan = ShardPlan::new(pool_len, n);
                for k in 0..plan.num_shards {
                    assert!(plan.shard_len(k) > 0, "pool_len={pool_len} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn merge_reassembles_positionally() {
        let pool: Vec<u32> = (100..123).collect();
        let plan = ShardPlan::new(pool.len(), 3);
        let rows: Vec<Vec<u32>> = (0..plan.num_shards)
            // Pretend the sweep's answer is the attacker id itself, so the
            // merged vector must be the pool verbatim.
            .map(|k| plan.members(&pool, k))
            .collect();
        assert_eq!(plan.merge(&rows).unwrap(), pool);
    }

    #[test]
    fn merge_rejects_malformed_results() {
        let plan = ShardPlan::new(5, 2);
        assert!(plan.merge(&[vec![1, 2, 3]]).is_err(), "missing shard");
        assert!(
            plan.merge(&[vec![1, 2, 3], vec![4]]).is_err(),
            "short shard"
        );
        assert!(
            plan.merge(&[vec![1, 2, 3], vec![4, 5, 6]]).is_err(),
            "long shard"
        );
        assert_eq!(
            plan.merge(&[vec![1, 2, 3], vec![4, 5]]).unwrap(),
            vec![1, 4, 2, 5, 3]
        );
    }

    #[test]
    fn empty_pool_plans_one_empty_shard() {
        let plan = ShardPlan::new(0, 4);
        assert_eq!(plan.num_shards, 1);
        assert_eq!(plan.shard_len(0), 0);
        assert_eq!(plan.merge(&[Vec::new()]).unwrap(), Vec::<u32>::new());
    }
}
