//! Minimal std-only HTTP/1.1 keep-alive client.
//!
//! Promoted out of `examples/loadgen.rs` so the fan-out coordinator and
//! the load generator share one wire implementation: a single
//! `TcpStream` per [`Client`], one request/response in flight at a time,
//! Content-Length-delimited bodies, and a single transparent reconnect
//! when the server closes an idle keep-alive connection under us. No
//! TLS, no chunked decoding — the bgpsim-server wire format needs
//! neither, and staying std-only is a workspace invariant.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bgpsim_core::manifest::Json;

/// Minimal HTTP/1.1 keep-alive client over one `TcpStream`.
pub struct Client {
    addr: String,
    read_timeout: Duration,
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`) with a 30-second read timeout.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects to `addr` with an explicit read timeout — the
    /// coordinator uses short timeouts for health probes and long ones
    /// for shard polls.
    pub fn connect_with_timeout(addr: &str, read_timeout: Duration) -> std::io::Result<Client> {
        let stream = open(addr, read_timeout)?;
        Ok(Client {
            addr: addr.to_string(),
            read_timeout,
            stream,
        })
    }

    /// The `host:port` this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads one response; reconnects once if the
    /// server closed the keep-alive connection under us.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        self.request_with_headers(method, path, &[], body)
    }

    /// Like [`Client::request`] with extra `(name, value)` headers —
    /// the coordinator attaches `Idempotency-Key` this way.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        match self.request_once(method, path, headers, body) {
            Ok(ok) => Ok(ok),
            Err(_) => {
                self.stream = open(&self.addr, self.read_timeout)?;
                self.request_once(method, path, headers, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        read_response(&mut self.stream)
    }
}

fn open(addr: &str, read_timeout: Duration) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    Ok(stream)
}

/// Reads one HTTP response (status + Content-Length-delimited body).
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((status, String::from_utf8_lossy(&body).to_string()))
}

/// Looks up `key` in a JSON object.
pub fn get<'a>(json: &'a Json, key: &str) -> Option<&'a Json> {
    match json {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Looks up a numeric `key` in a JSON object.
pub fn get_u64(json: &Json, key: &str) -> Option<u64> {
    match get(json, key) {
        Some(Json::Num(n)) => Some(*n as u64),
        _ => None,
    }
}

/// Looks up a string `key` in a JSON object.
pub fn get_str<'a>(json: &'a Json, key: &str) -> Option<&'a str> {
    match get(json, key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot server: accepts a single connection, answers every
    /// request on it with `body`, records what it saw.
    fn serve_once(body: &'static str) -> (String, std::thread::JoinHandle<String>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut seen = Vec::new();
            let mut chunk = [0u8; 4096];
            while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                let n = stream.read(&mut chunk).unwrap();
                seen.extend_from_slice(&chunk[..n]);
            }
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(response.as_bytes()).unwrap();
            String::from_utf8_lossy(&seen).to_string()
        });
        (addr, handle)
    }

    #[test]
    fn round_trips_a_request() {
        let (addr, handle) = serve_once("{\"ok\":true}");
        let mut client = Client::connect(&addr).unwrap();
        let (status, body) = client
            .request_with_headers("GET", "/v1/healthz", &[("Idempotency-Key", "k-1")], "")
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        let seen = handle.join().unwrap();
        assert!(seen.starts_with("GET /v1/healthz HTTP/1.1\r\n"), "{seen}");
        assert!(seen.contains("Idempotency-Key: k-1\r\n"), "{seen}");
    }

    #[test]
    fn json_helpers_read_nested_objects() {
        let json = Json::parse("{\"cast\":{\"tier1\":7},\"state\":\"done\"}").unwrap();
        assert_eq!(get_u64(get(&json, "cast").unwrap(), "tier1"), Some(7));
        assert_eq!(get_str(&json, "state"), Some("done"));
        assert_eq!(get_u64(&json, "missing"), None);
    }
}
