//! The fan-out coordinator: shard dispatch, retries, hedging, merging.
//!
//! A [`Coordinator`] owns a registered fleet of `bgpsim-server` workers
//! (each vetted at registration by a [`Handshake`] against its
//! `/v1/healthz`) and evaluates sweep requests by stride-sharding the
//! attacker pool ([`ShardPlan`]), dealing shards to workers over the
//! public HTTP API, and re-interleaving the per-shard rows into a
//! result byte-identical to a single-node sweep.
//!
//! Robustness model, in order of escalation:
//!
//! 1. **Keep-alive reconnect** — [`Client`] transparently reopens a
//!    closed connection and resends once; idempotency keys on
//!    `/v1/sweeps` make that resend safe against double-scheduling.
//! 2. **Bounded retries** — a failed shard goes back on the shared
//!    queue (any surviving worker may pick it up) until
//!    [`FanoutConfig::max_attempts`] dispatches have been burned, with
//!    capped exponential backoff on the failing worker's side.
//! 3. **Worker death** — three consecutive failures mark a worker dead
//!    for the rest of the coordinator's life; its queued work drains to
//!    the survivors.
//! 4. **Hedged re-dispatch** — an idle worker duplicates the slowest
//!    outstanding shard after [`FanoutConfig::hedge_after`];
//!    first-result-wins is safe because shard evaluation is pure.
//!
//! When every worker is dead or none registered, callers observe
//! [`FanoutError::NoWorkers`] and are expected to degrade to local
//! in-process execution.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime};

use bgpsim_core::manifest::Json;
use bgpsim_hijack::{wall_bucket, WALL_HIST_BUCKETS};

use crate::client::{get, get_str, get_u64, Client};
use crate::shard::ShardPlan;

/// Shards at or below this size go out as one synchronous
/// `POST /v1/attacks:batch` envelope; larger shards become async
/// `/v1/sweeps` jobs polled to completion. Matches the server's own
/// fair-share chunk size so a "small" shard is one scheduler quantum.
const BATCH_DISPATCH_MAX: usize = 64;

/// Consecutive failures after which a worker is declared dead.
const DEAD_AFTER: u32 = 3;

/// Read timeout on shard-dispatch connections. Individual requests are
/// short (submits, polls, batches); the long wait for a sweep happens
/// across many polls, each bounded by this.
const DISPATCH_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Read timeout for registration-time health probes.
const PROBE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// What a worker must be to join the fleet. Checked against
/// `/v1/healthz` at registration: a worker simulating a different
/// topology (wrong seed, scale, or AS count) or speaking a different
/// schema would silently corrupt the merged result, so it is rejected
/// up front instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    /// Wire schema version (`bgpsim_core::manifest::SCHEMA_VERSION`).
    pub schema_version: u64,
    /// Scale preset name, e.g. `"quick"`.
    pub scale: String,
    /// Topology generation seed.
    pub seed: u64,
    /// Generated AS count — a belt-and-braces check that seed + scale
    /// really produced the same graph.
    pub num_ases: u64,
}

/// Tuning knobs for a [`Coordinator`]. `new` fills in defaults sized
/// for real fleets; tests shrink the timeouts.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Worker base URLs (`host:port`, `http://` prefix tolerated).
    pub workers: Vec<String>,
    /// Shards dealt per live worker. More than 1 lets a fast worker
    /// steal the tail instead of idling while the slowest finishes.
    pub shards_per_worker: usize,
    /// Total dispatch attempts (including hedges) a shard may burn
    /// before the whole sweep fails.
    pub max_attempts: u32,
    /// Wall-clock budget for one dispatched shard, submit to results.
    pub shard_timeout: Duration,
    /// Idle workers duplicate the slowest outstanding shard after this
    /// long (first result wins).
    pub hedge_after: Duration,
    /// Poll cadence for async sweep jobs.
    pub poll_interval: Duration,
}

impl FanoutConfig {
    /// Default configuration for the given worker URLs.
    pub fn new(workers: Vec<String>) -> FanoutConfig {
        FanoutConfig {
            workers,
            shards_per_worker: 2,
            max_attempts: 4,
            shard_timeout: Duration::from_secs(600),
            hedge_after: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Why a fan-out sweep did not return a merged result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FanoutError {
    /// No live workers — the caller should run locally instead.
    NoWorkers,
    /// The observer reported cancellation; outstanding shard jobs were
    /// abandoned (and cancelled server-side where reachable).
    Cancelled,
    /// A shard exhausted its attempts or every worker died mid-sweep.
    Failed(String),
}

impl std::fmt::Display for FanoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanoutError::NoWorkers => write!(f, "no live fan-out workers"),
            FanoutError::Cancelled => write!(f, "fan-out sweep cancelled"),
            FanoutError::Failed(message) => write!(f, "fan-out sweep failed: {message}"),
        }
    }
}

/// Progress hooks a [`Coordinator::run_sweep`] call reports into.
/// Implemented by the server's job layer (shard counters on the job)
/// and the CLI's progress line; [`NoopObserver`] for neither.
pub trait SweepObserver: Sync {
    /// The pool was split into `shards` shards.
    fn on_plan(&self, shards: usize) {
        let _ = shards;
    }
    /// A shard covering `attackers` pool members completed (first
    /// result only — a hedge loser does not re-report).
    fn on_shard_done(&self, attackers: usize) {
        let _ = attackers;
    }
    /// A failed shard went back on the queue.
    fn on_retry(&self) {}
    /// An idle worker duplicated the slowest outstanding shard.
    fn on_hedge(&self) {}
    /// Polled between dispatches and while waiting on shard jobs;
    /// returning true abandons the sweep.
    fn cancelled(&self) -> bool {
        false
    }
}

/// A [`SweepObserver`] that ignores everything and never cancels.
pub struct NoopObserver;

impl SweepObserver for NoopObserver {}

/// One sweep to fan out, already resolved to wire terms (ASNs, not
/// topology indices) with the target filtered out of the pool — the
/// same normalization the server applies at submit.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The victim AS.
    pub target_asn: u32,
    /// Attacker pool, in the exact order the merged counts answer.
    pub pool_asns: Vec<u32>,
    /// ROV validator ASNs for the defense object.
    pub validator_asns: Vec<u32>,
    /// Whether the stub-defense heuristic is on.
    pub stub_defense: bool,
}

/// Per-worker registration record and cumulative counters.
struct Worker {
    addr: String,
    alive: AtomicBool,
    consecutive_failures: AtomicU32,
    shards_dispatched: AtomicU64,
    shards_completed: AtomicU64,
    failures: AtomicU64,
    wall_us_sum: AtomicU64,
    wall_hist: Vec<AtomicU64>,
}

impl Worker {
    fn new(addr: String) -> Worker {
        Worker {
            addr,
            alive: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            shards_dispatched: AtomicU64::new(0),
            shards_completed: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            wall_us_sum: AtomicU64::new(0),
            wall_hist: (0..WALL_HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Point-in-time snapshot of one worker's counters, for `/v1/metrics`
/// and the manifest `fanout` section.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker address (`host:port`).
    pub addr: String,
    /// False once the worker hit [`DEAD_AFTER`] consecutive failures.
    pub alive: bool,
    /// Shards dealt to this worker (including hedges and retries).
    pub shards_dispatched: u64,
    /// Shards this worker answered successfully.
    pub shards_completed: u64,
    /// Failed dispatches.
    pub failures: u64,
    /// Total microseconds spent in successful shard round-trips.
    pub wall_us_sum: u64,
    /// log₂ µs histogram of successful shard round-trips (same
    /// bucketing as the server's own wall histograms).
    pub wall_hist: Vec<u64>,
}

/// Point-in-time snapshot of the whole coordinator.
#[derive(Debug, Clone)]
pub struct FanoutStats {
    /// Registered (accepted) workers.
    pub workers: Vec<WorkerStats>,
    /// Workers rejected at registration, with the reason.
    pub rejected: Vec<(String, String)>,
    /// Shards planned across all sweeps so far.
    pub shards_total: u64,
    /// Shards completed (first result only).
    pub shards_done: u64,
    /// Shards re-queued after a failed dispatch.
    pub shards_retried: u64,
    /// Hedged duplicate dispatches issued.
    pub shards_hedged: u64,
}

/// A registered fleet plus the dispatch machinery. Cheap to share
/// behind a reference: all mutable state is atomic.
pub struct Coordinator {
    config: FanoutConfig,
    workers: Vec<Worker>,
    rejected: Vec<(String, String)>,
    /// Per-boot nonce folded into idempotency keys: worker job ids
    /// restart from zero on reboot, so a key from a previous
    /// coordinator life must never alias a new shard onto an old job.
    nonce: u64,
    sweep_seq: AtomicU64,
    shards_total: AtomicU64,
    shards_done: AtomicU64,
    shards_retried: AtomicU64,
    shards_hedged: AtomicU64,
}

/// `host:port` from a worker URL; tolerates an `http://` prefix and a
/// trailing slash so copy-pasted base URLs register cleanly.
fn normalize_addr(url: &str) -> String {
    url.trim()
        .strip_prefix("http://")
        .unwrap_or(url.trim())
        .trim_end_matches('/')
        .to_string()
}

/// Poison-tolerant lock: shard state must survive a panicking peer
/// thread (the same stance the server's job registry takes).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Coordinator {
    /// Probes every configured worker's `/v1/healthz`, keeps the ones
    /// whose identity matches `expect`, and records the rest as
    /// rejected (with a warning on stderr). A coordinator with zero
    /// accepted workers is still constructed — [`Coordinator::run_sweep`]
    /// returns [`FanoutError::NoWorkers`] so callers can degrade to
    /// local execution.
    pub fn connect(config: FanoutConfig, expect: &Handshake) -> Coordinator {
        let mut workers = Vec::new();
        let mut rejected = Vec::new();
        for url in &config.workers {
            let addr = normalize_addr(url);
            match probe(&addr, expect) {
                Ok(()) => workers.push(Worker::new(addr)),
                Err(reason) => {
                    eprintln!("warning: rejecting fan-out worker {addr}: {reason}");
                    rejected.push((addr, reason));
                }
            }
        }
        let nonce = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Coordinator {
            config,
            workers,
            rejected,
            nonce,
            sweep_seq: AtomicU64::new(0),
            shards_total: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            shards_retried: AtomicU64::new(0),
            shards_hedged: AtomicU64::new(0),
        }
    }

    /// Workers currently considered alive.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Addresses of all accepted workers (alive or since-dead).
    pub fn worker_addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Workers rejected at registration, with reasons.
    pub fn rejected(&self) -> &[(String, String)] {
        &self.rejected
    }

    /// Snapshot every counter for metrics and the run manifest.
    pub fn stats(&self) -> FanoutStats {
        FanoutStats {
            workers: self
                .workers
                .iter()
                .map(|w| WorkerStats {
                    addr: w.addr.clone(),
                    alive: w.alive.load(Ordering::Relaxed),
                    shards_dispatched: w.shards_dispatched.load(Ordering::Relaxed),
                    shards_completed: w.shards_completed.load(Ordering::Relaxed),
                    failures: w.failures.load(Ordering::Relaxed),
                    wall_us_sum: w.wall_us_sum.load(Ordering::Relaxed),
                    wall_hist: w
                        .wall_hist
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                })
                .collect(),
            rejected: self.rejected.clone(),
            shards_total: self.shards_total.load(Ordering::Relaxed),
            shards_done: self.shards_done.load(Ordering::Relaxed),
            shards_retried: self.shards_retried.load(Ordering::Relaxed),
            shards_hedged: self.shards_hedged.load(Ordering::Relaxed),
        }
    }

    /// Fans `req` out across the live fleet and merges the per-shard
    /// rows into one counts vector, byte-identical to a single-node
    /// `sweep_attackers` over the same pool.
    pub fn run_sweep(
        &self,
        req: &SweepRequest,
        observer: &dyn SweepObserver,
    ) -> Result<Vec<u32>, FanoutError> {
        let live: Vec<&Worker> = self
            .workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .collect();
        if live.is_empty() {
            return Err(FanoutError::NoWorkers);
        }
        if req.pool_asns.is_empty() {
            return Ok(Vec::new());
        }
        let plan = ShardPlan::new(
            req.pool_asns.len(),
            live.len() * self.config.shards_per_worker.max(1),
        );
        observer.on_plan(plan.num_shards);
        self.shards_total
            .fetch_add(plan.num_shards as u64, Ordering::Relaxed);
        let ctx = RunCtx {
            req,
            plan,
            states: (0..plan.num_shards).map(|_| ShardState::new()).collect(),
            queue: Mutex::new((0..plan.num_shards).collect()),
            done_count: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            last_error: Mutex::new("fan-out produced no result".to_string()),
            observer,
            key_base: format!(
                "fo{:x}-{}",
                self.nonce,
                self.sweep_seq.fetch_add(1, Ordering::Relaxed)
            ),
        };
        std::thread::scope(|scope| {
            for worker in &live {
                let ctx = &ctx;
                scope.spawn(move || self.worker_loop(worker, ctx));
            }
        });
        if ctx.cancelled.load(Ordering::Relaxed) {
            return Err(FanoutError::Cancelled);
        }
        if ctx.done_count.load(Ordering::Relaxed) != ctx.plan.num_shards {
            return Err(FanoutError::Failed(lock(&ctx.last_error).clone()));
        }
        let rows: Vec<Vec<u32>> = ctx
            .states
            .iter()
            .map(|st| lock(&st.result).take().expect("done shard holds its rows"))
            .collect();
        ctx.plan.merge(&rows).map_err(FanoutError::Failed)
    }

    /// One worker's dispatch loop: drain the shared queue, then hedge
    /// stragglers, until the sweep completes, aborts, or this worker
    /// dies.
    fn worker_loop(&self, worker: &Worker, ctx: &RunCtx<'_>) {
        let mut client: Option<Client> = None;
        loop {
            if ctx.abort.load(Ordering::Relaxed) {
                return;
            }
            if ctx.observer.cancelled() {
                ctx.cancelled.store(true, Ordering::Relaxed);
                ctx.abort.store(true, Ordering::Relaxed);
                return;
            }
            if ctx.done_count.load(Ordering::Relaxed) == ctx.plan.num_shards {
                return;
            }
            let Some((shard, is_hedge)) = self.next_shard(ctx) else {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            if is_hedge {
                self.shards_hedged.fetch_add(1, Ordering::Relaxed);
                ctx.observer.on_hedge();
            }
            let st = &ctx.states[shard];
            let attempt = st.attempts.fetch_add(1, Ordering::Relaxed) + 1;
            if attempt > self.config.max_attempts {
                *lock(&ctx.last_error) = format!(
                    "shard {shard} failed after {} attempts: {}",
                    self.config.max_attempts,
                    lock(&ctx.last_error)
                );
                ctx.abort.store(true, Ordering::Relaxed);
                return;
            }
            if st.inflight.fetch_add(1, Ordering::Relaxed) == 0 {
                // First dispatch in flight starts the straggler clock;
                // a hedge rides the original's.
                *lock(&st.started) = Some(Instant::now());
            }
            worker.shards_dispatched.fetch_add(1, Ordering::Relaxed);
            let begun = Instant::now();
            let outcome = self.dispatch_shard(&mut client, worker, ctx, shard);
            st.inflight.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(rows) => {
                    worker.consecutive_failures.store(0, Ordering::Relaxed);
                    worker.shards_completed.fetch_add(1, Ordering::Relaxed);
                    let us = u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
                    worker.wall_us_sum.fetch_add(us, Ordering::Relaxed);
                    worker.wall_hist[wall_bucket(us)].fetch_add(1, Ordering::Relaxed);
                    // First result wins; a slower duplicate is dropped.
                    if !st.done.swap(true, Ordering::Relaxed) {
                        *lock(&st.result) = Some(rows);
                        ctx.done_count.fetch_add(1, Ordering::Relaxed);
                        self.shards_done.fetch_add(1, Ordering::Relaxed);
                        ctx.observer.on_shard_done(ctx.plan.shard_len(shard));
                    }
                }
                Err(ShardError::Abandoned) => {}
                Err(ShardError::Failed(message)) => {
                    worker.failures.fetch_add(1, Ordering::Relaxed);
                    let fails = worker.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                    *lock(&ctx.last_error) = format!("worker {}: {message}", worker.addr);
                    if !st.done.load(Ordering::Relaxed) {
                        lock(&ctx.queue).push_back(shard);
                        self.shards_retried.fetch_add(1, Ordering::Relaxed);
                        ctx.observer.on_retry();
                    }
                    // A failed connection is suspect; reopen next time.
                    client = None;
                    if fails >= DEAD_AFTER {
                        worker.alive.store(false, Ordering::Relaxed);
                        return;
                    }
                    let backoff_ms = (50u64 << u64::from(fails - 1).min(5)).min(2_000);
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                }
            }
        }
    }

    /// Next shard for an idle worker: queued work first, then the
    /// slowest outstanding shard past the hedge threshold.
    fn next_shard(&self, ctx: &RunCtx<'_>) -> Option<(usize, bool)> {
        {
            let mut queue = lock(&ctx.queue);
            while let Some(shard) = queue.pop_front() {
                if !ctx.states[shard].done.load(Ordering::Relaxed) {
                    return Some((shard, false));
                }
            }
        }
        let now = Instant::now();
        let mut slowest: Option<(usize, Duration)> = None;
        for (shard, st) in ctx.states.iter().enumerate() {
            if st.done.load(Ordering::Relaxed)
                || st.hedged.load(Ordering::Relaxed)
                || st.inflight.load(Ordering::Relaxed) == 0
            {
                continue;
            }
            let Some(started) = *lock(&st.started) else {
                continue;
            };
            let waited = now.saturating_duration_since(started);
            if waited < self.config.hedge_after {
                continue;
            }
            if slowest.is_none_or(|(_, best)| waited > best) {
                slowest = Some((shard, waited));
            }
        }
        let (shard, _) = slowest?;
        // The swap arbitrates between two idle workers eyeing the same
        // straggler: exactly one hedge per shard.
        (!ctx.states[shard].hedged.swap(true, Ordering::Relaxed)).then_some((shard, true))
    }

    fn dispatch_shard(
        &self,
        client_slot: &mut Option<Client>,
        worker: &Worker,
        ctx: &RunCtx<'_>,
        shard: usize,
    ) -> Result<Vec<u32>, ShardError> {
        let members = ctx.plan.members(&ctx.req.pool_asns, shard);
        if client_slot.is_none() {
            *client_slot = Some(
                Client::connect_with_timeout(&worker.addr, DISPATCH_READ_TIMEOUT)
                    .map_err(|e| ShardError::Failed(format!("connect: {e}")))?,
            );
        }
        let client = client_slot.as_mut().expect("client just ensured");
        if members.len() <= BATCH_DISPATCH_MAX {
            self.dispatch_batch(client, ctx, &members)
        } else {
            self.dispatch_sweep(client, ctx, shard, &members)
        }
    }

    /// Small shard: one synchronous batch request, counts read straight
    /// out of `results[i].result.pollution_count`.
    fn dispatch_batch(
        &self,
        client: &mut Client,
        ctx: &RunCtx<'_>,
        members: &[u32],
    ) -> Result<Vec<u32>, ShardError> {
        let mut attacks = String::new();
        for (i, &attacker) in members.iter().enumerate() {
            if i > 0 {
                attacks.push(',');
            }
            attacks.push_str(&format!(
                "{{\"attacker\":{attacker},\"target\":{}}}",
                ctx.req.target_asn
            ));
        }
        let body = format!(
            "{{\"defense\":{},\"attacks\":[{attacks}]}}",
            defense_body(ctx.req)
        );
        let (status, response) = client
            .request("POST", "/v1/attacks:batch", &body)
            .map_err(|e| ShardError::Failed(format!("attacks:batch: {e}")))?;
        if status != 200 {
            return Err(ShardError::Failed(format!(
                "attacks:batch returned {status}: {}",
                excerpt(&response)
            )));
        }
        let json = Json::parse(&response)
            .map_err(|e| ShardError::Failed(format!("attacks:batch response: {e}")))?;
        let Some(Json::Arr(entries)) = get(&json, "results") else {
            return Err(ShardError::Failed(
                "attacks:batch response lacks \"results\"".to_string(),
            ));
        };
        if entries.len() != members.len() {
            return Err(ShardError::Failed(format!(
                "attacks:batch answered {} of {} attacks",
                entries.len(),
                members.len()
            )));
        }
        entries
            .iter()
            .map(|entry| {
                if let Some(message) = get_str(entry, "error") {
                    return Err(ShardError::Failed(format!("batch item failed: {message}")));
                }
                get(entry, "result")
                    .and_then(|result| get_u64(result, "pollution_count"))
                    .map(|n| n as u32)
                    .ok_or_else(|| {
                        ShardError::Failed("batch item lacks result.pollution_count".to_string())
                    })
            })
            .collect()
    }

    /// Large shard: async sweep job with an idempotency key (stable
    /// across retries, so a resend after a timed-out submit dedupes
    /// server-side instead of double-scheduling), polled to completion.
    fn dispatch_sweep(
        &self,
        client: &mut Client,
        ctx: &RunCtx<'_>,
        shard: usize,
        members: &[u32],
    ) -> Result<Vec<u32>, ShardError> {
        let attackers: Vec<String> = members.iter().map(u32::to_string).collect();
        let key = format!("{}-shard{shard}", ctx.key_base);
        let body = format!(
            "{{\"target\":{},\"attackers\":[{}],\"defense\":{},\"idempotency_key\":\"{key}\"}}",
            ctx.req.target_asn,
            attackers.join(","),
            defense_body(ctx.req)
        );
        let (status, response) = client
            .request("POST", "/v1/sweeps", &body)
            .map_err(|e| ShardError::Failed(format!("sweep submit: {e}")))?;
        // 202 fresh, 200 deduped onto an earlier attempt's job.
        if status != 202 && status != 200 {
            return Err(ShardError::Failed(format!(
                "sweep submit returned {status}: {}",
                excerpt(&response)
            )));
        }
        let submitted = Json::parse(&response)
            .map_err(|e| ShardError::Failed(format!("sweep submit response: {e}")))?;
        let id = get_str(&submitted, "id")
            .ok_or_else(|| ShardError::Failed("sweep submit response lacks \"id\"".to_string()))?
            .to_string();
        let deadline = Instant::now() + self.config.shard_timeout;
        loop {
            if ctx.states[shard].done.load(Ordering::Relaxed)
                || ctx.abort.load(Ordering::Relaxed)
                || ctx.observer.cancelled()
            {
                // The result is no longer wanted (a hedge twin won, or
                // the sweep is over): stop billing the worker for it.
                let _ = client.request("DELETE", &format!("/v1/jobs/{id}"), "");
                return Err(ShardError::Abandoned);
            }
            if Instant::now() >= deadline {
                let _ = client.request("DELETE", &format!("/v1/jobs/{id}"), "");
                return Err(ShardError::Failed(format!(
                    "shard job {id} exceeded {:.0?}",
                    self.config.shard_timeout
                )));
            }
            let (status, response) = client
                .request("GET", &format!("/v1/jobs/{id}"), "")
                .map_err(|e| ShardError::Failed(format!("poll {id}: {e}")))?;
            if status != 200 {
                return Err(ShardError::Failed(format!(
                    "poll {id} returned {status}: {}",
                    excerpt(&response)
                )));
            }
            let job = Json::parse(&response)
                .map_err(|e| ShardError::Failed(format!("poll {id} response: {e}")))?;
            match get_str(&job, "state") {
                Some("done") => break,
                Some("queued") | Some("running") => std::thread::sleep(self.config.poll_interval),
                Some(other) => {
                    return Err(ShardError::Failed(format!("shard job {id} ended {other}")))
                }
                None => {
                    return Err(ShardError::Failed(format!(
                        "poll {id} response lacks \"state\""
                    )))
                }
            }
        }
        let (status, response) = client
            .request("GET", &format!("/v1/results/{id}"), "")
            .map_err(|e| ShardError::Failed(format!("results {id}: {e}")))?;
        if status != 200 {
            return Err(ShardError::Failed(format!(
                "results {id} returned {status}: {}",
                excerpt(&response)
            )));
        }
        let results = Json::parse(&response)
            .map_err(|e| ShardError::Failed(format!("results {id} response: {e}")))?;
        let Some(Json::Arr(counts)) = get(&results, "result").and_then(|r| get(r, "counts")) else {
            return Err(ShardError::Failed(format!(
                "results {id} lack result.counts"
            )));
        };
        if counts.len() != members.len() {
            return Err(ShardError::Failed(format!(
                "results {id} carry {} counts for {} attackers",
                counts.len(),
                members.len()
            )));
        }
        counts
            .iter()
            .map(|value| match value {
                Json::Num(n) => Ok(*n as u32),
                _ => Err(ShardError::Failed(format!(
                    "results {id} counts are not numeric"
                ))),
            })
            .collect()
    }
}

/// Live state of one sweep run, shared across worker threads.
struct RunCtx<'a> {
    req: &'a SweepRequest,
    plan: ShardPlan,
    states: Vec<ShardState>,
    queue: Mutex<VecDeque<usize>>,
    done_count: AtomicUsize,
    abort: AtomicBool,
    cancelled: AtomicBool,
    last_error: Mutex<String>,
    observer: &'a dyn SweepObserver,
    key_base: String,
}

struct ShardState {
    done: AtomicBool,
    result: Mutex<Option<Vec<u32>>>,
    attempts: AtomicU32,
    inflight: AtomicU32,
    started: Mutex<Option<Instant>>,
    hedged: AtomicBool,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            done: AtomicBool::new(false),
            result: Mutex::new(None),
            attempts: AtomicU32::new(0),
            inflight: AtomicU32::new(0),
            started: Mutex::new(None),
            hedged: AtomicBool::new(false),
        }
    }
}

enum ShardError {
    /// The shard's result became unnecessary mid-dispatch (hedge twin
    /// won, sweep aborted); not a worker failure.
    Abandoned,
    Failed(String),
}

/// The wire `defense` object for a request.
fn defense_body(req: &SweepRequest) -> String {
    let validators: Vec<String> = req.validator_asns.iter().map(u32::to_string).collect();
    format!(
        "{{\"validators\":[{}],\"stub_defense\":{}}}",
        validators.join(","),
        req.stub_defense
    )
}

/// First line-ish of an error body, for diagnostics without dumping a
/// whole sweep result into a message.
fn excerpt(body: &str) -> String {
    let trimmed = body.trim();
    if trimmed.len() <= 200 {
        return trimmed.to_string();
    }
    let mut end = 200;
    while !trimmed.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &trimmed[..end])
}

/// Registration-time compatibility probe against `/v1/healthz`.
fn probe(addr: &str, expect: &Handshake) -> Result<(), String> {
    let mut client = Client::connect_with_timeout(addr, PROBE_READ_TIMEOUT)
        .map_err(|e| format!("unreachable: {e}"))?;
    let (status, body) = client
        .request("GET", "/v1/healthz", "")
        .map_err(|e| format!("healthz failed: {e}"))?;
    if status != 200 {
        return Err(format!("healthz returned {status}"));
    }
    let json = Json::parse(&body).map_err(|e| format!("healthz unparseable: {e}"))?;
    if get_str(&json, "status") != Some("ok") {
        return Err(format!(
            "worker is {}",
            get_str(&json, "status").unwrap_or("in an unknown state")
        ));
    }
    let check_num = |key: &str, want: u64| -> Result<(), String> {
        match get_u64(&json, key) {
            Some(got) if got == want => Ok(()),
            Some(got) => Err(format!("{key} mismatch: worker has {got}, expected {want}")),
            None => Err(format!(
                "worker does not advertise {key} (upgrade the worker)"
            )),
        }
    };
    check_num("schema_version", expect.schema_version)?;
    check_num("seed", expect.seed)?;
    check_num("num_ases", expect.num_ases)?;
    match get_str(&json, "scale") {
        Some(got) if got == expect.scale => Ok(()),
        Some(got) => Err(format!(
            "scale mismatch: worker runs {got:?}, expected {:?}",
            expect.scale
        )),
        None => Err("worker does not advertise scale".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_urls_normalize() {
        assert_eq!(normalize_addr("http://h1:8080"), "h1:8080");
        assert_eq!(normalize_addr("h1:8080/"), "h1:8080");
        assert_eq!(normalize_addr(" http://h1:8080/ "), "h1:8080");
    }

    #[test]
    fn unreachable_workers_are_rejected_not_fatal() {
        // Port 9 (discard) on localhost is a safe nothing-listens bet.
        let config = FanoutConfig::new(vec!["127.0.0.1:9".to_string()]);
        let expect = Handshake {
            schema_version: 1,
            scale: "quick".to_string(),
            seed: 2014,
            num_ases: 100,
        };
        let coordinator = Coordinator::connect(config, &expect);
        assert_eq!(coordinator.live_workers(), 0);
        assert_eq!(coordinator.rejected().len(), 1);
        let req = SweepRequest {
            target_asn: 1,
            pool_asns: vec![2, 3],
            validator_asns: Vec::new(),
            stub_defense: false,
        };
        assert_eq!(
            coordinator.run_sweep(&req, &NoopObserver),
            Err(FanoutError::NoWorkers)
        );
    }

    #[test]
    fn empty_pool_short_circuits() {
        let coordinator = Coordinator {
            config: FanoutConfig::new(Vec::new()),
            workers: vec![Worker::new("unused:0".to_string())],
            rejected: Vec::new(),
            nonce: 0,
            sweep_seq: AtomicU64::new(0),
            shards_total: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            shards_retried: AtomicU64::new(0),
            shards_hedged: AtomicU64::new(0),
        };
        let req = SweepRequest {
            target_asn: 1,
            pool_asns: Vec::new(),
            validator_asns: Vec::new(),
            stub_defense: false,
        };
        assert_eq!(coordinator.run_sweep(&req, &NoopObserver), Ok(Vec::new()));
    }
}
