//! The fan-out contract: stride-sharding an attacker pool and merging
//! the per-shard sweep rows positionally is **bit-identical** to sweeping
//! the whole pool on one node — across random topologies, shard counts,
//! and both routing policies. This is what lets the coordinator hedge
//! and retry shards freely: shard evaluation is pure, so any correct
//! execution of the plan produces the same bytes.

use proptest::prelude::*;

use bgpsim_fanout::ShardPlan;
use bgpsim_hijack::{Defense, Simulator};
use bgpsim_routing::PolicyConfig;
use bgpsim_topology::gen::{generate, InternetParams};
use bgpsim_topology::AsIndex;

fn tiny_internet(seed: u64) -> bgpsim_topology::gen::GeneratedInternet {
    let mut p = InternetParams::sized(120);
    p.island = None;
    p.ladder_count = 1;
    generate(&p, seed)
}

/// The shard counts the service tier actually produces (1 worker × 1
/// shard up to e.g. 2 workers × 3 shards, plus a ragged prime).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// merge(sweep(shard_0), …, sweep(shard_{n-1})) == sweep(pool),
    /// byte for byte, for every shard count and both policies.
    #[test]
    fn merge_matches_single_node(
        seed in 0u64..200,
        ti in 0usize..120,
        shard_sel in 0usize..SHARD_COUNTS.len(),
        strict in 0usize..2,
        defended in 0usize..2,
    ) {
        let (strict, defended) = (strict == 1, defended == 1);
        let net = tiny_internet(seed);
        let topo = &net.topology;
        let n = topo.num_ases();
        let target = AsIndex::new((ti % n) as u32);
        let policy = if strict {
            PolicyConfig::strict_gao_rexford()
        } else {
            PolicyConfig::paper()
        };
        let defense = if defended {
            // A deployed defense exercises the baseline-backed sweep path.
            Defense::validators(topo, topo.transit_ases().into_iter().take(8))
        } else {
            Defense::none()
        };
        let sim = Simulator::new(topo, policy);
        let pool: Vec<AsIndex> = topo
            .indices()
            .filter(|&a| a != target)
            .step_by(2)
            .collect();

        let single = sim.sweep_attackers(target, &pool, &defense);

        let num_shards = SHARD_COUNTS[shard_sel];
        let plan = ShardPlan::new(pool.len(), num_shards);
        let shard_rows: Vec<Vec<u32>> = (0..plan.num_shards)
            .map(|k| {
                let members = plan.members(&pool, k);
                sim.sweep_attackers(target, &members, &defense)
            })
            .collect();
        let merged = plan.merge(&shard_rows).expect("well-formed shard rows");

        prop_assert_eq!(&merged, &single, "seed {} shards {}", seed, num_shards);
    }
}
