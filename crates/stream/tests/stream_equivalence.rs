//! Property tests pinning the incremental stream detector bit-identical
//! to the from-scratch batch oracle, plus a hand-built detection-latency
//! fixture with known ground truth.
//!
//! The incremental path caches one `Baseline` per tracked target and
//! replays only the delta cone per event (falling back to the simulator's
//! engine-per-attack dispatch when no defense localizes); the batch
//! oracle re-runs every active hijack from scratch with the generation
//! engine at every event. Every series sample, every detection seq, and
//! every latency must agree — the same equivalence discipline the routing
//! crate's `delta_equivalence` suite applies to the engine itself. The
//! matrix covers random topologies × both policies × {none, ROV,
//! ROV+stub} starting defenses, with defense churn flipping validators
//! mid-stream.

use proptest::prelude::*;

use bgpsim_detection::ProbeSet;
use bgpsim_hijack::{Attack, Simulator};
use bgpsim_routing::PolicyConfig;
use bgpsim_stream::{
    run_stream, triggered_series, DetectorMode, EventKind, StreamConfig, StreamEvent, StreamPlan,
    SERIES_POLLUTION,
};
use bgpsim_topology::{AsId, LinkKind, Topology, TopologyBuilder};

/// Random topology recipe — same shape as the routing equivalence suites:
/// provider links oriented small→large index keep the hierarchy acyclic.
#[derive(Debug, Clone)]
struct Recipe {
    n: u32,
    p2c: Vec<(u32, u32)>,
    p2p: Vec<(u32, u32)>,
    events: usize,
    seed: u64,
    /// 0 = none (and no flips), 1 = ROV, 2 = ROV+stub.
    defense_mode: u8,
    probe_seed: u64,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (5u32..20).prop_flat_map(|n| {
        let pair = (0..n, 0..n);
        (
            proptest::collection::vec(pair.clone(), 4..32),
            proptest::collection::vec(pair, 0..8),
            8usize..40,
            0u64..1_000_000,
            0u8..3,
            0u64..1_000_000,
        )
            .prop_map(
                move |(p2c, p2p, events, seed, defense_mode, probe_seed)| Recipe {
                    n,
                    p2c,
                    p2p,
                    events,
                    seed,
                    defense_mode,
                    probe_seed,
                },
            )
    })
}

fn build(recipe: &Recipe) -> Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..recipe.n {
        b.add_as(AsId::new(i + 1));
    }
    for &(x, y) in &recipe.p2c {
        if x != y {
            let (p, c) = if x < y { (x, y) } else { (y, x) };
            let _ = b.add_link(
                AsId::new(p + 1),
                AsId::new(c + 1),
                LinkKind::ProviderToCustomer,
            );
        }
    }
    for &(x, y) in &recipe.p2p {
        if x != y {
            let _ = b.add_link(AsId::new(x + 1), AsId::new(y + 1), LinkKind::PeerToPeer);
        }
    }
    b.build().expect("non-empty")
}

fn assert_stream_equivalence(recipe: &Recipe) -> Result<(), TestCaseError> {
    let topo = build(recipe);
    if topo.transit_ases().len() < 2 {
        // Nothing to attack from — the generator (rightly) refuses.
        return Ok(());
    }
    let config = StreamConfig {
        events: recipe.events,
        seed: recipe.seed,
        num_targets: 2,
        validator_fraction: if recipe.defense_mode == 0 { 0.0 } else { 0.4 },
        stub_defense: recipe.defense_mode == 2,
        // Mode "none" keeps the defense empty for the whole stream (no
        // flips), exercising the non-localizing fallback path throughout;
        // the ROV modes churn validators so streams cross the localizing
        // boundary mid-flight.
        flip_weight: if recipe.defense_mode == 0 { 0 } else { 2 },
        reannounce_weight: 3,
        inject_weight: 3,
    };
    let plan = StreamPlan::generate(&topo, &config);
    let probe_sets = vec![
        ProbeSet::tier1(&topo),
        ProbeSet::random(&topo, 4, recipe.probe_seed),
    ];
    for policy in [PolicyConfig::paper(), PolicyConfig::strict_gao_rexford()] {
        let sim = Simulator::new(&topo, policy);
        let incremental = run_stream(&sim, &probe_sets, &plan, DetectorMode::Incremental);
        let batch = run_stream(&sim, &probe_sets, &plan, DetectorMode::Batch);
        prop_assert_eq!(
            &incremental.hijacks,
            &batch.hijacks,
            "hijack records diverge (policy tier1_shortest_path={})",
            policy.tier1_shortest_path
        );
        prop_assert_eq!(
            &incremental.store,
            &batch.store,
            "series diverge (policy tier1_shortest_path={})",
            policy.tier1_shortest_path
        );
        // Structural sanity on top of equality: dense series cover every
        // event, and the record count matches the plan's ground truth.
        prop_assert_eq!(incremental.hijacks.len(), plan.injected_hijacks());
        prop_assert_eq!(
            incremental
                .store
                .series(SERIES_POLLUTION)
                .map_or(0, bgpsim_stream::ChunkedSeries::len),
            plan.events.len()
        );
    }
    Ok(())
}

/// Hand-built ground truth: a hijack that is invisible under ROV at the
/// attacker's provider, then becomes visible the moment that validator
/// flips off — detection latency exactly 2 events.
#[test]
fn pinned_latency_fixture() {
    // AS1 -- AS2 peer; AS1 -> {9, 5}, AS2 -> {8, 6} provider links.
    let topo = bgpsim_topology::topology_from_triples(&[
        (1, 2, LinkKind::PeerToPeer),
        (1, 9, LinkKind::ProviderToCustomer),
        (2, 8, LinkKind::ProviderToCustomer),
        (1, 5, LinkKind::ProviderToCustomer),
        (2, 6, LinkKind::ProviderToCustomer),
    ]);
    let ix = |n: u32| topo.index_of(AsId::new(n)).unwrap();
    let attack = Attack::origin(ix(8), ix(9));
    // AS2 validates: the bogus announcement from its customer AS8 is
    // rejected at AS2 and propagates nowhere.
    let plan = StreamPlan {
        initial_validators: vec![ix(2)],
        targets: vec![ix(9)],
        stub_defense: false,
        events: vec![
            StreamEvent {
                seq: 0,
                kind: EventKind::HijackInject { attack },
            },
            StreamEvent {
                seq: 1,
                kind: EventKind::TargetReannounce { target: ix(9) },
            },
            StreamEvent {
                seq: 2,
                kind: EventKind::DefenseFlip { who: ix(2) },
            },
        ],
    };
    let probes = vec![ProbeSet::new("as6", vec![ix(6)])];
    let sim = Simulator::new(&topo, PolicyConfig::paper());
    for mode in [DetectorMode::Incremental, DetectorMode::Batch] {
        let out = run_stream(&sim, &probes, &plan, mode);
        assert_eq!(out.hijacks.len(), 1, "{mode:?}");
        let h = &out.hijacks[0];
        assert_eq!(h.injected_seq, 0);
        assert_eq!(h.detected_seq, Some(2), "{mode:?}");
        assert_eq!(h.latency(), Some(2), "{mode:?}");
        // While AS2 validates, the hijack pollutes nothing; once the flip
        // lands, AS2 and AS6 adopt the bogus route and the AS6 probe sees
        // it.
        let pollution: Vec<(u64, f64)> = out
            .store
            .series(SERIES_POLLUTION)
            .unwrap()
            .range(0, u64::MAX);
        assert_eq!(pollution, vec![(0, 0.0), (1, 0.0), (2, 2.0)], "{mode:?}");
        let triggered: Vec<(u64, f64)> = out
            .store
            .series(&triggered_series(0))
            .unwrap()
            .range(0, u64::MAX);
        assert_eq!(triggered, vec![(0, 0.0), (1, 0.0), (2, 1.0)], "{mode:?}");
        let latency: Vec<(u64, f64)> = out
            .store
            .series(bgpsim_stream::SERIES_LATENCY)
            .unwrap()
            .range(0, u64::MAX);
        assert_eq!(latency, vec![(2, 2.0)], "{mode:?}");
        let s = out.summary();
        assert_eq!((s.injected, s.detected), (1, 1));
        assert_eq!(s.mean_latency, Some(2.0));
        assert_eq!(s.max_latency, Some(2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental stream detection is bit-identical to the from-scratch
    /// batch oracle across random topologies, both policies, and all
    /// three starting defenses.
    #[test]
    fn incremental_matches_batch_oracle(recipe in arb_recipe()) {
        assert_stream_equivalence(&recipe)?;
    }
}
