//! A fixed-size chunked ring store for stream metrics.
//!
//! Each metric is an append-only series of `(seq, value)` samples held in
//! fixed-capacity chunks; when a series exceeds its chunk budget the
//! oldest chunk is dropped whole (ring eviction), so memory is bounded no
//! matter how long a stream runs. Queries are seq-range reads plus
//! windowed min/max/mean aggregation; empty windows report `None` — the
//! same "absence is not zero" discipline the detection reports follow.

use std::collections::VecDeque;

/// One fixed-capacity run of samples. Samples within a chunk are in
/// strictly appended (non-decreasing seq) order.
#[derive(Debug, Clone, Default, PartialEq)]
struct Chunk {
    seqs: Vec<u64>,
    values: Vec<f64>,
}

/// An append-only series with ring eviction.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedSeries {
    chunk_size: usize,
    max_chunks: usize,
    chunks: VecDeque<Chunk>,
    /// Total samples ever appended (including evicted ones).
    appended: u64,
    /// Total samples evicted.
    evicted: u64,
}

/// Windowed aggregate over one `[start, start + window)` span. Empty
/// windows carry `count == 0` and `None` stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// First seq covered by the window (inclusive).
    pub start: u64,
    /// Samples inside the window.
    pub count: usize,
    /// Smallest sample, `None` when the window is empty.
    pub min: Option<f64>,
    /// Largest sample, `None` when the window is empty.
    pub max: Option<f64>,
    /// Mean sample, `None` when the window is empty.
    pub mean: Option<f64>,
}

impl ChunkedSeries {
    /// Builds a series that retains at most `chunk_size * max_chunks`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics when either capacity is 0.
    pub fn new(chunk_size: usize, max_chunks: usize) -> ChunkedSeries {
        assert!(chunk_size > 0, "chunk_size must be positive");
        assert!(max_chunks > 0, "max_chunks must be positive");
        ChunkedSeries {
            chunk_size,
            max_chunks,
            chunks: VecDeque::new(),
            appended: 0,
            evicted: 0,
        }
    }

    /// Appends one sample. Seqs must be appended in non-decreasing order
    /// (the stream's event loop guarantees this); violating that breaks
    /// range queries.
    pub fn push(&mut self, seq: u64, value: f64) {
        let needs_chunk = self
            .chunks
            .back()
            .is_none_or(|c| c.seqs.len() >= self.chunk_size);
        if needs_chunk {
            if self.chunks.len() >= self.max_chunks {
                if let Some(old) = self.chunks.pop_front() {
                    self.evicted += old.seqs.len() as u64;
                }
            }
            self.chunks.push_back(Chunk {
                seqs: Vec::with_capacity(self.chunk_size),
                values: Vec::with_capacity(self.chunk_size),
            });
        }
        let chunk = self.chunks.back_mut().expect("chunk just ensured");
        chunk.seqs.push(seq);
        chunk.values.push(value);
        self.appended += 1;
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.seqs.len()).sum()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|c| c.seqs.is_empty())
    }

    /// Total samples ever appended, evicted ones included.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Samples dropped by ring eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Seq of the oldest retained sample.
    pub fn earliest_seq(&self) -> Option<u64> {
        self.chunks.front().and_then(|c| c.seqs.first().copied())
    }

    /// Seq of the newest retained sample.
    pub fn latest_seq(&self) -> Option<u64> {
        self.chunks.back().and_then(|c| c.seqs.last().copied())
    }

    /// All retained samples with `from <= seq <= to`, in order.
    pub fn range(&self, from: u64, to: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        for chunk in &self.chunks {
            // Chunks are seq-ordered, so skip whole chunks outside the
            // span instead of scanning every sample.
            match (chunk.seqs.first(), chunk.seqs.last()) {
                (Some(&first), Some(&last)) => {
                    if last < from {
                        continue;
                    }
                    if first > to {
                        break;
                    }
                }
                _ => continue,
            }
            for (&seq, &value) in chunk.seqs.iter().zip(&chunk.values) {
                if seq >= from && seq <= to {
                    out.push((seq, value));
                }
            }
        }
        out
    }

    /// Windowed min/max/mean over `[from, to]`, one [`WindowStats`] per
    /// `window`-wide span starting at `from`. Spans past `to` are not
    /// emitted; empty spans are (with `None` stats), so the caller can
    /// tell "no samples here" from "samples averaging zero".
    ///
    /// # Panics
    ///
    /// Panics when `window` is 0.
    pub fn window_agg(&self, from: u64, to: u64, window: u64) -> Vec<WindowStats> {
        assert!(window > 0, "window must be positive");
        if to < from {
            return Vec::new();
        }
        let samples = self.range(from, to);
        let num_windows = ((to - from) / window + 1) as usize;
        let mut out: Vec<WindowStats> = (0..num_windows)
            .map(|i| WindowStats {
                start: from + i as u64 * window,
                count: 0,
                min: None,
                max: None,
                mean: None,
            })
            .collect();
        // First pass accumulates sums into `mean`; finalized below.
        for (seq, value) in samples {
            let w = &mut out[((seq - from) / window) as usize];
            w.count += 1;
            w.min = Some(w.min.map_or(value, |m| m.min(value)));
            w.max = Some(w.max.map_or(value, |m| m.max(value)));
            w.mean = Some(w.mean.unwrap_or(0.0) + value);
        }
        for w in &mut out {
            if w.count > 0 {
                w.mean = w.mean.map(|sum| sum / w.count as f64);
            }
        }
        out
    }
}

/// A named collection of series, insertion-ordered so manifests and API
/// responses list metrics deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStore {
    chunk_size: usize,
    max_chunks: usize,
    series: Vec<(String, ChunkedSeries)>,
}

impl StreamStore {
    /// Builds a store whose series each retain at most
    /// `chunk_size * max_chunks` samples.
    pub fn new(chunk_size: usize, max_chunks: usize) -> StreamStore {
        StreamStore {
            chunk_size,
            max_chunks,
            series: Vec::new(),
        }
    }

    /// A store sized to retain a full stream of `events` samples per
    /// series without eviction (512-sample chunks).
    pub fn sized_for(events: usize) -> StreamStore {
        let chunk_size = 512;
        StreamStore::new(chunk_size, events.div_ceil(chunk_size).max(1))
    }

    /// Appends to `name`, creating the series on first use.
    pub fn push(&mut self, name: &str, seq: u64, value: f64) {
        if let Some((_, s)) = self.series.iter_mut().find(|(n, _)| n == name) {
            s.push(seq, value);
            return;
        }
        let mut s = ChunkedSeries::new(self.chunk_size, self.max_chunks);
        s.push(seq, value);
        self.series.push((name.to_string(), s));
    }

    /// The series named `name`, if any samples were ever pushed to it.
    pub fn series(&self, name: &str) -> Option<&ChunkedSeries> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// All series names, in first-push order.
    pub fn names(&self) -> Vec<&str> {
        self.series.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total retained samples across all series.
    pub fn total_samples(&self) -> usize {
        self.series.iter().map(|(_, s)| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_range() {
        let mut s = ChunkedSeries::new(4, 8);
        for seq in 0..20 {
            s.push(seq, seq as f64 * 2.0);
        }
        assert_eq!(s.len(), 20);
        assert_eq!(s.appended(), 20);
        assert_eq!(s.evicted(), 0);
        assert_eq!(s.earliest_seq(), Some(0));
        assert_eq!(s.latest_seq(), Some(19));
        let r = s.range(5, 8);
        assert_eq!(r, vec![(5, 10.0), (6, 12.0), (7, 14.0), (8, 16.0)]);
        assert!(s.range(30, 40).is_empty());
        // Inverted span is empty, not a panic.
        assert!(s.range(8, 5).is_empty());
    }

    #[test]
    fn ring_evicts_oldest_chunks() {
        let mut s = ChunkedSeries::new(4, 2);
        for seq in 0..20 {
            s.push(seq, seq as f64);
        }
        // Capacity is 2 chunks x 4 samples; the latest partial fill plus
        // one full predecessor survive.
        assert!(s.len() <= 8);
        assert_eq!(s.appended(), 20);
        assert_eq!(s.evicted() + s.len() as u64, 20);
        assert_eq!(s.latest_seq(), Some(19));
        let earliest = s.earliest_seq().unwrap();
        assert!(earliest >= 12, "old chunks must be gone, got {earliest}");
        // Ranges over evicted territory return only retained samples.
        let r = s.range(0, 19);
        assert_eq!(r.first().unwrap().0, earliest);
        assert_eq!(r.last().unwrap().0, 19);
    }

    #[test]
    fn window_agg_reports_empty_windows_as_none() {
        let mut s = ChunkedSeries::new(8, 8);
        s.push(0, 4.0);
        s.push(1, 8.0);
        // Nothing in [2, 3].
        s.push(5, 1.0);
        let w = s.window_agg(0, 5, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].start, 0);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].min, Some(4.0));
        assert_eq!(w[0].max, Some(8.0));
        assert_eq!(w[0].mean, Some(6.0));
        assert_eq!(w[1].count, 0);
        assert_eq!((w[1].min, w[1].max, w[1].mean), (None, None, None));
        assert_eq!(w[2].start, 4);
        assert_eq!(w[2].count, 1);
        assert_eq!(w[2].mean, Some(1.0));
    }

    #[test]
    fn window_agg_matches_brute_force() {
        let mut s = ChunkedSeries::new(3, 64);
        let values: Vec<(u64, f64)> = (0..100)
            .map(|i| (i, ((i * 37) % 19) as f64 - 9.0))
            .collect();
        for &(seq, v) in &values {
            s.push(seq, v);
        }
        for (from, to, window) in [(0, 99, 7), (13, 58, 10), (90, 99, 3), (4, 4, 1)] {
            let got = s.window_agg(from, to, window);
            for w in &got {
                let inside: Vec<f64> = values
                    .iter()
                    .filter(|&&(seq, _)| {
                        seq >= w.start && seq < w.start + window && seq >= from && seq <= to
                    })
                    .map(|&(_, v)| v)
                    .collect();
                assert_eq!(w.count, inside.len());
                if inside.is_empty() {
                    assert_eq!(w.min, None);
                } else {
                    assert_eq!(w.min, inside.iter().copied().reduce(f64::min));
                    assert_eq!(w.max, inside.iter().copied().reduce(f64::max));
                    let mean = inside.iter().sum::<f64>() / inside.len() as f64;
                    assert!((w.mean.unwrap() - mean).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn store_is_insertion_ordered() {
        let mut store = StreamStore::new(8, 4);
        store.push("pollution", 0, 1.0);
        store.push("latency", 3, 2.0);
        store.push("pollution", 1, 5.0);
        assert_eq!(store.names(), vec!["pollution", "latency"]);
        assert_eq!(store.total_samples(), 3);
        assert_eq!(store.series("pollution").unwrap().len(), 2);
        assert!(store.series("missing").is_none());
        let sized = StreamStore::sized_for(2000);
        assert_eq!(sized.names().len(), 0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        ChunkedSeries::new(2, 2).window_agg(0, 10, 0);
    }
}
