//! Incremental stream detection, with a from-scratch batch oracle.
//!
//! The detector consumes a [`StreamPlan`] event by event, maintaining the
//! current defense deployment and the set of active hijacks. After every
//! event it re-scores each active hijack against every probe set and
//! appends the per-event metrics to a [`StreamStore`].
//!
//! Two modes share all of that state machinery and differ only in how an
//! active hijack is evaluated:
//!
//! * [`DetectorMode::Incremental`] — the live path. One [`Baseline`] of
//!   the target's honest convergence is cached per tracked target and
//!   each evaluation replays only the attacker's contamination cone
//!   ([`Simulator::run_with_baseline`]). Origin validation can only
//!   reject routes whose origin differs from the authorized one, and the
//!   honest announcement's origin *is* the authorized one — so validator
//!   churn never changes a target's honest convergence and cached
//!   baselines survive defense flips (stub filtering, the other input
//!   that could shape them, is fixed for a stream's lifetime).
//!   Propagation is likewise a pure function of (attack, defense), so
//!   each active hijack's score is memoized and replayed only when an
//!   event could have changed it — every other event is O(1) for that
//!   hijack. When the current defense cannot localize cones (so no
//!   baseline is worth holding), evaluation falls through to the
//!   simulator's engine-per-attack dispatch.
//! * [`DetectorMode::Batch`] — the oracle. Every evaluation is a full
//!   from-scratch generation-engine run. Slow and trivially correct.
//!
//! The two modes are bit-identical on every series and every detection
//! (the `stream_equivalence` proptest pins this), which is what makes the
//! incremental path trustworthy — the same discipline the routing crate's
//! `delta_equivalence` suite applies to the engine itself.

use std::collections::{BTreeMap, HashMap};

use bgpsim_detection::ProbeSet;
use bgpsim_hijack::{Attack, AttackOutcome, Defense, Simulator, SweepMonitor};
use bgpsim_routing::{
    Announcement, Baseline, DeltaWorkspace, NullObserver, RaceWorkspace, Workspace,
};
use bgpsim_topology::AsIndex;

use crate::event::{EventKind, StreamEvent, StreamPlan};
use crate::store::StreamStore;

/// Series name for the per-event total polluted-AS count.
pub const SERIES_POLLUTION: &str = "pollution";
/// Series name for per-event detection latencies (sparse: one sample per
/// hijack, at the event where a probe first saw it).
pub const SERIES_LATENCY: &str = "latency";

/// Series name for probe set `i`'s per-event triggered count.
pub fn triggered_series(set_index: usize) -> String {
    format!("triggered_{set_index}")
}

/// How active hijacks are evaluated. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorMode {
    /// Per-target baseline cache plus delta-cone replay.
    Incremental,
    /// From-scratch generation engine per evaluation (the oracle).
    Batch,
}

/// Ground truth and detection outcome for one injected hijack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HijackRecord {
    /// The injected attack.
    pub attack: Attack,
    /// Event seq at which it was injected.
    pub injected_seq: u64,
    /// Event seq at which any probe first saw it, if ever.
    pub detected_seq: Option<u64>,
}

impl HijackRecord {
    /// Detection latency in events (0 = seen at the injection event).
    pub fn latency(&self) -> Option<u64> {
        self.detected_seq.map(|d| d - self.injected_seq)
    }
}

/// Everything a finished stream run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Per-metric time series.
    pub store: StreamStore,
    /// One record per injection, in injection order.
    pub hijacks: Vec<HijackRecord>,
    /// Events processed.
    pub events: usize,
}

/// Aggregate numbers for manifests and API summaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Events processed.
    pub events: usize,
    /// Hijacks injected.
    pub injected: usize,
    /// Hijacks some probe eventually saw.
    pub detected: usize,
    /// Mean detection latency in events, `None` with no detections.
    pub mean_latency: Option<f64>,
    /// Worst detection latency in events, `None` with no detections.
    pub max_latency: Option<u64>,
}

impl StreamOutcome {
    /// Aggregates the hijack records into a [`StreamSummary`].
    pub fn summary(&self) -> StreamSummary {
        let latencies: Vec<u64> = self.hijacks.iter().filter_map(|h| h.latency()).collect();
        StreamSummary {
            events: self.events,
            injected: self.hijacks.len(),
            detected: latencies.len(),
            mean_latency: if latencies.is_empty() {
                None
            } else {
                Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64)
            },
            max_latency: latencies.iter().max().copied(),
        }
    }
}

/// One active hijack's metrics under the current (attack, defense)
/// inputs; valid until an event touches either.
#[derive(Debug, Clone)]
struct Score {
    pollution: u64,
    /// Probes triggered, one count per probe set.
    triggered: Vec<u64>,
}

/// The event-at-a-time stream detector. Drive it with
/// [`StreamDetector::apply`] (the server does, so range queries can read
/// the store mid-stream) or run a whole plan with [`run_stream`].
#[derive(Debug)]
pub struct StreamDetector<'a, 't> {
    sim: &'a Simulator<'t>,
    probe_sets: &'a [ProbeSet],
    mode: DetectorMode,
    stub_defense: bool,
    /// Validator membership bitmap, indexed by `AsIndex`.
    validators: Vec<bool>,
    /// Rebuilt from the bitmap whenever a flip lands.
    defense: Defense,
    /// One honest-convergence baseline per tracked target, built lazily.
    /// Valid for the whole stream: validators only reject unauthorized
    /// origins (never the honest one) and stub filtering is fixed, so no
    /// event can change a target's honest convergence.
    baselines: HashMap<AsIndex, Baseline>,
    /// Memoized per-target scores (incremental mode only), invalidated by
    /// any event that touches the score's inputs: defense flips (all),
    /// re-announcements and injections (that target).
    scores: HashMap<AsIndex, Score>,
    /// target -> index into `hijacks` of the currently active injection
    /// (BTreeMap so evaluation order is deterministic).
    active: BTreeMap<AsIndex, usize>,
    hijacks: Vec<HijackRecord>,
    ws: Workspace,
    dws: DeltaWorkspace,
    rws: RaceWorkspace,
}

impl<'a, 't> StreamDetector<'a, 't> {
    /// Builds a detector over `plan`'s initial conditions. `plan` only
    /// seeds the starting validator set here — events are fed one at a
    /// time through [`StreamDetector::apply`].
    pub fn new(
        sim: &'a Simulator<'t>,
        probe_sets: &'a [ProbeSet],
        plan: &StreamPlan,
        mode: DetectorMode,
    ) -> StreamDetector<'a, 't> {
        let mut validators = vec![false; sim.topology().num_ases()];
        for &ix in &plan.initial_validators {
            validators[ix.usize()] = true;
        }
        let mut detector = StreamDetector {
            sim,
            probe_sets,
            mode,
            stub_defense: plan.stub_defense,
            validators,
            defense: Defense::none(),
            baselines: HashMap::new(),
            scores: HashMap::new(),
            active: BTreeMap::new(),
            hijacks: Vec::new(),
            ws: Workspace::new(),
            dws: DeltaWorkspace::new(),
            rws: RaceWorkspace::new(),
        };
        detector.rebuild_defense();
        detector
    }

    fn rebuild_defense(&mut self) {
        let members = self
            .validators
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v)
            .map(|(i, _)| AsIndex::new(i as u32));
        let defense = Defense::validators(self.sim.topology(), members);
        self.defense = if self.stub_defense {
            defense.with_stub_defense()
        } else {
            defense
        };
    }

    /// The defense currently in force.
    pub fn defense(&self) -> &Defense {
        &self.defense
    }

    /// Number of hijacks currently active.
    pub fn active_hijacks(&self) -> usize {
        self.active.len()
    }

    /// Processes one event: updates deployment/attack state, re-scores
    /// every active hijack, and appends this event's samples to `store`.
    pub fn apply(&mut self, event: &StreamEvent, store: &mut StreamStore) {
        match event.kind {
            EventKind::DefenseFlip { who } => {
                self.validators[who.usize()] = !self.validators[who.usize()];
                self.rebuild_defense();
                // Every attack replay filters through the new validator
                // set, so all memoized scores are stale. The honest
                // baselines are not: origin validation never rejects the
                // authorized origin (see the struct field docs).
                self.scores.clear();
            }
            EventKind::TargetReannounce { target } => {
                // Withdraw + re-announce converges back to the same fixed
                // point the cached baseline already holds (propagation is
                // deterministic), so the baseline stands; the update still
                // forces a fresh delta-cone replay of the target's active
                // hijack.
                self.scores.remove(&target);
            }
            EventKind::HijackInject { attack } => {
                self.hijacks.push(HijackRecord {
                    attack,
                    injected_seq: event.seq,
                    detected_seq: None,
                });
                // A newer injection replaces any active hijack on the
                // same target (the old record keeps whatever detection
                // state it reached).
                self.active.insert(attack.target, self.hijacks.len() - 1);
                self.scores.remove(&attack.target);
            }
        }

        // Re-score every active hijack under the (possibly new) defense.
        let mut pollution_total = 0u64;
        let mut triggered_total = vec![0u64; self.probe_sets.len()];
        let targets: Vec<AsIndex> = self.active.keys().copied().collect();
        for target in targets {
            let record_ix = self.active[&target];
            let attack = self.hijacks[record_ix].attack;
            // The batch oracle recomputes unconditionally; the incremental
            // path replays only when this event could have changed the
            // answer (propagation is deterministic, so a still-valid memo
            // is the same value a replay would produce — the equivalence
            // proptest pins exactly this).
            let score = match self.scores.get(&target) {
                Some(score) if self.mode == DetectorMode::Incremental => score.clone(),
                _ => {
                    let outcome = self.evaluate(attack);
                    let triggered = self
                        .probe_sets
                        .iter()
                        .map(|set| {
                            // Same vantage-point rule as the batch
                            // detection experiment: a probe at the
                            // attacker or target is not a detection.
                            set.probes()
                                .iter()
                                .filter(|&&p| {
                                    p != attack.attacker
                                        && p != attack.target
                                        && outcome.is_polluted(p)
                                })
                                .count() as u64
                        })
                        .collect();
                    let score = Score {
                        pollution: outcome.pollution_count() as u64,
                        triggered,
                    };
                    if self.mode == DetectorMode::Incremental {
                        self.scores.insert(target, score.clone());
                    }
                    score
                }
            };
            pollution_total += score.pollution;
            let mut seen = false;
            for (si, &t) in score.triggered.iter().enumerate() {
                triggered_total[si] += t;
                seen |= t > 0;
            }
            let record = &mut self.hijacks[record_ix];
            if seen && record.detected_seq.is_none() {
                record.detected_seq = Some(event.seq);
                store.push(
                    SERIES_LATENCY,
                    event.seq,
                    (event.seq - record.injected_seq) as f64,
                );
            }
        }
        store.push(SERIES_POLLUTION, event.seq, pollution_total as f64);
        for (si, &t) in triggered_total.iter().enumerate() {
            store.push(&triggered_series(si), event.seq, t as f64);
        }
    }

    fn evaluate(&mut self, attack: Attack) -> AttackOutcome {
        match self.mode {
            // The oracle: one full from-scratch generation-engine run.
            DetectorMode::Batch => self.sim.run(attack, &self.defense),
            DetectorMode::Incremental => {
                if self.sim.uses_shared_baseline(&self.defense) {
                    if !self.baselines.contains_key(&attack.target) {
                        let baseline = Baseline::build(
                            self.sim.net(),
                            &[Announcement::honest(attack.target)],
                            &self.defense.context_for(attack.target),
                            self.sim.policy(),
                            &mut self.ws,
                        );
                        self.baselines.insert(attack.target, baseline);
                    }
                    let baseline = &self.baselines[&attack.target];
                    self.sim.run_with_baseline(
                        attack,
                        baseline,
                        &self.defense,
                        &mut self.dws,
                        &SweepMonitor::none(),
                    )
                } else {
                    // No localizing defense: the cone is the whole graph
                    // and a baseline buys nothing. Engine-per-attack
                    // dispatch (closed-form solvers with generation
                    // fallback) is the fast correct path.
                    self.sim
                        .run_unshared_monitored(
                            attack,
                            &self.defense,
                            &mut self.ws,
                            &mut self.rws,
                            &SweepMonitor::none(),
                            &mut NullObserver,
                        )
                        .0
                }
            }
        }
    }

    /// Consumes the detector, yielding the per-injection records.
    pub fn finish(self) -> Vec<HijackRecord> {
        self.hijacks
    }
}

/// Runs a whole plan through a fresh detector and store.
pub fn run_stream(
    sim: &Simulator<'_>,
    probe_sets: &[ProbeSet],
    plan: &StreamPlan,
    mode: DetectorMode,
) -> StreamOutcome {
    let mut store = StreamStore::sized_for(plan.events.len());
    let mut detector = StreamDetector::new(sim, probe_sets, plan, mode);
    for event in &plan.events {
        detector.apply(event, &mut store);
    }
    StreamOutcome {
        store,
        hijacks: detector.finish(),
        events: plan.events.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StreamConfig;
    use bgpsim_routing::PolicyConfig;
    use bgpsim_topology::gen::{generate, InternetParams};

    fn plan_on_tiny(seed: u64, events: usize) -> (bgpsim_topology::Topology, StreamPlan) {
        let net = generate(&InternetParams::tiny(), 3);
        let config = StreamConfig {
            events,
            seed,
            num_targets: 3,
            validator_fraction: 0.3,
            stub_defense: true,
            flip_weight: 1,
            reannounce_weight: 2,
            inject_weight: 2,
        };
        let plan = StreamPlan::generate(&net.topology, &config);
        (net.topology, plan)
    }

    #[test]
    fn incremental_matches_batch_on_a_fixed_stream() {
        let (topo, plan) = plan_on_tiny(42, 120);
        let sim = Simulator::new(&topo, PolicyConfig::paper());
        let sets = vec![ProbeSet::tier1(&topo), ProbeSet::degree_at_least(&topo, 8)];
        let inc = run_stream(&sim, &sets, &plan, DetectorMode::Incremental);
        let batch = run_stream(&sim, &sets, &plan, DetectorMode::Batch);
        assert_eq!(inc, batch);
        assert_eq!(inc.events, 120);
        assert_eq!(inc.hijacks.len(), plan.injected_hijacks());
        // The dense series carry one sample per event.
        assert_eq!(
            inc.store.series(SERIES_POLLUTION).unwrap().len(),
            plan.events.len()
        );
        assert_eq!(
            inc.store.series(&triggered_series(0)).unwrap().len(),
            plan.events.len()
        );
    }

    #[test]
    fn detections_are_consistent_with_latency_series() {
        let (topo, plan) = plan_on_tiny(7, 200);
        let sim = Simulator::new(&topo, PolicyConfig::paper());
        let sets = vec![ProbeSet::degree_at_least(&topo, 4)];
        let out = run_stream(&sim, &sets, &plan, DetectorMode::Incremental);
        let summary = out.summary();
        assert_eq!(summary.injected, out.hijacks.len());
        let latency_samples = out
            .store
            .series(SERIES_LATENCY)
            .map_or(0, |s| s.len() as u64);
        assert_eq!(summary.detected as u64, latency_samples);
        for h in &out.hijacks {
            if let Some(d) = h.detected_seq {
                assert!(d >= h.injected_seq);
                assert_eq!(h.latency(), Some(d - h.injected_seq));
            }
        }
        if summary.detected > 0 {
            assert!(summary.mean_latency.is_some());
            assert!(summary.max_latency.is_some());
        }
    }

    #[test]
    fn churn_only_stream_detects_nothing() {
        let net = generate(&InternetParams::tiny(), 9);
        let config = StreamConfig {
            events: 60,
            seed: 5,
            num_targets: 2,
            validator_fraction: 0.2,
            stub_defense: false,
            flip_weight: 1,
            reannounce_weight: 1,
            inject_weight: 0,
        };
        let plan = StreamPlan::generate(&net.topology, &config);
        let sim = Simulator::new(&net.topology, PolicyConfig::paper());
        let sets = vec![ProbeSet::tier1(&net.topology)];
        let out = run_stream(&sim, &sets, &plan, DetectorMode::Incremental);
        assert!(out.hijacks.is_empty());
        let summary = out.summary();
        assert_eq!(summary.detected, 0);
        assert_eq!(summary.mean_latency, None);
        // Pollution is identically zero without attacks.
        let poll = out.store.series(SERIES_POLLUTION).unwrap();
        assert!(poll.range(0, u64::MAX).iter().all(|&(_, v)| v == 0.0));
        assert!(out.store.series(SERIES_LATENCY).is_none());
    }
}
