//! The update-stream event model and its seeded generator.
//!
//! A stream is a reproducible interleave of benign churn (defense
//! deployment flips, target re-announcements) and injected hijacks with
//! ground-truth labels. The generator is a pure function of the topology
//! and a [`StreamConfig`] — same seed, same stream — so every run (CLI,
//! server job, proptest oracle) replays the identical event sequence.

use bgpsim_hijack::Attack;
use bgpsim_topology::{AsIndex, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// One update-stream event. `seq` is the 0-based position in the stream;
/// detection latency is measured in events between an injection's `seq`
/// and the first event at which any probe sees the hijack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// Position in the stream (dense, starting at 0).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The three stream event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Benign churn: one AS toggles route-origin validation on or off.
    /// Changes the defense every tracked target converges under, so every
    /// cached baseline goes stale.
    DefenseFlip {
        /// The AS whose validator membership flips.
        who: AsIndex,
    },
    /// Benign churn: a tracked target withdraws and re-announces its
    /// prefix. Routing re-converges to the same fixed point, so the
    /// detector's cached baseline stays valid — but the update forces a
    /// fresh delta-cone replay of any active hijack on that target.
    TargetReannounce {
        /// The re-announcing target.
        target: AsIndex,
    },
    /// Ground truth: `attack.attacker` starts an origin hijack against the
    /// tracked target `attack.target`. The hijack stays active for the
    /// rest of the stream (or until replaced by a later injection against
    /// the same target).
    HijackInject {
        /// The labeled attack.
        attack: Attack,
    },
}

/// Generator parameters for a seeded stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of events to emit.
    pub events: usize,
    /// RNG seed; the whole plan is a pure function of (topology, config).
    pub seed: u64,
    /// Number of tracked targets, drawn from the transit ASes.
    pub num_targets: usize,
    /// Fraction of all ASes validating origins before the first event.
    pub validator_fraction: f64,
    /// Whether provider-side defensive stub filtering is on (fixed for the
    /// stream's lifetime; only validator membership churns).
    pub stub_defense: bool,
    /// Relative weight of [`EventKind::DefenseFlip`] events.
    pub flip_weight: u32,
    /// Relative weight of [`EventKind::TargetReannounce`] events.
    pub reannounce_weight: u32,
    /// Relative weight of [`EventKind::HijackInject`] events.
    pub inject_weight: u32,
}

impl Default for StreamConfig {
    /// The CLI/server default: a mostly-benign feed (one injection per
    /// ~14 events) over four targets under partial ROV plus stub
    /// filtering — the localizing regime where baseline replay shines.
    fn default() -> StreamConfig {
        StreamConfig {
            events: 2_000,
            seed: 2014,
            num_targets: 4,
            validator_fraction: 0.3,
            stub_defense: true,
            flip_weight: 2,
            reannounce_weight: 10,
            inject_weight: 2,
        }
    }
}

/// A fully materialized stream: initial conditions plus the event tape.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPlan {
    /// ASes validating origins before event 0, sorted.
    pub initial_validators: Vec<AsIndex>,
    /// The tracked targets, sorted.
    pub targets: Vec<AsIndex>,
    /// Whether stub filtering is on throughout.
    pub stub_defense: bool,
    /// The events, `seq` dense from 0.
    pub events: Vec<StreamEvent>,
}

impl StreamPlan {
    /// Generates the plan for `config` on `topo`. Deterministic: equal
    /// inputs produce equal plans.
    ///
    /// # Panics
    ///
    /// Panics when the topology has fewer than two transit ASes or
    /// `config.num_targets` is 0 (there would be nothing to track), or
    /// when every event weight is 0.
    pub fn generate(topo: &Topology, config: &StreamConfig) -> StreamPlan {
        let transit = topo.transit_ases();
        assert!(
            transit.len() >= 2,
            "need at least two transit ASes to build a stream"
        );
        assert!(config.num_targets > 0, "need at least one tracked target");
        let total_weight = config.flip_weight + config.reannounce_weight + config.inject_weight;
        assert!(total_weight > 0, "all event weights are zero");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut pool = transit.clone();
        pool.shuffle(&mut rng);
        let mut targets: Vec<AsIndex> = pool
            .iter()
            .copied()
            .take(config.num_targets.min(pool.len()))
            .collect();
        targets.sort_unstable();

        let n = topo.num_ases();
        let want = ((n as f64 * config.validator_fraction).round() as usize).min(n);
        let mut everyone: Vec<AsIndex> = topo.indices().collect();
        everyone.shuffle(&mut rng);
        let mut initial_validators: Vec<AsIndex> = everyone.iter().copied().take(want).collect();
        initial_validators.sort_unstable();

        let mut events = Vec::with_capacity(config.events);
        for seq in 0..config.events as u64 {
            let roll = rng.random_range(0..total_weight);
            let kind = if roll < config.flip_weight {
                EventKind::DefenseFlip {
                    who: everyone[rng.random_range(0..everyone.len())],
                }
            } else if roll < config.flip_weight + config.reannounce_weight {
                EventKind::TargetReannounce {
                    target: targets[rng.random_range(0..targets.len())],
                }
            } else {
                let target = targets[rng.random_range(0..targets.len())];
                // Rejection-sample a transit attacker distinct from the
                // target (at least one exists: transit.len() >= 2).
                let attacker = loop {
                    let a = transit[rng.random_range(0..transit.len())];
                    if a != target {
                        break a;
                    }
                };
                EventKind::HijackInject {
                    attack: Attack::origin(attacker, target),
                }
            };
            events.push(StreamEvent { seq, kind });
        }
        StreamPlan {
            initial_validators,
            targets,
            stub_defense: config.stub_defense,
            events,
        }
    }

    /// Number of injected hijacks in the plan (the ground-truth count).
    pub fn injected_hijacks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HijackInject { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::gen::{generate, InternetParams};

    fn config(events: usize, seed: u64) -> StreamConfig {
        StreamConfig {
            events,
            seed,
            num_targets: 3,
            validator_fraction: 0.25,
            stub_defense: true,
            flip_weight: 1,
            reannounce_weight: 2,
            inject_weight: 1,
        }
    }

    #[test]
    fn plans_are_seeded_and_reproducible() {
        let net = generate(&InternetParams::tiny(), 3);
        let a = StreamPlan::generate(&net.topology, &config(200, 7));
        let b = StreamPlan::generate(&net.topology, &config(200, 7));
        assert_eq!(a, b);
        assert_ne!(a, StreamPlan::generate(&net.topology, &config(200, 8)));
        assert_eq!(a.events.len(), 200);
        for (i, e) in a.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn plan_respects_config_shape() {
        let net = generate(&InternetParams::tiny(), 5);
        let topo = &net.topology;
        let plan = StreamPlan::generate(topo, &config(300, 1));
        assert_eq!(plan.targets.len(), 3);
        assert!(plan.targets.windows(2).all(|w| w[0] < w[1]));
        for &t in &plan.targets {
            assert!(topo.is_transit(t));
        }
        let expect = (topo.num_ases() as f64 * 0.25).round() as usize;
        assert_eq!(plan.initial_validators.len(), expect);
        assert!(plan.injected_hijacks() > 0);
        for e in &plan.events {
            match e.kind {
                EventKind::TargetReannounce { target } => {
                    assert!(plan.targets.contains(&target));
                }
                EventKind::HijackInject { attack } => {
                    assert!(plan.targets.contains(&attack.target));
                    assert!(topo.is_transit(attack.attacker));
                    assert_ne!(attack.attacker, attack.target);
                }
                EventKind::DefenseFlip { .. } => {}
            }
        }
    }

    #[test]
    fn zero_inject_weight_gives_pure_churn() {
        let net = generate(&InternetParams::tiny(), 3);
        let mut c = config(100, 2);
        c.inject_weight = 0;
        let plan = StreamPlan::generate(&net.topology, &c);
        assert_eq!(plan.injected_hijacks(), 0);
    }
}
