//! ARTEMIS-style live update stream over the hijack simulator.
//!
//! Real detectors do not score one-shot converged snapshots — they watch
//! a live BGP update feed and must re-detect as routes churn (ARTEMIS
//! "detects hijacks within seconds"). This crate turns the repo's batch
//! experiment machinery into that pipeline:
//!
//! * [`StreamPlan`] / [`StreamConfig`] — a seeded, reproducible interleave
//!   of benign churn (defense flips, target re-announcements) and
//!   ground-truth-labeled hijack injections.
//! * [`StreamDetector`] — the incremental detector: one cached
//!   [`bgpsim_routing::Baseline`] per tracked target, delta-cone replay
//!   per event, falling back to engine-per-attack dispatch when no
//!   defense localizes. [`DetectorMode::Batch`] is the from-scratch
//!   oracle it is pinned bit-identical to.
//! * [`StreamStore`] — a chunked ring per metric (pollution, per-set
//!   triggered counts, detection latency) with range queries and
//!   windowed min/max/mean aggregation.
//!
//! # Quick start
//!
//! ```
//! use bgpsim_detection::ProbeSet;
//! use bgpsim_hijack::Simulator;
//! use bgpsim_routing::PolicyConfig;
//! use bgpsim_stream::{run_stream, DetectorMode, StreamConfig, StreamPlan};
//! use bgpsim_topology::gen::{generate, InternetParams};
//!
//! let net = generate(&InternetParams::tiny(), 1);
//! let sim = Simulator::new(&net.topology, PolicyConfig::paper());
//! let plan = StreamPlan::generate(
//!     &net.topology,
//!     &StreamConfig {
//!         events: 100,
//!         ..StreamConfig::default()
//!     },
//! );
//! let sets = vec![ProbeSet::tier1(&net.topology)];
//! let out = run_stream(&sim, &sets, &plan, DetectorMode::Incremental);
//! let s = out.summary();
//! println!("{} injected, {} detected", s.injected, s.detected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod event;
mod store;

pub use detector::{
    run_stream, triggered_series, DetectorMode, HijackRecord, StreamDetector, StreamOutcome,
    StreamSummary, SERIES_LATENCY, SERIES_POLLUTION,
};
pub use event::{EventKind, StreamConfig, StreamEvent, StreamPlan};
pub use store::{ChunkedSeries, StreamStore, WindowStats};
