//! Evaluating deployment strategies against attack sweeps (§V).

use bgpsim_hijack::{Simulator, SweepMonitor, SweepResult};
use bgpsim_topology::metrics::DepthMap;
use bgpsim_topology::{AsIndex, Topology};

use crate::strategy::DeploymentStrategy;

/// Outcome of one strategy against one target.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The strategy evaluated.
    pub strategy: DeploymentStrategy,
    /// How many ASes the strategy deployed on this topology.
    pub deployed: usize,
    /// The attacker sweep under this deployment.
    pub sweep: SweepResult,
}

impl StrategyOutcome {
    /// Mean pollution over successful attacks, the paper's headline number
    /// per strategy.
    pub fn mean_successful_pollution(&self) -> f64 {
        self.sweep.curve().mean_successful_pollution()
    }

    /// Attackers still achieving at least `x` polluted ASes.
    pub fn attackers_at_least(&self, x: u32) -> usize {
        self.sweep.curve().attackers_at_least(x)
    }

    /// Worst remaining attack.
    pub fn max_pollution(&self) -> u32 {
        self.sweep.curve().max_pollution()
    }
}

/// Runs the full §V experiment: for each strategy, sweep every attacker
/// against `target` and collect the residual-pollution distribution.
///
/// The target is excluded from every deployment set — a defended target
/// would trivially never be polluted anyway, and keeping it out isolates
/// the *network-side* effect the paper studies. The target is likewise
/// excluded from the attacker pool (it cannot attack itself), so curve
/// statistics like `failed_attacks` count real attacks only.
pub fn evaluate_strategies(
    sim: &Simulator<'_>,
    target: AsIndex,
    attackers: &[AsIndex],
    strategies: &[DeploymentStrategy],
) -> Vec<StrategyOutcome> {
    evaluate_strategies_monitored(sim, target, attackers, strategies, &SweepMonitor::none())
}

/// [`evaluate_strategies`] with sweep instrumentation (telemetry counters,
/// per-attack progress, cancellation) forwarded to every strategy's sweep.
pub fn evaluate_strategies_monitored(
    sim: &Simulator<'_>,
    target: AsIndex,
    attackers: &[AsIndex],
    strategies: &[DeploymentStrategy],
    monitor: &SweepMonitor<'_>,
) -> Vec<StrategyOutcome> {
    strategies
        .iter()
        .map(|strategy| {
            let mut members = strategy.select(sim.topology());
            members.retain(|&ix| ix != target);
            let deployed = members.len();
            let defense = bgpsim_hijack::Defense::validators(sim.topology(), members);
            let sweep = sim.sweep_result_monitored(target, attackers, &defense, monitor);
            StrategyOutcome {
                strategy: strategy.clone(),
                deployed,
                sweep,
            }
        })
        .collect()
}

/// One row of the paper's "top 5 still-potent attacks" tables: ASN,
/// pollution achieved, degree and depth of the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PotentAttackerRow {
    /// The attacker.
    pub attacker: AsIndex,
    /// ASes it still pollutes under the deployment.
    pub pollution: u32,
    /// Its total degree.
    pub degree: usize,
    /// Its depth (hops to the nearest tier-1), if connected.
    pub depth: Option<u32>,
}

/// Extracts the top-`k` still-potent attackers from a sweep, annotated
/// with the degree and depth columns the paper prints.
pub fn top_potent_attackers(
    topo: &Topology,
    depths: &DepthMap,
    sweep: &SweepResult,
    k: usize,
) -> Vec<PotentAttackerRow> {
    sweep
        .top_attackers(k)
        .into_iter()
        .map(|(attacker, pollution)| PotentAttackerRow {
            attacker,
            pollution,
            degree: topo.degree(attacker),
            depth: depths.depth(attacker),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_hijack::Defense;
    use bgpsim_routing::PolicyConfig;
    use bgpsim_topology::gen::{generate, InternetParams};

    #[test]
    fn stronger_deployments_reduce_mean_pollution() {
        let net = generate(&InternetParams::tiny(), 11);
        let topo = &net.topology;
        let sim = Simulator::new(topo, PolicyConfig::paper());
        let target = topo.stub_ases()[0];
        let attackers: Vec<AsIndex> = topo.transit_ases().into_iter().take(40).collect();
        let strategies = [
            DeploymentStrategy::None,
            DeploymentStrategy::Tier1,
            DeploymentStrategy::TopKByDegree(25),
            DeploymentStrategy::Everyone,
        ];
        let outcomes = evaluate_strategies(&sim, target, &attackers, &strategies);
        assert_eq!(outcomes.len(), 4);
        let baseline = outcomes[0].mean_successful_pollution();
        let everyone = outcomes[3].mean_successful_pollution();
        assert!(baseline > 0.0);
        assert_eq!(everyone, 0.0, "universal deployment blocks everything");
        assert!(
            outcomes[2].mean_successful_pollution() <= baseline,
            "top-25 must not exceed baseline"
        );
        // Deployment sizes recorded.
        assert_eq!(outcomes[0].deployed, 0);
        assert!(outcomes[1].deployed >= 3);
    }

    #[test]
    fn target_is_excluded_from_deployments() {
        let net = generate(&InternetParams::tiny(), 11);
        let topo = &net.topology;
        let sim = Simulator::new(topo, PolicyConfig::paper());
        // Pick a tier-1 as the target: Tier1 strategy would include it.
        let target = topo.tier1s()[0];
        let attackers = vec![topo.stub_ases()[0]];
        let outcomes = evaluate_strategies(&sim, target, &attackers, &[DeploymentStrategy::Tier1]);
        assert_eq!(outcomes[0].deployed, topo.tier1s().len() - 1);
    }

    #[test]
    fn potent_rows_are_annotated_and_sorted() {
        let net = generate(&InternetParams::tiny(), 13);
        let topo = &net.topology;
        let sim = Simulator::new(topo, PolicyConfig::paper());
        let target = topo.stub_ases()[1];
        let attackers: Vec<AsIndex> = topo.transit_ases().into_iter().take(30).collect();
        let counts = sim.sweep_attackers(target, &attackers, &Defense::none());
        let sweep = SweepResult::new(attackers, counts);
        let depths = DepthMap::to_tier1(topo);
        let rows = top_potent_attackers(topo, &depths, &sweep, 5);
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            assert!(w[0].pollution >= w[1].pollution);
        }
        for r in &rows {
            assert_eq!(r.degree, topo.degree(r.attacker));
        }
    }
}
