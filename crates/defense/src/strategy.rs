//! Incremental deployment strategies for origin-validation filters (§V).
//!
//! The paper compares a progression of deployments: random transit ASes
//! (100, 500), the 17 tier-1 ASes, and degree cohorts (62 ASes ≥ 500, 124
//! ≥ 300, 166 ≥ 200, 299 ≥ 100). [`DeploymentStrategy`] reproduces each as
//! a function of the topology, so the same experiment runs on any graph.

use core::fmt;

use bgpsim_hijack::Defense;
use bgpsim_topology::{select, AsIndex, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A rule choosing which ASes deploy route-origin validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeploymentStrategy {
    /// Nobody filters (the baseline).
    None,
    /// `count` transit ASes chosen uniformly at random (seeded) — "various
    /// random ASes are motivated to deploy BGP security on their own".
    RandomTransit {
        /// Number of transit ASes to draw.
        count: usize,
        /// RNG seed, so deployments are reproducible.
        seed: u64,
    },
    /// The tier-1 clique ("the tier-1 ASes can act on their own, to
    /// everyone's benefit").
    Tier1,
    /// Every AS with total degree at least the threshold (the paper's 62 /
    /// 124 / 166 / 299 cohorts at thresholds 500 / 300 / 200 / 100).
    DegreeAtLeast(usize),
    /// The `k` highest-degree ASes.
    TopKByDegree(usize),
    /// An explicit deployment (e.g. §VII's single filter at a regional
    /// gateway).
    Custom(Vec<AsIndex>),
    /// Universal deployment (the unreachable ideal the paper measures
    /// against).
    Everyone,
}

impl DeploymentStrategy {
    /// Materializes the deployment set on a topology, in index order
    /// (random draws are seeded and therefore reproducible).
    pub fn select(&self, topo: &Topology) -> Vec<AsIndex> {
        let mut picked = match self {
            DeploymentStrategy::None => Vec::new(),
            DeploymentStrategy::RandomTransit { count, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut transit = topo.transit_ases();
                transit.shuffle(&mut rng);
                transit.truncate(*count);
                transit
            }
            DeploymentStrategy::Tier1 => topo.tier1s(),
            DeploymentStrategy::DegreeAtLeast(k) => select::by_degree_at_least(topo, *k),
            DeploymentStrategy::TopKByDegree(k) => select::top_k_by_degree(topo, *k),
            DeploymentStrategy::Custom(list) => list.clone(),
            DeploymentStrategy::Everyone => topo.indices().collect(),
        };
        picked.sort_unstable();
        picked.dedup();
        picked
    }

    /// Builds the [`Defense`] for this strategy on `topo`.
    pub fn defense(&self, topo: &Topology) -> Defense {
        match self {
            DeploymentStrategy::None => Defense::none(),
            other => Defense::validators(topo, other.select(topo)),
        }
    }

    /// The paper's §V progression, in increasing deployment strength:
    /// baseline, random 100 and 500, tier-1, then the four degree cohorts.
    pub fn paper_progression(seed: u64) -> Vec<DeploymentStrategy> {
        vec![
            DeploymentStrategy::None,
            DeploymentStrategy::RandomTransit { count: 100, seed },
            DeploymentStrategy::RandomTransit { count: 500, seed },
            DeploymentStrategy::Tier1,
            DeploymentStrategy::DegreeAtLeast(500),
            DeploymentStrategy::DegreeAtLeast(300),
            DeploymentStrategy::DegreeAtLeast(200),
            DeploymentStrategy::DegreeAtLeast(100),
        ]
    }

    /// A progression scaled for a reduced-size topology: random counts and
    /// degree thresholds shrink with `scale` (1.0 = paper scale).
    pub fn scaled_progression(seed: u64, scale: f64) -> Vec<DeploymentStrategy> {
        let count = |paper: usize| ((paper as f64 * scale).round() as usize).max(2);
        let deg = |paper: usize| ((paper as f64 * scale.sqrt()).round() as usize).max(4);
        vec![
            DeploymentStrategy::None,
            DeploymentStrategy::RandomTransit {
                count: count(100),
                seed,
            },
            DeploymentStrategy::RandomTransit {
                count: count(500),
                seed,
            },
            DeploymentStrategy::Tier1,
            DeploymentStrategy::DegreeAtLeast(deg(500)),
            DeploymentStrategy::DegreeAtLeast(deg(300)),
            DeploymentStrategy::DegreeAtLeast(deg(200)),
            DeploymentStrategy::DegreeAtLeast(deg(100)),
        ]
    }
}

impl fmt::Display for DeploymentStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentStrategy::None => write!(f, "baseline (no filters)"),
            DeploymentStrategy::RandomTransit { count, .. } => {
                write!(f, "random {count} transit ASes")
            }
            DeploymentStrategy::Tier1 => write!(f, "tier-1 ASes"),
            DeploymentStrategy::DegreeAtLeast(k) => write!(f, "degree >= {k}"),
            DeploymentStrategy::TopKByDegree(k) => write!(f, "top {k} by degree"),
            DeploymentStrategy::Custom(list) => write!(f, "custom ({} ASes)", list.len()),
            DeploymentStrategy::Everyone => write!(f, "everyone"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::gen::{generate, InternetParams};

    fn net() -> bgpsim_topology::gen::GeneratedInternet {
        generate(&InternetParams::tiny(), 5)
    }

    #[test]
    fn random_is_seeded_and_transit_only() {
        let net = net();
        let s = DeploymentStrategy::RandomTransit { count: 10, seed: 3 };
        let a = s.select(&net.topology);
        let b = s.select(&net.topology);
        assert_eq!(a, b, "same seed, same deployment");
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&ix| net.topology.is_transit(ix)));
        let c = DeploymentStrategy::RandomTransit { count: 10, seed: 4 }.select(&net.topology);
        assert_ne!(a, c, "different seed, different deployment");
    }

    #[test]
    fn random_caps_at_transit_count() {
        let net = net();
        let all_transit = net.topology.transit_ases().len();
        let s = DeploymentStrategy::RandomTransit {
            count: 10_000,
            seed: 1,
        };
        assert_eq!(s.select(&net.topology).len(), all_transit);
    }

    #[test]
    fn tier1_and_cohorts() {
        let net = net();
        assert_eq!(
            DeploymentStrategy::Tier1.select(&net.topology).len(),
            net.tier1_count
        );
        let big = DeploymentStrategy::DegreeAtLeast(10).select(&net.topology);
        assert!(!big.is_empty());
        assert!(big.iter().all(|&ix| net.topology.degree(ix) >= 10));
        let top = DeploymentStrategy::TopKByDegree(5).select(&net.topology);
        assert_eq!(top.len(), 5);
    }

    #[test]
    fn everyone_and_none() {
        let net = net();
        assert_eq!(
            DeploymentStrategy::Everyone.select(&net.topology).len(),
            net.topology.num_ases()
        );
        assert!(DeploymentStrategy::None.select(&net.topology).is_empty());
        assert_eq!(
            DeploymentStrategy::None
                .defense(&net.topology)
                .num_validators(),
            0
        );
    }

    #[test]
    fn progressions_grow() {
        let net = net();
        let strategies = DeploymentStrategy::scaled_progression(1, 0.05);
        assert_eq!(strategies.len(), 8);
        // The degree cohorts are nested: lower threshold ⇒ superset.
        let c500 = strategies[4].select(&net.topology);
        let c100 = strategies[7].select(&net.topology);
        assert!(c100.len() >= c500.len());
        for ix in &c500 {
            assert!(c100.contains(ix));
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(
            DeploymentStrategy::DegreeAtLeast(500).to_string(),
            "degree >= 500"
        );
        assert_eq!(DeploymentStrategy::Tier1.to_string(), "tier-1 ASes");
    }
}
