//! Incremental deployment of BGP origin-hijack *prevention* (§V of the
//! ICDCS 2014 paper).
//!
//! "Given a mechanism for checking BGP origin security and rejecting bogus
//! routes, how many ASes must implement this mechanism to achieve a high
//! probability of stopping or at least minimizing an attack? Can the ASes
//! be chosen at random or must they be methodically chosen?"
//!
//! * [`DeploymentStrategy`] — the paper's §V progression (random transit,
//!   tier-1, degree cohorts) plus custom deployments.
//! * [`evaluate_strategies`] — residual-pollution sweeps per strategy,
//!   producing the figs. 5–6 curves.
//! * [`top_potent_attackers`] — the "top 5 still-potent attacks" tables.
//!
//! # Quick start
//!
//! ```
//! use bgpsim_defense::{evaluate_strategies, DeploymentStrategy};
//! use bgpsim_hijack::Simulator;
//! use bgpsim_routing::PolicyConfig;
//! use bgpsim_topology::gen::{generate, InternetParams};
//!
//! let net = generate(&InternetParams::tiny(), 1);
//! let sim = Simulator::new(&net.topology, PolicyConfig::paper());
//! let target = net.topology.stub_ases()[0];
//! let attackers = net.topology.transit_ases();
//! let outcomes = evaluate_strategies(
//!     &sim,
//!     target,
//!     &attackers,
//!     &[DeploymentStrategy::None, DeploymentStrategy::Tier1],
//! );
//! assert!(outcomes[1].mean_successful_pollution() <= outcomes[0].mean_successful_pollution() * 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluation;
mod strategy;

pub use evaluation::{
    evaluate_strategies, evaluate_strategies_monitored, top_potent_attackers, PotentAttackerRow,
    StrategyOutcome,
};
pub use strategy::DeploymentStrategy;
