//! Re-homing: moving an AS to lower-depth providers (§VII's "reduce
//! vulnerability" step).
//!
//! "The depth analysis may reveal some ASes to be more vulnerable than
//! others. If possible, increase resistance to attack by re-homing and
//! multi-homing these ASes to reduce depth." The paper's validation
//! experiment "re-homed AS55857 up two levels".

use bgpsim_topology::metrics::DepthMap;
use bgpsim_topology::{AsId, AsIndex, LinkKind, Topology, TopologyError};

use crate::surgery::rebuild_with;

/// Error returned when a re-homing cannot be performed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RehomeError {
    /// The AS has no providers to climb from.
    NoProviders,
    /// Climbing found no provider distinct from the current attachment.
    NoHigherProvider,
    /// Rebuilding the topology failed.
    Topology(TopologyError),
}

impl core::fmt::Display for RehomeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RehomeError::NoProviders => write!(f, "target has no providers"),
            RehomeError::NoHigherProvider => {
                write!(f, "no distinct provider found the requested levels up")
            }
            RehomeError::Topology(e) => write!(f, "topology rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for RehomeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RehomeError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for RehomeError {
    fn from(e: TopologyError) -> Self {
        RehomeError::Topology(e)
    }
}

/// The new provider set chosen for a re-homing, plus the rebuilt topology.
#[derive(Debug)]
pub struct Rehoming {
    /// The rebuilt topology (same ASNs and indices).
    pub topology: Topology,
    /// Providers the target was detached from.
    pub old_providers: Vec<AsIndex>,
    /// Providers the target is now attached to.
    pub new_providers: Vec<AsIndex>,
}

/// Re-homes `target` `levels` steps up its provider chains: each current
/// provider is replaced by the ancestor reached by repeatedly climbing to
/// the lowest-depth provider. Duplicate ancestors collapse (re-homing can
/// reduce multi-homing if chains converge — the trade-off is reported in
/// [`Rehoming::new_providers`]).
///
/// # Errors
///
/// See [`RehomeError`].
pub fn rehome_up(topo: &Topology, target: AsIndex, levels: u32) -> Result<Rehoming, RehomeError> {
    let depths = DepthMap::to_tier1(topo);
    let old_providers: Vec<AsIndex> = topo.providers(target).collect();
    if old_providers.is_empty() {
        return Err(RehomeError::NoProviders);
    }
    let climb = |mut from: AsIndex| -> AsIndex {
        for _ in 0..levels {
            let up = topo
                .providers(from)
                .min_by_key(|&p| (depths.depth(p).unwrap_or(u32::MAX), p.raw()));
            match up {
                Some(p) => from = p,
                None => break, // already at the top
            }
        }
        from
    };
    let mut new_providers: Vec<AsIndex> = old_providers.iter().map(|&p| climb(p)).collect();
    new_providers.sort_unstable();
    new_providers.dedup();
    // Keep only genuinely new attachments; never attach an AS to itself.
    new_providers.retain(|&p| p != target);
    if new_providers == old_providers {
        return Err(RehomeError::NoHigherProvider);
    }
    let target_id = topo.id_of(target);
    let remove: Vec<(AsId, AsId)> = old_providers
        .iter()
        .map(|&p| (topo.id_of(p), target_id))
        .collect();
    let add: Vec<(AsId, AsId, LinkKind)> = new_providers
        .iter()
        .filter(|&&p| !old_providers.contains(&p))
        .map(|&p| (topo.id_of(p), target_id, LinkKind::ProviderToCustomer))
        .collect();
    // Links to providers that remain providers are removed and not re-added
    // only if they are not in the new set; recompute the removal list
    // accordingly.
    let remove: Vec<(AsId, AsId)> = remove
        .into_iter()
        .filter(|&(p, _)| {
            let p_ix = topo.index_of(p).expect("provider exists");
            !new_providers.contains(&p_ix)
        })
        .collect();
    let topology = rebuild_with(topo, &remove, &add)?;
    Ok(Rehoming {
        topology,
        old_providers,
        new_providers,
    })
}

/// Multi-homes `target` upward: *adds* the providers `levels` steps up its
/// chains while keeping the existing ones. Depth drops exactly as with
/// [`rehome_up`], but the target's old neighborhood keeps its
/// customer-class routes to it — §VII recommends "re-homing *and
/// multi-homing*… to reduce depth, and to increase non-overlapping reach",
/// and under Gao-Rexford preference the additive form is the one that
/// never weakens anyone's existing protection.
///
/// # Errors
///
/// See [`RehomeError`]; returns [`RehomeError::NoHigherProvider`] when
/// every climbed ancestor is already a provider (nothing to add).
pub fn multihome_up(
    topo: &Topology,
    target: AsIndex,
    levels: u32,
) -> Result<Rehoming, RehomeError> {
    let depths = DepthMap::to_tier1(topo);
    let old_providers: Vec<AsIndex> = topo.providers(target).collect();
    if old_providers.is_empty() {
        return Err(RehomeError::NoProviders);
    }
    let climb = |mut from: AsIndex| -> AsIndex {
        for _ in 0..levels {
            let up = topo
                .providers(from)
                .min_by_key(|&p| (depths.depth(p).unwrap_or(u32::MAX), p.raw()));
            match up {
                Some(p) => from = p,
                None => break,
            }
        }
        from
    };
    let mut added: Vec<AsIndex> = old_providers
        .iter()
        .map(|&p| climb(p))
        .filter(|&p| p != target && !old_providers.contains(&p))
        .collect();
    added.sort_unstable();
    added.dedup();
    if added.is_empty() {
        return Err(RehomeError::NoHigherProvider);
    }
    let target_id = topo.id_of(target);
    let add: Vec<(AsId, AsId, LinkKind)> = added
        .iter()
        .map(|&p| (topo.id_of(p), target_id, LinkKind::ProviderToCustomer))
        .collect();
    let topology = rebuild_with(topo, &[], &add)?;
    let mut new_providers = old_providers.clone();
    new_providers.extend(added);
    new_providers.sort_unstable();
    Ok(Rehoming {
        topology,
        old_providers,
        new_providers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, LinkKind::*};

    fn ix(t: &Topology, n: u32) -> AsIndex {
        t.index_of(AsId::new(n)).unwrap()
    }

    /// Chain: 1 (tier-1) → 2 → 3 → 4 → 5 (deep stub).
    fn chain() -> Topology {
        topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (4, 5, ProviderToCustomer),
        ])
    }

    #[test]
    fn rehoming_reduces_depth_by_levels() {
        let t = chain();
        let target = ix(&t, 5);
        let before = DepthMap::to_tier1(&t).depth(target).unwrap();
        assert_eq!(before, 4);
        let r = rehome_up(&t, target, 2).unwrap();
        let after_ix = r.topology.index_of(AsId::new(5)).unwrap();
        let after = DepthMap::to_tier1(&r.topology).depth(after_ix).unwrap();
        assert_eq!(after, 2);
        assert_eq!(r.old_providers, vec![ix(&t, 4)]);
        assert_eq!(r.new_providers, vec![ix(&t, 2)]);
    }

    #[test]
    fn climbing_past_the_top_saturates() {
        let t = chain();
        let r = rehome_up(&t, ix(&t, 5), 99).unwrap();
        let after_ix = r.topology.index_of(AsId::new(5)).unwrap();
        assert_eq!(
            DepthMap::to_tier1(&r.topology).depth(after_ix).unwrap(),
            1,
            "climbs all the way to a tier-1 customer slot"
        );
    }

    #[test]
    fn no_providers_errors() {
        let t = chain();
        assert!(matches!(
            rehome_up(&t, ix(&t, 1), 1),
            Err(RehomeError::NoProviders)
        ));
    }

    #[test]
    fn multihomed_chains_may_converge() {
        // 5 is homed to two depth-2 transits that share a parent.
        let t = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
            (3, 5, ProviderToCustomer),
            (4, 5, ProviderToCustomer),
        ]);
        let r = rehome_up(&t, ix(&t, 5), 1).unwrap();
        assert_eq!(r.new_providers, vec![ix(&t, 2)]);
        let after_ix = r.topology.index_of(AsId::new(5)).unwrap();
        assert_eq!(r.topology.num_providers(after_ix), 1);
    }

    #[test]
    fn multihome_adds_without_removing() {
        let t = chain();
        let r = multihome_up(&t, ix(&t, 5), 2).unwrap();
        let after = r.topology.index_of(AsId::new(5)).unwrap();
        assert_eq!(r.topology.num_providers(after), 2, "old + new provider");
        assert_eq!(
            DepthMap::to_tier1(&r.topology).depth(after),
            Some(2),
            "depth drops like rehome_up"
        );
        assert!(r.new_providers.contains(&ix(&t, 4)), "old provider kept");
        assert!(r.new_providers.contains(&ix(&t, 2)), "new provider added");
    }

    #[test]
    fn multihome_errors_when_nothing_to_add() {
        // Target directly under the top: climbing yields the same provider.
        let t = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
        assert!(matches!(
            multihome_up(&t, ix(&t, 2), 3),
            Err(RehomeError::NoHigherProvider)
        ));
    }

    #[test]
    fn zero_levels_is_a_noop_error() {
        let t = chain();
        assert!(matches!(
            rehome_up(&t, ix(&t, 5), 0),
            Err(RehomeError::NoHigherProvider)
        ));
    }
}
