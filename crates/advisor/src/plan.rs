//! The §VII step-wise security plan, generated per organization.
//!
//! "Rather than sit and wait, responsible organizations can start to take
//! pro-active actions immediately": analyze the relevant topology, reduce
//! vulnerability, publish route origins, filter, and use detection. This
//! module turns that prose into a concrete, data-driven checklist for a
//! specific target AS.

use core::fmt;

use bgpsim_topology::metrics::DepthMap;
use bgpsim_topology::{AsId, AsIndex, Topology};

use crate::regional::analyze_region;

/// One concrete recommendation in a [`SecurityPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Recommendation {
    /// Findings of the topology analysis step.
    Analysis {
        /// The target's depth (hops to the nearest tier-1), if connected.
        depth: Option<u32>,
        /// Number of providers (homing).
        providers: usize,
        /// Regional gateways the target's traffic funnels through.
        gateways: Vec<AsIndex>,
    },
    /// Re-home to reduce depth and increase non-overlapping reach.
    ReduceVulnerability {
        /// Levels to climb.
        levels: u32,
        /// Expected depth after re-homing.
        expected_depth: u32,
    },
    /// Publish authoritative route origins (ROVER / RPKI): prerequisite
    /// for every downstream defense.
    PublishOrigins,
    /// Deploy origin-validation filters at these ASes first (highest
    /// regional leverage per filter).
    DeployFilters {
        /// Suggested filter locations, best first.
        at: Vec<AsIndex>,
    },
    /// Subscribe to detection and verify these probes cover the region.
    UseDetection {
        /// Suggested vantage points, best first.
        probes: Vec<AsIndex>,
    },
}

/// A generated step-wise plan for one target.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SecurityPlan {
    /// The AS the plan protects.
    pub target: AsIndex,
    /// Its autonomous-system number, for display.
    pub target_asn: AsId,
    /// The ordered recommendations.
    pub steps: Vec<Recommendation>,
}

impl SecurityPlan {
    /// Builds a plan for `target`, scoping the analysis to `region` (pass
    /// the whole AS list for a global view).
    ///
    /// The plan always includes the analysis, origin-publication, filter
    /// and detection steps; the re-homing step appears only when the
    /// target's depth exceeds 1 and a lower-depth provider is reachable.
    pub fn for_target(topo: &Topology, target: AsIndex, region: &[AsIndex]) -> SecurityPlan {
        let depths = DepthMap::to_tier1(topo);
        let analysis = analyze_region(topo, region);
        let depth = depths.depth(target);
        let mut steps = vec![Recommendation::Analysis {
            depth,
            providers: topo.num_providers(target),
            gateways: analysis.gateways.clone(),
        }];
        if let Some(d) = depth {
            if d > 1 {
                // Climbing one level per excess depth unit reaches depth 1.
                steps.push(Recommendation::ReduceVulnerability {
                    levels: d - 1,
                    expected_depth: 1,
                });
            }
        }
        steps.push(Recommendation::PublishOrigins);
        // Filters: gateways first (they throttle the whole region), then
        // the highest-degree region members.
        let mut filter_sites = analysis.gateways.clone();
        let mut by_degree: Vec<AsIndex> = region
            .iter()
            .copied()
            .filter(|ix| !filter_sites.contains(ix) && *ix != target)
            .collect();
        by_degree.sort_by_key(|&ix| (std::cmp::Reverse(topo.degree(ix)), ix.raw()));
        filter_sites.extend(by_degree.into_iter().take(3));
        steps.push(Recommendation::DeployFilters { at: filter_sites });
        // Detection: high-degree, non-overlapping vantage points outside
        // the region see attacks the region cannot.
        let region_set: std::collections::HashSet<AsIndex> = region.iter().copied().collect();
        let mut probes: Vec<AsIndex> = topo
            .indices()
            .filter(|ix| !region_set.contains(ix))
            .collect();
        probes.sort_by_key(|&ix| (std::cmp::Reverse(topo.degree(ix)), ix.raw()));
        probes.truncate(8);
        steps.push(Recommendation::UseDetection { probes });
        SecurityPlan {
            target,
            target_asn: topo.id_of(target),
            steps,
        }
    }

    /// Whether the plan recommends re-homing.
    pub fn recommends_rehoming(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, Recommendation::ReduceVulnerability { .. }))
    }
}

impl fmt::Display for SecurityPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "security plan for {}:", self.target_asn)?;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                Recommendation::Analysis {
                    depth,
                    providers,
                    gateways,
                } => {
                    write!(f, "  {}. analyze: ", i + 1)?;
                    match depth {
                        Some(d) => write!(f, "depth {d}")?,
                        None => write!(f, "no tier-1 provider chain")?,
                    }
                    writeln!(
                        f,
                        ", {providers} provider(s), {} regional gateway(s)",
                        gateways.len()
                    )?;
                }
                Recommendation::ReduceVulnerability {
                    levels,
                    expected_depth,
                } => writeln!(
                    f,
                    "  {}. reduce vulnerability: re-home {levels} level(s) up (expected depth {expected_depth})",
                    i + 1
                )?,
                Recommendation::PublishOrigins => writeln!(
                    f,
                    "  {}. publish authoritative route origins (ROVER/RPKI)",
                    i + 1
                )?,
                Recommendation::DeployFilters { at } => writeln!(
                    f,
                    "  {}. deploy origin filters at {} site(s), gateways first",
                    i + 1,
                    at.len()
                )?,
                Recommendation::UseDetection { probes } => writeln!(
                    f,
                    "  {}. subscribe to detection; verify coverage via {} suggested probe(s)",
                    i + 1,
                    probes.len()
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::gen::{generate, InternetParams};
    use bgpsim_topology::select;

    #[test]
    fn deep_target_gets_rehoming_advice() {
        let net = generate(&InternetParams::small(), 3);
        let depths = DepthMap::to_tier1(&net.topology);
        let deep = select::deepest_stub(&net.topology, &depths).unwrap();
        let region: Vec<AsIndex> = net.topology.indices().collect();
        let plan = SecurityPlan::for_target(&net.topology, deep, &region);
        assert!(plan.recommends_rehoming());
        assert!(plan.steps.len() >= 5);
        let text = plan.to_string();
        assert!(text.contains("re-home"));
        assert!(text.contains("publish"));
    }

    #[test]
    fn shallow_target_skips_rehoming() {
        let net = generate(&InternetParams::small(), 3);
        let depths = DepthMap::to_tier1(&net.topology);
        let shallow =
            select::stub_at_depth(&net.topology, &depths, 1, select::Homing::MultiHomed).unwrap();
        let region: Vec<AsIndex> = net.topology.indices().collect();
        let plan = SecurityPlan::for_target(&net.topology, shallow, &region);
        assert!(!plan.recommends_rehoming());
        assert_eq!(plan.steps.len(), 4);
    }

    #[test]
    fn island_plan_prioritizes_gateways() {
        let net = generate(&InternetParams::small(), 3);
        let region = net.island_region.unwrap();
        let members = net.regions.members(region).to_vec();
        let target = members[members.len() - 1];
        let plan = SecurityPlan::for_target(&net.topology, target, &members);
        let filters = plan
            .steps
            .iter()
            .find_map(|s| match s {
                Recommendation::DeployFilters { at } => Some(at.clone()),
                _ => None,
            })
            .expect("plan includes filters");
        // The hub gateway leads the suggested filter sites.
        assert!(filters.contains(&net.island_gateways[0]));
    }
}
