//! Pragmatic self-interest actions (§VII of the ICDCS 2014 paper).
//!
//! "Security is a process, not a product. BGP security will not happen in
//! a single step… Rather than sit and wait, responsible organizations can
//! start to take pro-active actions immediately."
//!
//! * [`analyze_region`] / [`regional_containment`] — scoped topology
//!   analysis and the paper's regional compromise metric.
//! * [`rehome_up`] — the "reduce vulnerability" transform (§VII re-homed
//!   its NZ target two levels up).
//! * [`SecurityPlan`] — the full five-step recommendation pipeline for a
//!   concrete target.
//! * [`surgery::rebuild_with`] — controlled topology edits backing the
//!   experiments.
//!
//! # Quick start
//!
//! ```
//! use bgpsim_advisor::SecurityPlan;
//! use bgpsim_topology::gen::{generate, InternetParams};
//!
//! let net = generate(&InternetParams::tiny(), 1);
//! let target = net.topology.stub_ases()[0];
//! let everyone: Vec<_> = net.topology.indices().collect();
//! let plan = SecurityPlan::for_target(&net.topology, target, &everyone);
//! println!("{plan}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod regional;
mod rehome;
pub mod surgery;

pub use plan::{Recommendation, SecurityPlan};
pub use regional::{analyze_region, regional_containment, RegionalAnalysis, RegionalPollution};
pub use rehome::{multihome_up, rehome_up, RehomeError, Rehoming};
