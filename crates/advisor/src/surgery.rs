//! Topology surgery: rebuilding a topology with links removed and added.
//!
//! Section VII's experiments modify the graph — re-homing a vulnerable AS
//! to lower-depth providers — so the advisor needs controlled edits of the
//! immutable [`Topology`].

use bgpsim_topology::{AsId, LinkKind, Relationship, Topology, TopologyBuilder, TopologyError};

/// Rebuilds `topo` with the unordered pairs in `remove` deleted and the
/// links in `add` inserted. ASNs (and, for surviving ASes, dense indices)
/// are preserved because the rebuild enumerates ASes in index order.
///
/// # Errors
///
/// Returns an error if an added link duplicates a surviving link or is a
/// self-loop. Removing a non-existent link is a no-op.
pub fn rebuild_with(
    topo: &Topology,
    remove: &[(AsId, AsId)],
    add: &[(AsId, AsId, LinkKind)],
) -> Result<Topology, TopologyError> {
    let removed = |x: AsId, y: AsId| {
        remove
            .iter()
            .any(|&(a, b)| (a == x && b == y) || (a == y && b == x))
    };
    let mut builder = TopologyBuilder::with_capacity(topo.num_ases(), topo.num_links());
    for asn in topo.ids() {
        builder.add_as(asn);
    }
    for ix in topo.indices() {
        for nb in topo.neighbors(ix) {
            let kind = match nb.rel {
                Relationship::Customer => LinkKind::ProviderToCustomer,
                Relationship::Peer if nb.index.raw() > ix.raw() => LinkKind::PeerToPeer,
                Relationship::Sibling if nb.index.raw() > ix.raw() => LinkKind::SiblingToSibling,
                _ => continue,
            };
            let (a, b) = (topo.id_of(ix), topo.id_of(nb.index));
            if !removed(a, b) {
                builder.add_link(a, b, kind)?;
            }
        }
    }
    for &(a, b, kind) in add {
        builder.add_link(a, b, kind)?;
    }
    if topo.has_declared_tier1() {
        for t in topo.tier1s() {
            builder.declare_tier1(topo.id_of(t));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, LinkKind::*};

    #[test]
    fn remove_and_add_links() {
        let t = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (1, 4, PeerToPeer),
        ]);
        let t2 = rebuild_with(
            &t,
            &[(AsId::new(2), AsId::new(3))],
            &[(AsId::new(1), AsId::new(3), ProviderToCustomer)],
        )
        .unwrap();
        assert_eq!(t2.num_links(), 3);
        let i1 = t2.index_of(AsId::new(1)).unwrap();
        let i3 = t2.index_of(AsId::new(3)).unwrap();
        assert!(t2.customers(i1).any(|c| c == i3));
        let i2 = t2.index_of(AsId::new(2)).unwrap();
        assert_eq!(t2.num_customers(i2), 0);
        // Indices preserved.
        for ix in t.indices() {
            assert_eq!(t.id_of(ix), t2.id_of(ix));
        }
    }

    #[test]
    fn removal_is_direction_insensitive_and_lenient() {
        let t = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
        let t2 = rebuild_with(&t, &[(AsId::new(2), AsId::new(1))], &[]).unwrap();
        assert_eq!(t2.num_links(), 0);
        // Removing a non-existent link changes nothing.
        let t3 = rebuild_with(&t, &[(AsId::new(5), AsId::new(6))], &[]).unwrap();
        assert_eq!(t3.num_links(), 1);
    }

    #[test]
    fn duplicate_add_errors() {
        let t = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
        let r = rebuild_with(&t, &[], &[(AsId::new(1), AsId::new(2), PeerToPeer)]);
        assert!(r.is_err());
    }

    #[test]
    fn tier1_declaration_survives() {
        let mut b = bgpsim_topology::TopologyBuilder::new();
        b.add_link(AsId::new(1), AsId::new(2), ProviderToCustomer)
            .unwrap();
        b.declare_tier1(AsId::new(1));
        let t = b.build().unwrap();
        let t2 = rebuild_with(&t, &[], &[]).unwrap();
        assert!(t2.has_declared_tier1());
        assert_eq!(t2.tier1s().len(), 1);
    }
}
