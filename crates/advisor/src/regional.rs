//! Regional containment analysis (§VII).
//!
//! The paper's validation region is New Zealand: "This AS is located in
//! New Zealand, along with 186 other ASes. We wanted to see if IP
//! hijacking could be reduced just within the NZ region." Compromise is
//! measured as the number of *regional* ASes polluted, for attacks
//! launched both from inside and from outside the region.

use bgpsim_hijack::{Defense, Simulator};
use bgpsim_topology::metrics::DepthMap;
use bgpsim_topology::{AsIndex, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Structural facts about a region.
#[derive(Debug, Clone)]
pub struct RegionalAnalysis {
    /// The region roster.
    pub members: Vec<AsIndex>,
    /// Transit members with at least one neighbor outside the region —
    /// the ASes able to carry other members' traffic across the boundary.
    /// (Leaked stubs with a foreign provider are *not* gateways: they
    /// cannot transit for anyone else.)
    pub gateways: Vec<AsIndex>,
    /// Histogram of member depths (hops to the nearest tier-1).
    pub depth_histogram: Vec<usize>,
    /// The deepest (most vulnerable-looking) members, deepest first.
    pub deepest_members: Vec<(AsIndex, u32)>,
}

/// Analyzes the topology of a region: §VII's "analyze the relevant AS
/// topology… Measure depth to assess potential vulnerability".
pub fn analyze_region(topo: &Topology, members: &[AsIndex]) -> RegionalAnalysis {
    let member_set: std::collections::HashSet<AsIndex> = members.iter().copied().collect();
    let depths = DepthMap::to_tier1(topo);
    let gateways: Vec<AsIndex> = members
        .iter()
        .copied()
        .filter(|&m| {
            topo.is_transit(m)
                && topo
                    .neighbors(m)
                    .iter()
                    .any(|nb| !member_set.contains(&nb.index))
        })
        .collect();
    let finite: Vec<(AsIndex, u32)> = members
        .iter()
        .copied()
        .filter_map(|m| depths.depth(m).map(|d| (m, d)))
        .collect();
    let max_depth = finite.iter().map(|&(_, d)| d).max().unwrap_or(0) as usize;
    let mut depth_histogram = vec![0usize; max_depth + 1];
    for &(_, d) in &finite {
        depth_histogram[d as usize] += 1;
    }
    let mut deepest_members = finite;
    deepest_members.sort_by_key(|&(m, d)| (std::cmp::Reverse(d), m.raw()));
    deepest_members.truncate(10);
    RegionalAnalysis {
        members: members.to_vec(),
        gateways,
        depth_histogram,
        deepest_members,
    }
}

/// Outcome of a regional containment measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegionalPollution {
    /// Mean number of regional ASes compromised per successful attack
    /// launched from *inside* the region.
    pub mean_from_inside: f64,
    /// Same, for a sample of attacks launched from *outside*.
    pub mean_from_outside: f64,
    /// Region size, for converting to the paper's percentages.
    pub region_size: usize,
}

impl RegionalPollution {
    /// Mean inside-attack compromise as a fraction of the region.
    pub fn inside_fraction(&self) -> f64 {
        self.mean_from_inside / self.region_size.max(1) as f64
    }

    /// Mean outside-attack compromise as a fraction of the region.
    pub fn outside_fraction(&self) -> f64 {
        self.mean_from_outside / self.region_size.max(1) as f64
    }
}

/// Measures regional compromise for attacks on `target`: every region
/// member attacks once, plus `outside_sample` random outside ASes
/// (seeded). Mirrors the paper's §VII methodology ("attacks generated from
/// each of the 187 ASes within the region… a sample of 200 attacks from
/// outside the region"). Zero-pollution attacks are excluded from the
/// means, matching the curves' "successful attack" convention.
pub fn regional_containment(
    sim: &Simulator<'_>,
    target: AsIndex,
    members: &[AsIndex],
    outside_sample: usize,
    seed: u64,
    defense: &Defense,
) -> RegionalPollution {
    let inside: Vec<AsIndex> = members.iter().copied().filter(|&m| m != target).collect();
    let member_set: std::collections::HashSet<AsIndex> = members.iter().copied().collect();
    let mut outside: Vec<AsIndex> = sim
        .topology()
        .indices()
        .filter(|ix| !member_set.contains(ix) && *ix != target)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    outside.shuffle(&mut rng);
    outside.truncate(outside_sample);

    let mean_within = |attackers: &[AsIndex]| -> f64 {
        let counts = sim.sweep_attackers_within(target, attackers, defense, Some(members));
        let successful: Vec<u32> = counts.into_iter().filter(|&c| c > 0).collect();
        if successful.is_empty() {
            0.0
        } else {
            successful.iter().map(|&c| c as u64).sum::<u64>() as f64 / successful.len() as f64
        }
    };
    RegionalPollution {
        mean_from_inside: mean_within(&inside),
        mean_from_outside: mean_within(&outside),
        region_size: members.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_routing::PolicyConfig;
    use bgpsim_topology::gen::{generate, InternetParams};

    #[test]
    fn analysis_finds_gateways_and_depths() {
        let net = generate(&InternetParams::small(), 7);
        let region = net.island_region.expect("preset has an island");
        let members = net.regions.members(region);
        let analysis = analyze_region(&net.topology, members);
        assert!(!analysis.gateways.is_empty());
        assert!(analysis.gateways.len() < members.len());
        assert_eq!(
            analysis.depth_histogram.iter().sum::<usize>(),
            members.len()
        );
        assert!(!analysis.deepest_members.is_empty());
        // Deepest list is sorted deep-first.
        for w in analysis.deepest_members.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The generator's hub gateway (guaranteed island customers) is a
        // structural gateway; others may have attracted no customers.
        assert!(analysis.gateways.contains(&net.island_gateways[0]));
        // Every structural gateway is transit.
        for g in &analysis.gateways {
            assert!(net.topology.is_transit(*g));
        }
    }

    #[test]
    fn containment_measures_are_bounded_and_deterministic() {
        let net = generate(&InternetParams::small(), 7);
        let region = net.island_region.unwrap();
        let members = net.regions.members(region).to_vec();
        let sim = Simulator::new(&net.topology, PolicyConfig::paper());
        // Deepest island member as target (the paper's AS55857 analogue).
        let analysis = analyze_region(&net.topology, &members);
        let target = analysis.deepest_members[0].0;
        let a = regional_containment(&sim, target, &members, 50, 1, &Defense::none());
        let b = regional_containment(&sim, target, &members, 50, 1, &Defense::none());
        assert_eq!(a, b);
        assert!(a.mean_from_inside >= 0.0);
        assert!(a.inside_fraction() <= 1.0);
        assert!(a.outside_fraction() <= 1.0);
        // Regional attacks compromise at least as much of the region as
        // external ones on average (they start inside the containment).
        assert!(a.mean_from_inside >= a.mean_from_outside * 0.5);
    }
}
