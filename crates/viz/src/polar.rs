//! Polar propagation graphs (fig. 1).
//!
//! "The polar graphs are constructed such that an AS's longitude is
//! plotted along the graph perimeter, and the AS depth is plotted along
//! the radius… The size of an AS circle indicates the amount of address
//! space an AS owns. AS degree is shown by scattering within a concentric
//! circle. Higher degree ASes are towards the center." Red lines mark
//! announcements that polluted the receiver; green lines mark rejected
//! ones.

use std::collections::HashMap;

use bgpsim_routing::{Decision, MessageEvent};
use bgpsim_topology::metrics::DepthMap;
use bgpsim_topology::{AddressSpace, AsIndex, Topology};

use crate::style::{polar, SURFACE, TEXT_MUTED, TEXT_PRIMARY, TEXT_SECONDARY};
use crate::svg::{fmt_count, Anchor, SvgDoc};

/// Everything needed to draw one generation snapshot.
#[derive(Debug)]
pub struct PolarSnapshot<'a> {
    /// The topology under attack.
    pub topo: &'a Topology,
    /// Longitude in `[0, 1)` per AS (from the generator, or synthesized).
    pub longitude: &'a [f64],
    /// Depth map controlling the radial bands.
    pub depths: &'a DepthMap,
    /// Full trace of the propagation (all generations).
    pub events: &'a [MessageEvent],
    /// The generation to draw (1-based). Message lines are drawn for this
    /// generation only; pollution state accumulates up to and including it.
    pub generation: u32,
    /// The attacking AS.
    pub attacker: AsIndex,
    /// The target AS.
    pub target: AsIndex,
    /// Optional address-space weights controlling dot size.
    pub address_space: Option<&'a AddressSpace>,
    /// Cap on the number of uninvolved ASes drawn (deterministic stride
    /// subsample keeps huge graphs renderable). Default cap: 4000.
    pub idle_cap: usize,
}

impl<'a> PolarSnapshot<'a> {
    /// Renders the snapshot to SVG.
    pub fn render(&self) -> String {
        let (w, h) = (760.0, 800.0);
        let (cx, cy) = (w / 2.0, 64.0 + (w - 128.0) / 2.0);
        let r_outer = (w - 128.0) / 2.0;
        let max_depth = self.depths.max_depth().unwrap_or(1).max(1);
        // Depth 0 (tier-1) sits on the outermost ring; the deepest ASes in
        // the center, matching the paper ("highest depth in the center").
        let band = r_outer / (max_depth as f64 + 1.0);
        let radius_of = |ix: AsIndex, topo: &Topology| -> f64 {
            let d = self.depths.depth(ix).unwrap_or(max_depth) as f64;
            let base = r_outer - d * band; // outer edge of this AS's band
                                           // Higher degree toward the band's inner edge.
            let deg = topo.degree(ix) as f64;
            let frac = (deg.ln_1p() / 8.0).min(0.9);
            base - band * (0.15 + 0.7 * frac)
        };
        let pos = |ix: AsIndex, topo: &Topology| -> (f64, f64) {
            let theta = self.longitude.get(ix.usize()).copied().unwrap_or(0.0)
                * std::f64::consts::TAU
                - std::f64::consts::FRAC_PI_2;
            let r = radius_of(ix, topo);
            (cx + r * theta.cos(), cy + r * theta.sin())
        };

        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, SURFACE);
        doc.text_styled(
            16.0,
            28.0,
            &format!("Generation {}", self.generation),
            18.0,
            TEXT_PRIMARY,
            Anchor::Start,
            true,
            0.0,
        );
        doc.text(
            16.0,
            48.0,
            &format!(
                "{} hijacks {}'s prefix",
                self.topo.id_of(self.attacker),
                self.topo.id_of(self.target)
            ),
            12.0,
            TEXT_SECONDARY,
            Anchor::Start,
        );

        // Depth rings (hairlines).
        for d in 0..=max_depth {
            let r = r_outer - d as f64 * band;
            doc.ring(cx, cy, r, crate::style::GRID, 1.0);
            doc.text(
                cx + 4.0,
                cy - r + 12.0,
                &format!("d{d}"),
                9.0,
                TEXT_MUTED,
                Anchor::Start,
            );
        }

        // Pollution state accumulated up to this generation: the latest
        // best-route change per AS decides its current origin.
        let mut current_origin: HashMap<AsIndex, AsIndex> = HashMap::new();
        for e in self
            .events
            .iter()
            .filter(|e| e.generation <= self.generation && e.decision == Decision::NewBest)
        {
            current_origin.insert(e.to, e.origin);
        }
        let polluted = |ix: AsIndex| -> bool { current_origin.get(&ix) == Some(&self.attacker) };

        // Idle dots (subsampled deterministically).
        let involved: std::collections::HashSet<AsIndex> = self
            .events
            .iter()
            .filter(|e| e.generation <= self.generation)
            .flat_map(|e| [e.from, e.to])
            .chain([self.attacker, self.target])
            .collect();
        let n = self.topo.num_ases();
        let idle_count = n.saturating_sub(involved.len());
        let stride = (idle_count / self.idle_cap.max(1)).max(1);
        let dot_r = |ix: AsIndex| -> f64 {
            match self.address_space {
                Some(space) => (1.0 + (space.weight(ix) as f64).ln_1p() * 0.45).min(6.0),
                None => 1.6,
            }
        };
        let mut skipped = 0usize;
        for (i, ix) in self.topo.indices().enumerate() {
            if involved.contains(&ix) {
                continue;
            }
            if i % stride != 0 {
                skipped += 1;
                continue;
            }
            let (x, y) = pos(ix, self.topo);
            doc.circle(x, y, dot_r(ix), polar::IDLE, None);
        }

        // Message lines for this generation (deterministically subsampled
        // when a generation delivers more lines than can usefully render).
        let gen_events: Vec<&MessageEvent> = self
            .events
            .iter()
            .filter(|e| e.generation == self.generation && e.origin == self.attacker)
            .collect();
        let line_cap = 8_000usize;
        let line_stride = (gen_events.len() / line_cap).max(1);
        let mut accepted_lines = 0usize;
        let mut rejected_lines = 0usize;
        for (ei, e) in gen_events.into_iter().enumerate() {
            let (x1, y1) = pos(e.from, self.topo);
            let (x2, y2) = pos(e.to, self.topo);
            let (color, opacity) = if e.decision == Decision::NewBest {
                accepted_lines += 1;
                (polar::ACCEPTED, 0.55)
            } else {
                rejected_lines += 1;
                (polar::REJECTED, 0.40)
            };
            if ei.is_multiple_of(line_stride) {
                doc.line_with_opacity(x1, y1, x2, y2, color, 1.0, opacity);
            }
        }

        // Involved dots on top of the lines: every polluted AS is drawn
        // (they carry the story); clean-but-involved ASes are subsampled
        // against the same cap as idle dots.
        let mut involved_sorted: Vec<AsIndex> = involved.iter().copied().collect();
        involved_sorted.sort_unstable();
        let clean_involved = involved_sorted.iter().filter(|&&ix| !polluted(ix)).count();
        let clean_stride = (clean_involved / self.idle_cap.max(1)).max(1);
        let mut clean_seen = 0usize;
        for &ix in &involved_sorted {
            if ix == self.attacker || ix == self.target {
                continue;
            }
            let is_polluted = polluted(ix);
            if !is_polluted {
                clean_seen += 1;
                if !clean_seen.is_multiple_of(clean_stride) {
                    continue;
                }
            }
            let (x, y) = pos(ix, self.topo);
            let fill = if is_polluted {
                polar::ACCEPTED
            } else {
                polar::IDLE
            };
            doc.circle(x, y, dot_r(ix).max(2.0), fill, None);
        }
        let (tx, ty) = pos(self.target, self.topo);
        doc.circle(
            tx,
            ty,
            dot_r(self.target).max(5.0),
            polar::TARGET,
            Some(SURFACE),
        );
        let (ax, ay) = pos(self.attacker, self.topo);
        doc.circle(
            ax,
            ay,
            dot_r(self.attacker).max(5.0),
            polar::ATTACKER,
            Some(SURFACE),
        );

        // Legend + stats footer.
        let ly = h - 96.0;
        let legend = [
            (polar::ATTACKER, "attacker"),
            (polar::TARGET, "target"),
            (polar::ACCEPTED, "bogus route accepted"),
            (polar::REJECTED, "bogus route rejected"),
            (polar::IDLE, "unaffected AS"),
        ];
        for (i, (color, label)) in legend.iter().enumerate() {
            let lx = 16.0 + (i % 3) as f64 * 240.0;
            let lyy = ly + (i / 3) as f64 * 20.0;
            doc.circle(lx + 5.0, lyy - 4.0, 5.0, color, Some(SURFACE));
            doc.text(lx + 16.0, lyy, label, 12.0, TEXT_SECONDARY, Anchor::Start);
        }
        let polluted_count = current_origin
            .iter()
            .filter(|&(ix, o)| *o == self.attacker && *ix != self.attacker)
            .count();
        let mut footer = format!(
            "{} polluted so far · {} accepted / {} rejected this generation",
            fmt_count(polluted_count as f64),
            fmt_count(accepted_lines as f64),
            fmt_count(rejected_lines as f64),
        );
        if let Some(space) = self.address_space {
            let polluted_ixs: Vec<AsIndex> = current_origin
                .iter()
                .filter(|&(ix, o)| *o == self.attacker && *ix != self.attacker)
                .map(|(&ix, _)| ix)
                .collect();
            footer.push_str(&format!(
                " · {:.0}% of address space",
                100.0 * space.fraction_of(polluted_ixs)
            ));
        }
        doc.text(16.0, h - 40.0, &footer, 12.0, TEXT_PRIMARY, Anchor::Start);
        if skipped > 0 {
            doc.text(
                16.0,
                h - 20.0,
                &format!(
                    "({} uninvolved ASes subsampled out for rendering)",
                    fmt_count(skipped as f64)
                ),
                10.0,
                TEXT_MUTED,
                Anchor::Start,
            );
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_hijack::{Attack, Defense, Simulator};
    use bgpsim_routing::{PolicyConfig, TraceRecorder, Workspace};
    use bgpsim_topology::gen::{generate, InternetParams};

    #[test]
    fn renders_generation_snapshots() {
        let net = generate(&InternetParams::tiny(), 3);
        let topo = &net.topology;
        let depths = DepthMap::to_tier1(topo);
        let sim = Simulator::new(topo, PolicyConfig::paper());
        let target = topo.stub_ases()[0];
        let attacker = topo.transit_ases()[2];
        let mut trace = TraceRecorder::new();
        let outcome = sim.run_observed(
            Attack::origin(attacker, target),
            &Defense::none(),
            &mut Workspace::new(),
            &mut trace,
        );
        assert!(outcome.generations >= 2);
        for generation in 1..=outcome.generations.min(3) {
            let svg = PolarSnapshot {
                topo,
                longitude: &net.longitude,
                depths: &depths,
                events: trace.events(),
                generation,
                attacker,
                target,
                address_space: Some(&net.address_space),
                idle_cap: 500,
            }
            .render();
            assert!(svg.contains("<svg"));
            assert!(svg.contains(&format!("Generation {generation}")));
            assert!(svg.contains("attacker"));
            assert!(svg.contains("polluted so far"));
        }
    }

    #[test]
    fn pollution_count_accumulates_across_generations() {
        let net = generate(&InternetParams::tiny(), 5);
        let topo = &net.topology;
        let depths = DepthMap::to_tier1(topo);
        let sim = Simulator::new(topo, PolicyConfig::paper());
        let target = topo.stub_ases()[1];
        let attacker = topo.transit_ases()[0];
        let mut trace = TraceRecorder::new();
        let outcome = sim.run_observed(
            Attack::origin(attacker, target),
            &Defense::none(),
            &mut Workspace::new(),
            &mut trace,
        );
        // The last generation's accumulated pollution must match the
        // outcome (the footer text encodes it).
        let svg = PolarSnapshot {
            topo,
            longitude: &net.longitude,
            depths: &depths,
            events: trace.events(),
            generation: outcome.generations,
            attacker,
            target,
            address_space: None,
            idle_cap: 100,
        }
        .render();
        let expect = format!(
            "{} polluted so far",
            crate::svg::fmt_count(outcome.pollution_count() as f64)
        );
        assert!(svg.contains(&expect), "footer should report {expect}");
    }
}
