//! A minimal, dependency-free SVG document writer.
//!
//! Charts in this crate are static SVG files; this module provides just
//! enough structure to emit them safely (escaped text/attributes) and
//! legibly (indented output).

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
    indent: usize,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Formats a coordinate compactly (2 decimals, trailing zeros trimmed).
pub fn fmt_num(v: f64) -> String {
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

impl SvgDoc {
    /// Starts a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> SvgDoc {
        SvgDoc {
            width,
            height,
            body: String::new(),
            indent: 1,
        }
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.body.push_str("  ");
        }
    }

    /// Emits a filled rectangle (no stroke).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        self.rect_rounded(x, y, w, h, 0.0, fill);
    }

    /// Emits a filled rectangle with rounded corners.
    pub fn rect_rounded(&mut self, x: f64, y: f64, w: f64, h: f64, rx: f64, fill: &str) {
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" rx="{}" fill="{}"/>"#,
            fmt_num(x),
            fmt_num(y),
            fmt_num(w.max(0.0)),
            fmt_num(h.max(0.0)),
            fmt_num(rx),
            esc(fill)
        );
    }

    /// Emits a column with a rounded top (4px data-end) and square base —
    /// the bar spec from the mark guidelines.
    pub fn column(&mut self, x: f64, y_top: f64, w: f64, y_base: f64, fill: &str) {
        let h = (y_base - y_top).max(0.0);
        let r = 4.0f64.min(w / 2.0).min(h);
        if h <= r || r <= 0.0 {
            self.rect(x, y_top, w, h, fill);
            return;
        }
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<path d="M{} {} L{} {} L{} {} Q{} {} {} {} L{} {} Q{} {} {} {} Z" fill="{}"/>"#,
            fmt_num(x),
            fmt_num(y_base),
            fmt_num(x),
            fmt_num(y_top + r),
            fmt_num(x),
            fmt_num(y_top + r),
            fmt_num(x),
            fmt_num(y_top),
            fmt_num(x + r),
            fmt_num(y_top),
            fmt_num(x + w - r),
            fmt_num(y_top),
            fmt_num(x + w),
            fmt_num(y_top),
            fmt_num(x + w),
            fmt_num(y_top + r),
            esc(fill)
        );
        // Close the body below the rounded cap.
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"/>"#,
            fmt_num(x),
            fmt_num(y_top + r),
            fmt_num(w),
            fmt_num(y_base - y_top - r),
            esc(fill)
        );
    }

    /// Emits a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.line_with_opacity(x1, y1, x2, y2, stroke, width, 1.0);
    }

    /// Emits a line segment with stroke opacity.
    #[allow(clippy::too_many_arguments)]
    pub fn line_with_opacity(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
        opacity: f64,
    ) {
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}" stroke-opacity="{}" stroke-linecap="round"/>"#,
            fmt_num(x1),
            fmt_num(y1),
            fmt_num(x2),
            fmt_num(y2),
            esc(stroke),
            fmt_num(width),
            fmt_num(opacity)
        );
    }

    /// Emits an unfilled polyline (2px round-join data line by default
    /// semantics; pass the width explicitly).
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("{},{}", fmt_num(x), fmt_num(y)))
            .collect();
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}" stroke-linejoin="round" stroke-linecap="round"/>"#,
            pts.join(" "),
            esc(stroke),
            fmt_num(width)
        );
    }

    /// Emits a circle, optionally with a surface-colored ring (pass the
    /// surface color as `ring`).
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, ring: Option<&str>) {
        self.pad();
        match ring {
            Some(surface) => {
                let _ = writeln!(
                    self.body,
                    r#"<circle cx="{}" cy="{}" r="{}" fill="{}" stroke="{}" stroke-width="2"/>"#,
                    fmt_num(cx),
                    fmt_num(cy),
                    fmt_num(r),
                    esc(fill),
                    esc(surface)
                );
            }
            None => {
                let _ = writeln!(
                    self.body,
                    r#"<circle cx="{}" cy="{}" r="{}" fill="{}"/>"#,
                    fmt_num(cx),
                    fmt_num(cy),
                    fmt_num(r),
                    esc(fill)
                );
            }
        }
    }

    /// Emits a stroke-only circle (hairline ring, no fill).
    pub fn ring(&mut self, cx: f64, cy: f64, r: f64, stroke: &str, width: f64) {
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="none" stroke="{}" stroke-width="{}"/>"#,
            fmt_num(cx),
            fmt_num(cy),
            fmt_num(r),
            esc(stroke),
            fmt_num(width)
        );
    }

    /// Emits a text element in the document's font stack.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, fill: &str, anchor: Anchor) {
        self.text_styled(x, y, content, size, fill, anchor, false, 0.0);
    }

    /// Text with optional bold weight and rotation (degrees, about x/y).
    #[allow(clippy::too_many_arguments)]
    pub fn text_styled(
        &mut self,
        x: f64,
        y: f64,
        content: &str,
        size: f64,
        fill: &str,
        anchor: Anchor,
        bold: bool,
        rotate: f64,
    ) {
        self.pad();
        let anchor = match anchor {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        };
        let weight = if bold { " font-weight=\"600\"" } else { "" };
        let transform = if rotate != 0.0 {
            format!(
                r#" transform="rotate({} {} {})""#,
                fmt_num(rotate),
                fmt_num(x),
                fmt_num(y)
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            self.body,
            r#"<text x="{}" y="{}" font-size="{}" fill="{}" text-anchor="{anchor}"{weight}{transform}>{}</text>"#,
            fmt_num(x),
            fmt_num(y),
            fmt_num(size),
            esc(fill),
            esc(content)
        );
    }

    /// Adds a `<title>` tooltip to the *next* emitted element by wrapping
    /// it in a group. Call as `doc.titled(tooltip, |doc| …)`.
    pub fn titled(&mut self, tooltip: &str, f: impl FnOnce(&mut SvgDoc)) {
        self.pad();
        let _ = writeln!(self.body, "<g>");
        self.indent += 1;
        self.pad();
        let _ = writeln!(self.body, "<title>{}</title>", esc(tooltip));
        f(self);
        self.indent -= 1;
        self.pad();
        let _ = writeln!(self.body, "</g>");
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"system-ui, -apple-system, 'Segoe UI', sans-serif\">\n{body}</svg>\n",
            w = fmt_num(self.width),
            h = fmt_num(self.height),
            body = self.body
        )
    }
}

/// Horizontal text anchoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Left-aligned at x.
    Start,
    /// Centered on x.
    Middle,
    /// Right-aligned at x.
    End,
}

/// Computes up to `max_ticks` "nice" axis ticks covering `[0, hi]`
/// (1–2–5 progression).
pub fn nice_ticks(hi: f64, max_ticks: usize) -> Vec<f64> {
    if hi <= 0.0 {
        return vec![0.0, 1.0];
    }
    let raw_step = hi / max_ticks.max(2) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| hi / s <= max_ticks as f64)
        .unwrap_or(10.0 * mag);
    let mut ticks = Vec::new();
    let mut v = 0.0;
    while v <= hi + step * 1e-9 {
        ticks.push(v);
        v += step;
    }
    if *ticks.last().expect("at least 0") < hi {
        ticks.push(v);
    }
    ticks
}

/// Formats an axis value with thousands separators.
pub fn fmt_count(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if n < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_and_escaping() {
        let mut d = SvgDoc::new(100.0, 50.0);
        d.text(1.0, 2.0, "a<b & \"c\"", 10.0, "#000", Anchor::Start);
        d.rect(0.0, 0.0, 10.0, 10.0, "#fff");
        let s = d.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!s.contains("a<b"));
    }

    #[test]
    fn titled_wraps_in_group() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.titled("tip & tip", |d| d.circle(1.0, 1.0, 2.0, "#111", None));
        let s = d.finish();
        assert!(s.contains("<title>tip &amp; tip</title>"));
        assert!(s.contains("<g>"));
        assert!(s.contains("</g>"));
    }

    #[test]
    fn nice_ticks_cover_range() {
        let t = nice_ticks(97.0, 6);
        assert_eq!(t[0], 0.0);
        assert!(*t.last().unwrap() >= 97.0);
        assert!(t.len() <= 8);
        // 1-2-5 progression steps.
        let step = t[1] - t[0];
        let mag = 10f64.powf(step.log10().floor());
        let m = step / mag;
        assert!([1.0, 2.0, 5.0, 10.0].iter().any(|x| (x - m).abs() < 1e-9));
    }

    #[test]
    fn nice_ticks_degenerate() {
        assert_eq!(nice_ticks(0.0, 5), vec![0.0, 1.0]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0.0), "0");
        assert_eq!(fmt_count(999.0), "999");
        assert_eq!(fmt_count(1000.0), "1,000");
        assert_eq!(fmt_count(42_697.0), "42,697");
        assert_eq!(fmt_count(-1234.0), "-1,234");
    }

    #[test]
    fn num_formatting_trims() {
        assert_eq!(fmt_num(1.0), "1");
        assert_eq!(fmt_num(1.50), "1.5");
        assert_eq!(fmt_num(0.004), "0");
    }

    #[test]
    fn column_small_heights_degrade_to_rect() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.column(0.0, 8.0, 4.0, 10.0, "#123456");
        let s = d.finish();
        assert!(s.contains("rect"));
    }
}
