//! Vulnerability-curve charts (figs. 2–6): complementary cumulative counts.
//!
//! X axis: minimum pollution count; Y axis: number of attackers achieving
//! at least that pollution. "The faster a curve goes to zero, the more
//! resistant an AS is to attack."

use crate::style::{series_color, GRID, SURFACE, TEXT_MUTED, TEXT_PRIMARY, TEXT_SECONDARY};
use crate::svg::{fmt_count, nice_ticks, Anchor, SvgDoc};

/// One curve: label plus `(pollution, attackers_at_least)` step points in
/// ascending pollution order (as produced by
/// `bgpsim_hijack::VulnerabilityCurve::points`).
#[derive(Debug, Clone)]
pub struct CurveSeries {
    /// Legend label.
    pub label: String,
    /// `(pollution, attackers with ≥ pollution)` steps, ascending.
    pub points: Vec<(u32, usize)>,
}

/// A multi-series CCDF chart.
#[derive(Debug, Clone)]
pub struct CcdfChart {
    title: String,
    subtitle: String,
    x_label: String,
    y_label: String,
    series: Vec<CurveSeries>,
}

impl CcdfChart {
    /// Starts a chart with a title.
    pub fn new(title: impl Into<String>) -> CcdfChart {
        CcdfChart {
            title: title.into(),
            subtitle: String::new(),
            x_label: "minimum polluted ASes".into(),
            y_label: "attackers achieving at least x".into(),
            series: Vec::new(),
        }
    }

    /// Sets the subtitle (scenario parameters).
    #[must_use]
    pub fn subtitle(mut self, s: impl Into<String>) -> CcdfChart {
        self.subtitle = s.into();
        self
    }

    /// Overrides the axis captions.
    #[must_use]
    pub fn axis_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> CcdfChart {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a curve. Colors are assigned by insertion order from the fixed
    /// categorical palette (never cycled; a ninth series folds to gray).
    pub fn add_series(&mut self, label: impl Into<String>, points: Vec<(u32, usize)>) {
        self.series.push(CurveSeries {
            label: label.into(),
            points,
        });
    }

    /// Number of series added so far.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Renders the chart to an SVG string.
    pub fn render(&self) -> String {
        let (w, h) = (920.0, 560.0);
        let legend_rows = self.series.len().div_ceil(4);
        let top = 64.0 + legend_rows as f64 * 20.0;
        let (left, right, bottom) = (86.0, 28.0, 56.0);
        let (pw, ph) = (w - left - right, h - top - bottom);
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, SURFACE);
        doc.text_styled(
            16.0,
            28.0,
            &self.title,
            18.0,
            TEXT_PRIMARY,
            Anchor::Start,
            true,
            0.0,
        );
        if !self.subtitle.is_empty() {
            doc.text(
                16.0,
                48.0,
                &self.subtitle,
                12.0,
                TEXT_SECONDARY,
                Anchor::Start,
            );
        }

        let max_x = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .max()
            .unwrap_or(1) as f64;
        let max_y = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .max()
            .unwrap_or(1) as f64;
        let xt = nice_ticks(max_x.max(1.0), 8);
        let yt = nice_ticks(max_y.max(1.0), 6);
        let x_hi = *xt.last().expect("ticks nonempty");
        let y_hi = *yt.last().expect("ticks nonempty");
        let sx = |v: f64| left + (v / x_hi) * pw;
        let sy = |v: f64| top + ph - (v / y_hi) * ph;

        // Recessive hairline grid + axis labels.
        for &t in &yt {
            doc.line(left, sy(t), left + pw, sy(t), GRID, 1.0);
            doc.text(
                left - 8.0,
                sy(t) + 4.0,
                &fmt_count(t),
                11.0,
                TEXT_SECONDARY,
                Anchor::End,
            );
        }
        for &t in &xt {
            doc.line(sx(t), top, sx(t), top + ph, GRID, 1.0);
            doc.text(
                sx(t),
                top + ph + 18.0,
                &fmt_count(t),
                11.0,
                TEXT_SECONDARY,
                Anchor::Middle,
            );
        }
        doc.text(
            left + pw / 2.0,
            h - 14.0,
            &self.x_label,
            12.0,
            TEXT_SECONDARY,
            Anchor::Middle,
        );
        doc.text_styled(
            20.0,
            top + ph / 2.0,
            &self.y_label,
            12.0,
            TEXT_SECONDARY,
            Anchor::Middle,
            false,
            -90.0,
        );

        // Legend (always present for >= 2 series).
        if self.series.len() >= 2 {
            for (i, s) in self.series.iter().enumerate() {
                let col = i % 4;
                let row = i / 4;
                let lx = 16.0 + col as f64 * 225.0;
                let ly = 62.0 + row as f64 * 20.0;
                doc.line(lx, ly - 4.0, lx + 18.0, ly - 4.0, series_color(i), 3.0);
                let label = truncate(&s.label, 32);
                doc.text(lx + 24.0, ly, &label, 12.0, TEXT_SECONDARY, Anchor::Start);
            }
        }

        // Step curves, 2px.
        for (i, s) in self.series.iter().enumerate() {
            if s.points.is_empty() {
                continue;
            }
            let color = series_color(i);
            let mut pts: Vec<(f64, f64)> = Vec::with_capacity(s.points.len() * 2 + 2);
            // CCDF: start at (0, total attackers).
            let y0 = s.points.first().expect("nonempty").1 as f64;
            pts.push((sx(0.0), sy(y0)));
            let mut prev_y = y0;
            for &(x, y) in &s.points {
                pts.push((sx(x as f64), sy(prev_y)));
                pts.push((sx(x as f64), sy(y as f64)));
                prev_y = y as f64;
            }
            // Drop to zero at the curve's max pollution.
            let last_x = s.points.last().expect("nonempty").0 as f64;
            pts.push((sx(last_x), sy(0.0)));
            // Decimate sub-pixel steps: thousands of distinct pollution
            // values collapse to at most ~2 points per output pixel.
            let mut thin: Vec<(f64, f64)> = Vec::with_capacity(pts.len().min(4096));
            for &(x, y) in &pts {
                match thin.last() {
                    Some(&(lx, ly)) if (x - lx).abs() < 0.5 && (y - ly).abs() < 0.5 => {}
                    _ => thin.push((x, y)),
                }
            }
            if let (Some(&last), Some(&tl)) = (pts.last(), thin.last()) {
                if tl != last {
                    thin.push(last);
                }
            }
            doc.polyline(&thin, color, 2.0);
        }
        doc.text(
            w - 16.0,
            h - 14.0,
            "CCDF over attackers; data in the companion CSV",
            10.0,
            TEXT_MUTED,
            Anchor::End,
        );
        doc.finish()
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_multiseries_with_legend() {
        let mut c = CcdfChart::new("Vulnerability of AS98-like target")
            .subtitle("tiny internet, all attackers");
        c.add_series("baseline", vec![(1, 100), (50, 40), (200, 3)]);
        c.add_series("tier-1 filters", vec![(1, 80), (30, 10)]);
        let svg = c.render();
        assert!(svg.contains("<svg"));
        assert!(svg.contains("baseline"));
        assert!(svg.contains("tier-1 filters"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("Vulnerability"));
    }

    #[test]
    fn single_series_has_no_legend_key() {
        let mut c = CcdfChart::new("t");
        c.add_series("only", vec![(1, 5)]);
        let svg = c.render();
        // The label text appears only in the legend, which single-series
        // charts skip (the title names the series).
        assert!(!svg.contains(">only<"));
    }

    #[test]
    fn empty_chart_still_renders() {
        let c = CcdfChart::new("empty");
        let svg = c.render();
        assert!(svg.contains("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn truncation_is_safe() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("a very long label that will not fit at all", 10);
        assert!(t.chars().count() <= 10);
        assert!(t.ends_with('…'));
    }
}
