//! Detection charts (fig. 7): attacks by number of probes triggered.
//!
//! The paper overlays a bar histogram (attack count per triggered-probe
//! bin) with a mean-attack-size line on a second y-axis. Dual-axis charts
//! hide scale relationships, so this rendering uses **two stacked panels
//! sharing one x axis**: counts on top, mean pollution below — same data,
//! one scale per panel.

use crate::style::{series_color, GRID, SURFACE, TEXT_MUTED, TEXT_PRIMARY, TEXT_SECONDARY};
use crate::svg::{fmt_count, nice_ticks, Anchor, SvgDoc};

/// Input for one detection chart.
#[derive(Debug, Clone)]
pub struct DetectionChart {
    title: String,
    subtitle: String,
    /// `histogram[k]` = attacks seen by exactly `k` probes.
    histogram: Vec<usize>,
    /// Mean pollution of the attacks in each bin (0 for empty bins).
    mean_pollution: Vec<f64>,
}

impl DetectionChart {
    /// Builds the chart from a report's histogram and per-bin means.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or are empty.
    pub fn new(
        title: impl Into<String>,
        subtitle: impl Into<String>,
        histogram: &[usize],
        mean_pollution: &[f64],
    ) -> DetectionChart {
        assert_eq!(
            histogram.len(),
            mean_pollution.len(),
            "one mean per histogram bin"
        );
        assert!(!histogram.is_empty(), "histogram must have bins");
        DetectionChart {
            title: title.into(),
            subtitle: subtitle.into(),
            histogram: histogram.to_vec(),
            mean_pollution: mean_pollution.to_vec(),
        }
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = (920.0, 640.0);
        let (left, right) = (86.0, 28.0);
        let top = 72.0;
        let gap = 56.0;
        let bottom = 56.0;
        let panel_h = (h - top - gap - bottom) / 2.0;
        let pw = w - left - right;
        let bins = self.histogram.len();
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, SURFACE);
        doc.text_styled(
            16.0,
            28.0,
            &self.title,
            18.0,
            TEXT_PRIMARY,
            Anchor::Start,
            true,
            0.0,
        );
        if !self.subtitle.is_empty() {
            doc.text(
                16.0,
                48.0,
                &self.subtitle,
                12.0,
                TEXT_SECONDARY,
                Anchor::Start,
            );
        }

        let slot = pw / bins as f64;
        let bar_w = (slot - 2.0).clamp(2.0, 24.0);
        let x_of = |k: usize| left + k as f64 * slot + (slot - bar_w) / 2.0;
        let x_center = |k: usize| left + (k as f64 + 0.5) * slot;

        // ---- Top panel: attack counts. -----------------------------------
        let count_hi = *self.histogram.iter().max().unwrap_or(&1) as f64;
        let yt = nice_ticks(count_hi.max(1.0), 5);
        let y_hi = *yt.last().expect("ticks");
        let sy = |v: f64| top + panel_h - (v / y_hi) * panel_h;
        for &t in &yt {
            doc.line(left, sy(t), left + pw, sy(t), GRID, 1.0);
            doc.text(
                left - 8.0,
                sy(t) + 4.0,
                &fmt_count(t),
                11.0,
                TEXT_SECONDARY,
                Anchor::End,
            );
        }
        for (k, &c) in self.histogram.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let color = if k == 0 {
                series_color(5)
            } else {
                series_color(0)
            };
            doc.titled(&format!("{c} attacks seen by {k} probe(s)"), |doc| {
                doc.column(x_of(k), sy(c as f64), bar_w, sy(0.0), color)
            });
        }
        // Direct label on the story bin: the misses.
        if self.histogram[0] > 0 {
            doc.text(
                x_center(0),
                sy(self.histogram[0] as f64) - 6.0,
                &format!("{} missed", fmt_count(self.histogram[0] as f64)),
                11.0,
                TEXT_PRIMARY,
                Anchor::Start,
            );
        }
        doc.text_styled(
            20.0,
            top + panel_h / 2.0,
            "attacks",
            12.0,
            TEXT_SECONDARY,
            Anchor::Middle,
            false,
            -90.0,
        );
        // Legend for the two bar identities.
        let ly = top - 12.0;
        doc.rect_rounded(left, ly - 9.0, 10.0, 10.0, 2.0, series_color(5));
        doc.text(
            left + 16.0,
            ly,
            "undetected (0 probes)",
            11.0,
            TEXT_SECONDARY,
            Anchor::Start,
        );
        doc.rect_rounded(left + 190.0, ly - 9.0, 10.0, 10.0, 2.0, series_color(0));
        doc.text(
            left + 206.0,
            ly,
            "detected",
            11.0,
            TEXT_SECONDARY,
            Anchor::Start,
        );

        // ---- Bottom panel: mean pollution. --------------------------------
        let p_top = top + panel_h + gap;
        let poll_hi = self.mean_pollution.iter().copied().fold(0.0f64, f64::max);
        let pt = nice_ticks(poll_hi.max(1.0), 5);
        let p_hi = *pt.last().expect("ticks");
        let py = |v: f64| p_top + panel_h - (v / p_hi) * panel_h;
        for &t in &pt {
            doc.line(left, py(t), left + pw, py(t), GRID, 1.0);
            doc.text(
                left - 8.0,
                py(t) + 4.0,
                &fmt_count(t),
                11.0,
                TEXT_SECONDARY,
                Anchor::End,
            );
        }
        let line_pts: Vec<(f64, f64)> = self
            .mean_pollution
            .iter()
            .enumerate()
            .filter(|&(k, _)| self.histogram[k] > 0)
            .map(|(k, &m)| (x_center(k), py(m)))
            .collect();
        doc.polyline(&line_pts, series_color(7), 2.0);
        for &(x, y) in &line_pts {
            doc.circle(x, y, 4.0, series_color(7), Some(SURFACE));
        }
        doc.text_styled(
            20.0,
            p_top + panel_h / 2.0,
            "mean polluted ASes",
            12.0,
            TEXT_SECONDARY,
            Anchor::Middle,
            false,
            -90.0,
        );

        // ---- Shared x axis. ------------------------------------------------
        let step = (bins / 16).max(1);
        for k in (0..bins).step_by(step) {
            doc.text(
                x_center(k),
                h - bottom + 18.0,
                &k.to_string(),
                11.0,
                TEXT_SECONDARY,
                Anchor::Middle,
            );
        }
        doc.text(
            left + pw / 2.0,
            h - 14.0,
            "number of probes that observed the attack",
            12.0,
            TEXT_SECONDARY,
            Anchor::Middle,
        );
        doc.text(
            w - 16.0,
            h - 14.0,
            "two panels, one x axis; data in the companion CSV",
            10.0,
            TEXT_MUTED,
            Anchor::End,
        );
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_panels() {
        let c = DetectionChart::new(
            "Case 1: tier-1 probes",
            "8000 attacks",
            &[100, 40, 20, 5],
            &[900.0, 300.0, 1200.0, 4000.0],
        );
        let svg = c.render();
        assert!(svg.contains("missed"));
        assert!(svg.contains("mean polluted ASes"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("undetected (0 probes)"));
    }

    #[test]
    fn empty_bins_are_skipped() {
        let c = DetectionChart::new("t", "", &[0, 5, 0, 2], &[0.0, 10.0, 0.0, 3.0]);
        let svg = c.render();
        // No zero-count tooltip emitted.
        assert!(!svg.contains("0 attacks seen"));
    }

    #[test]
    #[should_panic(expected = "one mean per histogram bin")]
    fn mismatched_inputs_panic() {
        let _ = DetectionChart::new("t", "", &[1, 2], &[1.0]);
    }

    #[test]
    fn many_bins_render_within_bounds() {
        // The paper's case 3 has 63 probes -> 64 bins.
        let hist: Vec<usize> = (0..64).map(|k| (64 - k) * 3).collect();
        let means: Vec<f64> = (0..64).map(|k| 50.0 * k as f64).collect();
        let c = DetectionChart::new("case 3", "8000 attacks", &hist, &means);
        let svg = c.render();
        assert!(svg.contains("<svg"));
        // Bars stay <= 24px wide: no width attribute exceeds the cap much.
        for w in svg.split("width=\"").skip(2) {
            let val: f64 = w.split('\"').next().unwrap().parse().unwrap_or(0.0);
            if val < 100.0 {
                assert!(val <= 24.5, "bar width {val} exceeds the 24px cap");
            }
        }
    }

    #[test]
    #[should_panic(expected = "histogram must have bins")]
    fn empty_histogram_panics() {
        let _ = DetectionChart::new("t", "", &[], &[]);
    }
}
