//! Terminal progress-line rendering for long sweeps.
//!
//! Pure string formatting — no terminal control beyond what the caller
//! does with the returned line (the `bgpsim` CLI redraws it with a
//! carriage return on stderr). Kept in the viz crate so every frontend
//! renders progress the same way.

use std::time::Duration;

/// Renders one-line progress bars like
/// `fig2 [#######·······················] 123/500 (24.6%) elapsed 3.2s eta 9.8s`.
#[derive(Debug, Clone)]
pub struct ProgressLine {
    label: String,
    width: usize,
}

impl ProgressLine {
    /// A renderer for the given task label with the default 30-cell bar.
    pub fn new<S: Into<String>>(label: S) -> ProgressLine {
        ProgressLine {
            label: label.into(),
            width: 30,
        }
    }

    /// Overrides the bar width (cells; minimum 1).
    #[must_use]
    pub fn width(mut self, width: usize) -> ProgressLine {
        self.width = width.max(1);
        self
    }

    /// Renders the line for `completed` of `total` work items. `eta` is
    /// omitted from the line when `None`.
    #[must_use]
    pub fn render(
        &self,
        completed: usize,
        total: usize,
        elapsed: Duration,
        eta: Option<Duration>,
    ) -> String {
        let fraction = if total == 0 {
            1.0
        } else {
            (completed as f64 / total as f64).clamp(0.0, 1.0)
        };
        let filled = (fraction * self.width as f64).round() as usize;
        let filled = filled.min(self.width);
        let mut bar = String::with_capacity(self.width);
        for i in 0..self.width {
            bar.push(if i < filled { '#' } else { '.' });
        }
        let mut line = format!(
            "{} [{}] {}/{} ({:.1}%) elapsed {}",
            self.label,
            bar,
            completed,
            total,
            100.0 * fraction,
            fmt_duration(elapsed),
        );
        if let Some(eta) = eta {
            line.push_str(&format!(" eta {}", fmt_duration(eta)));
        }
        line
    }
}

/// Compact human duration: `850ms`, `3.2s`, `2m05s`, `1h02m`.
fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{}ms", d.as_millis())
    } else if secs < 60.0 {
        format!("{secs:.1}s")
    } else if secs < 3600.0 {
        format!("{}m{:02}s", d.as_secs() / 60, d.as_secs() % 60)
    } else {
        format!("{}h{:02}m", d.as_secs() / 3600, (d.as_secs() % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bar_and_percent() {
        let line = ProgressLine::new("fig2").width(10).render(
            25,
            100,
            Duration::from_secs(5),
            Some(Duration::from_secs(15)),
        );
        assert_eq!(
            line,
            "fig2 [###.......] 25/100 (25.0%) elapsed 5.0s eta 15.0s"
        );
    }

    #[test]
    fn handles_done_empty_and_missing_eta() {
        let p = ProgressLine::new("x").width(4);
        assert_eq!(
            p.render(0, 0, Duration::from_millis(850), None),
            "x [####] 0/0 (100.0%) elapsed 850ms"
        );
        let full = p.render(7, 7, Duration::from_secs(125), None);
        assert!(full.contains("[####] 7/7 (100.0%)"));
        assert!(full.contains("elapsed 2m05s"));
    }

    #[test]
    fn formats_long_durations() {
        assert_eq!(fmt_duration(Duration::from_secs(3725)), "1h02m");
        assert_eq!(fmt_duration(Duration::from_secs(59)), "59.0s");
    }
}
