//! The chart style tokens: a validated categorical palette, text tokens and
//! surfaces.
//!
//! The palette is the reference instance from the data-viz method used by
//! this workspace: eight categorical hues whose *ordering* maximizes the
//! minimum adjacent color-vision-deficiency distance (validated: worst
//! adjacent ΔE 24.2 under protanopia on the light surface). Categorical
//! hues are assigned in this fixed order, never cycled or generated.
//! Three slots (aqua, yellow, magenta) sit below 3:1 contrast on the light
//! surface, so every chart ships a legend plus direct labels, and every
//! experiment writes its data as CSV next to the SVG (the "table view").

/// Chart surface (light mode).
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink for titles and values.
pub const TEXT_PRIMARY: &str = "#0b0b0b";
/// Secondary ink for axis labels and legends.
pub const TEXT_SECONDARY: &str = "#52514e";
/// Muted ink for footnotes.
pub const TEXT_MUTED: &str = "#8a8984";
/// Recessive hairline for gridlines and axes (one step off the surface).
pub const GRID: &str = "#e7e6e3";

/// The eight categorical series colors, in fixed assignment order.
pub const SERIES: [&str; 8] = [
    "#2a78d6", // 1 blue
    "#1baf7a", // 2 aqua
    "#eda100", // 3 yellow
    "#008300", // 4 green
    "#4a3aa7", // 5 violet
    "#e34948", // 6 red
    "#e87ba4", // 7 magenta
    "#eb6834", // 8 orange
];

/// Series color for slot `i` (0-based). Slots beyond 7 fold back to a
/// neutral gray: per the method, a ninth series should be folded into
/// "other", not given a generated hue.
pub fn series_color(i: usize) -> &'static str {
    SERIES.get(i).copied().unwrap_or("#8a8984")
}

/// Semantic colors for the polar propagation view: accepted/polluting
/// announcements draw in red, rejected ones in green (the paper's fig. 1
/// color language), endpoints in blue/orange.
pub mod polar {
    /// A bogus announcement accepted by the receiving AS.
    pub const ACCEPTED: &str = "#e34948";
    /// An announcement rejected (preferred path already held, loop, filter).
    pub const REJECTED: &str = "#008300";
    /// The attack target.
    pub const TARGET: &str = "#2a78d6";
    /// The attacker.
    pub const ATTACKER: &str = "#eb6834";
    /// Uninvolved ASes.
    pub const IDLE: &str = "#d6d5d0";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_assignment_is_fixed_and_folds() {
        assert_eq!(series_color(0), "#2a78d6");
        assert_eq!(series_color(7), "#eb6834");
        assert_eq!(series_color(8), "#8a8984");
        assert_eq!(series_color(100), "#8a8984");
    }

    #[test]
    fn all_series_are_hex() {
        for s in SERIES {
            assert!(s.starts_with('#') && s.len() == 7);
            assert!(u32::from_str_radix(&s[1..], 16).is_ok());
        }
    }
}
