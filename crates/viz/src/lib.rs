//! Static SVG visualizations for the hijack experiments.
//!
//! Three chart families reproduce the paper's figures:
//!
//! * [`CcdfChart`] — vulnerability curves (figs. 2–6): attackers achieving
//!   at least x polluted ASes.
//! * [`DetectionChart`] — fig. 7's histogram plus mean-attack-size series,
//!   rendered as two stacked panels sharing one x axis (never dual-axis).
//! * [`PolarSnapshot`] — fig. 1's generation-by-generation polar
//!   propagation view (longitude around the perimeter, depth along the
//!   radius, red = bogus route accepted, green = rejected).
//!
//! Charts follow a fixed style contract ([`style`]): a validated 8-slot
//! categorical palette assigned in order, 2px data lines, hairline
//! recessive grids, legends whenever two or more series appear, and text
//! in ink tokens rather than series colors. Every figure the experiment
//! runners emit is accompanied by a CSV with the same data (the
//! accessibility "table view").
//!
//! # Quick start
//!
//! ```
//! use bgpsim_viz::CcdfChart;
//!
//! let mut chart = CcdfChart::new("Vulnerability of a depth-5 stub")
//!     .subtitle("synthetic internet, all attackers");
//! chart.add_series("baseline", vec![(1, 290), (1000, 120), (1700, 8)]);
//! chart.add_series("62 core filters", vec![(1, 220), (400, 30)]);
//! let svg = chart.render();
//! assert!(svg.starts_with("<svg"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ccdf;
mod detection;
mod polar;
mod progress;
pub mod style;
pub mod svg;

pub use ccdf::{CcdfChart, CurveSeries};
pub use detection::DetectionChart;
pub use polar::PolarSnapshot;
pub use progress::ProgressLine;
