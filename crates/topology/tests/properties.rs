//! Property-based tests for the topology substrate.

use proptest::prelude::*;

use bgpsim_topology::metrics::{customer_cone, customer_cone_sizes, DepthMap};
use bgpsim_topology::parser::{from_caida_str, to_caida_string};
use bgpsim_topology::{AsId, LinkKind, Relationship, TopologyBuilder};

/// Strategy: a random list of links over a small ASN universe. Duplicates
/// and self-loops are filtered during construction (leniently, mirroring
/// real dump handling).
fn arb_links() -> impl Strategy<Value = Vec<(u32, u32, LinkKind)>> {
    let kind = prop_oneof![
        Just(LinkKind::ProviderToCustomer),
        Just(LinkKind::PeerToPeer),
        Just(LinkKind::SiblingToSibling),
    ];
    proptest::collection::vec((1u32..40, 1u32..40, kind), 1..120)
}

fn build(links: &[(u32, u32, LinkKind)]) -> Option<bgpsim_topology::Topology> {
    let mut b = TopologyBuilder::new();
    b.extend(
        links
            .iter()
            .map(|&(a, c, k)| (AsId::new(a), AsId::new(c), k)),
    );
    b.build().ok()
}

proptest! {
    /// Every link is visible from both endpoints with mirrored roles.
    #[test]
    fn adjacency_is_symmetric(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        for ix in t.indices() {
            for nb in t.neighbors(ix) {
                let back = t
                    .neighbors(nb.index)
                    .iter()
                    .find(|o| o.index == ix)
                    .expect("reverse edge exists");
                prop_assert_eq!(back.rel, nb.rel.reversed());
            }
        }
    }

    /// Class iterators partition the neighbor list exactly.
    #[test]
    fn class_views_partition(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        for ix in t.indices() {
            let total = t.degree(ix);
            let parts = t.customers(ix).count() + t.peers(ix).count()
                + t.providers(ix).count() + t.siblings(ix).count();
            prop_assert_eq!(total, parts);
            prop_assert_eq!(t.num_customers(ix), t.customers(ix).count());
            prop_assert_eq!(t.num_providers(ix), t.providers(ix).count());
            prop_assert_eq!(t.num_peers(ix), t.peers(ix).count());
        }
    }

    /// CAIDA serialization round-trips the relationship multiset.
    #[test]
    fn caida_roundtrip(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        let t2 = from_caida_str(&to_caida_string(&t)).expect("roundtrip parses");
        prop_assert_eq!(t.num_ases(), t2.num_ases());
        prop_assert_eq!(t.num_p2c_links(), t2.num_p2c_links());
        prop_assert_eq!(t.num_p2p_links(), t2.num_p2p_links());
        prop_assert_eq!(t.num_s2s_links(), t2.num_s2s_links());
        for ix in t.indices() {
            let jx = t2.index_of(t.id_of(ix)).expect("same AS set");
            let mine: std::collections::BTreeSet<(u8, AsId)> = t
                .neighbors(ix)
                .iter()
                .map(|nb| (rel_tag(nb.rel), t.id_of(nb.index)))
                .collect();
            let theirs: std::collections::BTreeSet<(u8, AsId)> = t2
                .neighbors(jx)
                .iter()
                .map(|nb| (rel_tag(nb.rel), t2.id_of(nb.index)))
                .collect();
            prop_assert_eq!(&mine, &theirs);
        }
    }

    /// to_builder().build() is the identity on structure.
    #[test]
    fn builder_roundtrip(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        let t2 = t.to_builder().build().expect("round-trip builds");
        prop_assert_eq!(t.num_ases(), t2.num_ases());
        for ix in t.indices() {
            prop_assert_eq!(t.neighbors(ix), t2.neighbors(ix));
        }
    }

    /// Depth is 1 + min over providers' depth (Bellman condition).
    #[test]
    fn depth_satisfies_bellman(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        let d = DepthMap::to_tier1(&t);
        let seeds: std::collections::HashSet<_> = t.tier1s().into_iter().collect();
        for ix in t.indices() {
            match d.depth(ix) {
                Some(0) => prop_assert!(seeds.contains(&ix)),
                Some(k) => {
                    let best = t
                        .providers(ix)
                        .filter_map(|p| d.depth(p))
                        .min()
                        .expect("finite depth implies a reachable provider");
                    prop_assert_eq!(k, best + 1);
                }
                None => {
                    for p in t.providers(ix) {
                        prop_assert!(d.depth(p).is_none());
                    }
                }
            }
        }
    }

    /// Cone sizes equal materialized cones; every member's cone is a subset.
    #[test]
    fn cones_are_consistent(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        let sizes = customer_cone_sizes(&t);
        for ix in t.indices() {
            let cone = customer_cone(&t, ix);
            prop_assert_eq!(sizes[ix.usize()] as usize, cone.len());
            prop_assert!(cone.contains(&ix));
        }
    }

    /// Sibling groups form an equivalence relation consistent with links.
    #[test]
    fn sibling_groups_are_equivalence_classes(links in arb_links()) {
        let Some(t) = build(&links) else { return Ok(()); };
        for ix in t.indices() {
            for s in t.siblings(ix) {
                prop_assert!(t.same_organization(ix, s));
            }
        }
    }
}

fn rel_tag(r: Relationship) -> u8 {
    match r {
        Relationship::Customer => 0,
        Relationship::Peer => 1,
        Relationship::Provider => 2,
        Relationship::Sibling => 3,
    }
}

/// Paper-scale calibration: the generated Internet must land in the bands
/// DESIGN.md promises. Expensive (~1 s release, a few s debug) but crucial.
#[test]
fn paper_scale_calibration() {
    use bgpsim_topology::gen::{generate, InternetParams};
    use bgpsim_topology::TopologyStats;

    let net = generate(&InternetParams::paper_scale(), 2014);
    let s = TopologyStats::compute(&net.topology);
    assert_eq!(s.num_ases, 42_697);
    assert!(
        (110_000..=160_000).contains(&s.num_links),
        "links {} out of band",
        s.num_links
    );
    assert_eq!(s.num_tier1, 17);
    let transit_share = s.num_transit as f64 / s.num_ases as f64;
    assert!((0.10..=0.20).contains(&transit_share));
    // Degree cohorts: nested, non-empty, small relative to n.
    let [c500, c300, c200, c100] = s.degree_cohorts.map(|(_, c)| c);
    assert!((15..=150).contains(&c500), "deg>=500 cohort {c500}");
    assert!(c300 > c500 && c300 <= 300);
    assert!(c200 > c300 && c200 <= 450);
    assert!(c100 > c200 && c100 <= 800);
    // Depth distribution: reaches at least 6, mass concentrated <= 3.
    assert!(s.depth_histogram.len() >= 7);
    let shallow: usize = s.depth_histogram.iter().take(4).sum();
    assert!(shallow as f64 / s.num_ases as f64 > 0.80);
    assert_eq!(s.unreachable, 0);
}
