//! AS-level Internet topology substrate for BGP origin-hijack simulation.
//!
//! This crate provides everything the routing and experiment layers need to
//! know about the inter-domain graph:
//!
//! * [`Topology`] — an immutable relationship graph (provider/customer,
//!   peer, sibling) in cache-friendly CSR form with deterministic neighbor
//!   ordering, built via [`TopologyBuilder`] or parsed from CAIDA
//!   AS-relationship files ([`parser`]).
//! * [`gen`] — a calibrated synthetic-Internet generator used when the real
//!   CAIDA snapshot is unavailable (see `DESIGN.md` §4 for the
//!   substitution rationale).
//! * [`metrics`] — the paper's vulnerability predictors: *depth* (provider
//!   hops to the tier-1/tier-2 core), *reach* (customer cones) and plain
//!   hop distances.
//! * [`classify`] / [`select`] — tier labels and deterministic selectors
//!   for "a depth-5 stub", "the 62 ASes with degree ≥ 500", etc.
//! * [`AddressSpace`], [`region`] — per-AS address-space weights and
//!   regional labels used by the §IV pollution metrics and §VII regional
//!   experiments.
//!
//! # Quick start
//!
//! ```
//! use bgpsim_topology::gen::{generate, InternetParams};
//! use bgpsim_topology::metrics::DepthMap;
//!
//! // A ~300-AS Internet with a tier-1 clique, island region and ladders.
//! let net = generate(&InternetParams::tiny(), 42);
//! let depths = DepthMap::to_tier1(&net.topology);
//! assert_eq!(depths.num_unreachable(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addrspace;
mod asid;
mod builder;
pub mod classify;
mod error;
pub mod gen;
mod graph;
pub mod metrics;
pub mod parser;
pub mod region;
mod relationship;
pub mod select;
mod stats;

pub use addrspace::AddressSpace;
pub use asid::{AsId, AsIndex, ParseAsIdError};
pub use builder::{topology_from_triples, TopologyBuilder};
pub use classify::{classify, Classification, ClassifyConfig, TierClass};
pub use error::TopologyError;
pub use graph::{Neighbor, Topology};
pub use region::{RegionId, RegionMap};
pub use relationship::{LinkKind, Relationship};
pub use stats::TopologyStats;
