//! Error types for topology construction and parsing.

use core::fmt;

use crate::AsId;

/// Errors produced while building or parsing a topology.
#[derive(Debug)]
#[non_exhaustive]
pub enum TopologyError {
    /// A link connects an AS to itself.
    SelfLoop {
        /// The offending AS.
        asn: AsId,
    },
    /// The same unordered AS pair was added twice (possibly with different
    /// relationship kinds).
    DuplicateLink {
        /// One endpoint.
        a: AsId,
        /// The other endpoint.
        b: AsId,
    },
    /// An operation referenced an AS that is not part of the topology.
    UnknownAs {
        /// The unknown AS.
        asn: AsId,
    },
    /// A line of an AS-relationship file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O error while reading relationship data.
    Io(std::io::Error),
    /// The topology would be empty.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::SelfLoop { asn } => {
                write!(f, "self-loop on {asn} is not a valid inter-AS link")
            }
            TopologyError::DuplicateLink { a, b } => {
                write!(f, "duplicate link between {a} and {b}")
            }
            TopologyError::UnknownAs { asn } => write!(f, "unknown autonomous system {asn}"),
            TopologyError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TopologyError::Io(e) => write!(f, "i/o error reading topology: {e}"),
            TopologyError::Empty => write!(f, "topology contains no autonomous systems"),
        }
    }
}

impl std::error::Error for TopologyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopologyError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TopologyError {
    fn from(e: std::io::Error) -> Self {
        TopologyError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<TopologyError> = vec![
            TopologyError::SelfLoop { asn: AsId::new(7) },
            TopologyError::DuplicateLink {
                a: AsId::new(1),
                b: AsId::new(2),
            },
            TopologyError::UnknownAs { asn: AsId::new(9) },
            TopologyError::Parse {
                line: 3,
                message: "bad field".into(),
            },
            TopologyError::Empty,
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn io_error_chains_source() {
        use std::error::Error as _;
        let e = TopologyError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
