//! Incremental construction of [`Topology`] values.

use std::collections::HashMap;

use crate::{AsId, LinkKind, Topology, TopologyError};

/// Builder that accumulates ASes and inter-AS links, then freezes them into
/// an immutable [`Topology`] with dense indices and CSR adjacency.
///
/// ASes are created implicitly when first mentioned by a link, or explicitly
/// via [`TopologyBuilder::add_as`] (useful for isolated ASes). Dense indices
/// are assigned in *first-mention order*, which makes construction fully
/// deterministic.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{AsId, LinkKind, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// // AS1 is the provider of AS2; AS2 and AS3 peer.
/// b.add_link(AsId::new(1), AsId::new(2), LinkKind::ProviderToCustomer)?;
/// b.add_link(AsId::new(2), AsId::new(3), LinkKind::PeerToPeer)?;
/// let topo = b.build()?;
/// assert_eq!(topo.num_ases(), 3);
/// assert_eq!(topo.num_links(), 2);
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    ids: Vec<AsId>,
    index_of: HashMap<AsId, u32>,
    // (a, b, kind) with a,b dense indices; unordered duplicate detection via key set.
    links: Vec<(u32, u32, LinkKind)>,
    link_keys: HashMap<(u32, u32), LinkKind>,
    tier1: Vec<u32>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity hints for `ases` autonomous
    /// systems and `links` links.
    pub fn with_capacity(ases: usize, links: usize) -> Self {
        TopologyBuilder {
            ids: Vec::with_capacity(ases),
            index_of: HashMap::with_capacity(ases),
            links: Vec::with_capacity(links),
            link_keys: HashMap::with_capacity(links),
            tier1: Vec::new(),
        }
    }

    /// Number of ASes mentioned so far.
    pub fn num_ases(&self) -> usize {
        self.ids.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Ensures `asn` exists and returns its dense index.
    pub fn add_as(&mut self, asn: AsId) -> u32 {
        if let Some(&ix) = self.index_of.get(&asn) {
            return ix;
        }
        let ix = self.ids.len() as u32;
        self.ids.push(asn);
        self.index_of.insert(asn, ix);
        ix
    }

    /// Returns whether the unordered pair `(a, b)` is already linked.
    pub fn has_link(&self, a: AsId, b: AsId) -> bool {
        match (self.index_of.get(&a), self.index_of.get(&b)) {
            (Some(&ia), Some(&ib)) => {
                let key = if ia <= ib { (ia, ib) } else { (ib, ia) };
                self.link_keys.contains_key(&key)
            }
            _ => false,
        }
    }

    /// Adds a link between `a` and `b`.
    ///
    /// For [`LinkKind::ProviderToCustomer`], `a` is the provider.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::SelfLoop`] if `a == b` and
    /// [`TopologyError::DuplicateLink`] if the unordered pair was already
    /// added (regardless of kind).
    pub fn add_link(&mut self, a: AsId, b: AsId, kind: LinkKind) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop { asn: a });
        }
        let ia = self.add_as(a);
        let ib = self.add_as(b);
        let key = if ia <= ib { (ia, ib) } else { (ib, ia) };
        if self.link_keys.contains_key(&key) {
            return Err(TopologyError::DuplicateLink { a, b });
        }
        self.link_keys.insert(key, kind);
        self.links.push((ia, ib, kind));
        Ok(())
    }

    /// Declares `asn` to be a tier-1 AS.
    ///
    /// The set is optional ground-truth metadata: generators know their
    /// tier-1 clique exactly, and parsers may learn it from a side channel.
    /// When absent, [`Topology::tier1s`] falls back to a structural
    /// heuristic. Declaring the same AS twice is harmless.
    pub fn declare_tier1(&mut self, asn: AsId) {
        let ix = self.add_as(asn);
        if !self.tier1.contains(&ix) {
            self.tier1.push(ix);
        }
    }

    /// Freezes the builder into an immutable [`Topology`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Empty`] if no AS was ever added.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.ids.is_empty() {
            return Err(TopologyError::Empty);
        }
        Ok(Topology::from_parts(
            self.ids,
            self.index_of,
            self.links,
            self.tier1,
        ))
    }
}

impl Extend<(AsId, AsId, LinkKind)> for TopologyBuilder {
    /// Adds links in bulk, silently skipping self-loops and duplicates.
    ///
    /// Bulk extension is lenient because real-world relationship dumps
    /// contain occasional duplicates; use [`TopologyBuilder::add_link`] when
    /// strictness matters.
    fn extend<T: IntoIterator<Item = (AsId, AsId, LinkKind)>>(&mut self, iter: T) {
        for (a, b, kind) in iter {
            let _ = self.add_link(a, b, kind);
        }
    }
}

/// Convenience constructor used pervasively in tests and examples: builds a
/// topology from `(a, b, kind)` triples with numeric ASNs.
///
/// # Panics
///
/// Panics on self-loops, duplicate pairs, or an empty list — the inputs are
/// expected to be literals under the author's control.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, LinkKind::*};
///
/// let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, PeerToPeer)]);
/// assert_eq!(topo.num_ases(), 3);
/// ```
pub fn topology_from_triples(triples: &[(u32, u32, LinkKind)]) -> Topology {
    let mut b = TopologyBuilder::new();
    for &(x, y, kind) in triples {
        b.add_link(AsId::new(x), AsId::new(y), kind)
            .expect("valid triple");
    }
    b.build().expect("non-empty topology")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkKind::*;

    #[test]
    fn indices_assigned_in_first_mention_order() {
        let mut b = TopologyBuilder::new();
        b.add_link(AsId::new(10), AsId::new(20), ProviderToCustomer)
            .unwrap();
        b.add_link(AsId::new(30), AsId::new(10), PeerToPeer)
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.id_of(crate::AsIndex::new(0)), AsId::new(10));
        assert_eq!(t.id_of(crate::AsIndex::new(1)), AsId::new(20));
        assert_eq!(t.id_of(crate::AsIndex::new(2)), AsId::new(30));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        let err = b
            .add_link(AsId::new(1), AsId::new(1), PeerToPeer)
            .unwrap_err();
        assert!(matches!(err, TopologyError::SelfLoop { .. }));
    }

    #[test]
    fn rejects_duplicate_even_reversed_or_rekinded() {
        let mut b = TopologyBuilder::new();
        b.add_link(AsId::new(1), AsId::new(2), ProviderToCustomer)
            .unwrap();
        assert!(matches!(
            b.add_link(AsId::new(1), AsId::new(2), ProviderToCustomer),
            Err(TopologyError::DuplicateLink { .. })
        ));
        assert!(matches!(
            b.add_link(AsId::new(2), AsId::new(1), PeerToPeer),
            Err(TopologyError::DuplicateLink { .. })
        ));
    }

    #[test]
    fn empty_build_fails() {
        assert!(matches!(
            TopologyBuilder::new().build(),
            Err(TopologyError::Empty)
        ));
    }

    #[test]
    fn isolated_as_is_allowed() {
        let mut b = TopologyBuilder::new();
        b.add_as(AsId::new(99));
        let t = b.build().unwrap();
        assert_eq!(t.num_ases(), 1);
        assert_eq!(t.num_links(), 0);
    }

    #[test]
    fn extend_is_lenient() {
        let mut b = TopologyBuilder::new();
        b.extend([
            (AsId::new(1), AsId::new(2), ProviderToCustomer),
            (AsId::new(1), AsId::new(2), ProviderToCustomer), // dup, skipped
            (AsId::new(3), AsId::new(3), PeerToPeer),         // loop, skipped
        ]);
        let t = b.build().unwrap();
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    fn has_link_sees_both_orders() {
        let mut b = TopologyBuilder::new();
        b.add_link(AsId::new(1), AsId::new(2), PeerToPeer).unwrap();
        assert!(b.has_link(AsId::new(1), AsId::new(2)));
        assert!(b.has_link(AsId::new(2), AsId::new(1)));
        assert!(!b.has_link(AsId::new(1), AsId::new(3)));
    }

    #[test]
    fn declare_tier1_dedupes() {
        let mut b = TopologyBuilder::new();
        b.declare_tier1(AsId::new(1));
        b.declare_tier1(AsId::new(1));
        b.add_link(AsId::new(1), AsId::new(2), ProviderToCustomer)
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.tier1s().len(), 1);
    }
}
