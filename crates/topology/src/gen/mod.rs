//! Synthetic Internet-scale AS topology generation.
//!
//! The paper drives every experiment from a CAIDA AS-relationship snapshot
//! (42,697 ASes, 139,156 links). That dataset cannot ship with this crate,
//! so this module generates a *calibrated synthetic Internet* with the
//! structural properties the experiments depend on:
//!
//! * a small tier-1 clique (17 at paper scale) of provider-free,
//!   fully-peered backbones;
//! * a band of large tier-2 transit providers multi-homed to the clique;
//! * a power-law transit degree distribution (so degree-threshold cohorts
//!   like "the 62 ASes with degree ≥ 500" exist and are small);
//! * a transit share near 15 % with stub depths reaching 6–7;
//! * regional locality, including one island region (the paper's New
//!   Zealand case study) whose only mainland connectivity runs through a
//!   few gateway providers;
//! * sibling groups, multi-homed stubs and per-AS address-space weights.
//!
//! Generation is fully deterministic given a seed. Anyone holding a real
//! `as-rel` file can bypass this module entirely via
//! [`crate::parser::from_caida_reader`].
//!
//! # Examples
//!
//! ```
//! use bgpsim_topology::gen::{InternetParams, generate};
//!
//! let net = generate(&InternetParams::tiny(), 42);
//! assert!(net.topology.num_ases() >= 250);
//! assert_eq!(net.topology.tier1s().len(), net.tier1_count);
//! ```

mod build;

pub use build::generate;

use crate::region::RegionId;

/// Parameters of the synthetic Internet model.
///
/// Use the presets ([`paper_scale`](InternetParams::paper_scale),
/// [`medium`](InternetParams::medium), [`small`](InternetParams::small),
/// [`tiny`](InternetParams::tiny)) and tweak fields as needed; all counts
/// scale with `num_ases`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InternetParams {
    /// Total number of autonomous systems.
    pub num_ases: usize,
    /// Size of the tier-1 clique.
    pub tier1_count: usize,
    /// Number of large tier-2 providers attached to most of the clique.
    pub tier2_count: usize,
    /// Fraction of ASes that sell transit (CAIDA 2013: ≈ 0.148).
    pub transit_fraction: f64,
    /// Zipf exponent of transit attachment attractiveness (tail heaviness).
    pub zipf_exponent: f64,
    /// Rank offset flattening the head of the Zipf distribution.
    pub zipf_offset: f64,
    /// Probability that a stub is multi-homed (two providers).
    pub stub_multihome_fraction: f64,
    /// Probability that a multi-homed stub takes a third provider.
    pub stub_third_provider_prob: f64,
    /// Fraction of non-tier2 transit ASes arranged into deep chains.
    pub chain_fraction: f64,
    /// Maximum extra chain length below the attachment point.
    pub max_chain_len: usize,
    /// Target ratio of peer links to total links (CAIDA 2013: ≈ 0.35).
    pub peer_link_ratio: f64,
    /// Number of sibling organizations (each gets 2–4 member ASes).
    pub sibling_group_count: usize,
    /// Number of geographic regions (longitude slices).
    pub num_regions: u16,
    /// Optional isolated island region (§VII's New Zealand analogue).
    pub island: Option<IslandParams>,
    /// How many guaranteed "deep ladders" (provider chains with stubs at
    /// every depth) to graft on, so depth exemplars always exist.
    pub ladder_count: usize,
    /// Depth reached by each ladder.
    pub ladder_depth: usize,
    /// Candidate pool size for locality-biased provider sampling.
    pub locality_candidates: usize,
}

/// Parameters of the island region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IslandParams {
    /// Number of ASes in the island (the paper's NZ region has 187).
    pub size: usize,
    /// Number of gateway transit ASes connecting the island to the
    /// mainland.
    pub gateways: usize,
}

impl InternetParams {
    /// Full paper scale: ≈ 42,697 ASes / ≈ 139k links. Generation takes a
    /// few seconds; sweeps over it are example-sized, not test-sized.
    pub fn paper_scale() -> InternetParams {
        InternetParams::sized(42_697)
    }

    /// ≈ 10k ASes: the shape of paper-scale at a tenth of the cost.
    pub fn medium() -> InternetParams {
        InternetParams::sized(10_000)
    }

    /// ≈ 2k ASes: integration-test sized.
    pub fn small() -> InternetParams {
        InternetParams::sized(2_000)
    }

    /// ≈ 300 ASes: unit-test sized.
    pub fn tiny() -> InternetParams {
        InternetParams::sized(300)
    }

    /// A parameter set scaled to `num_ases`, keeping the paper-scale
    /// proportions.
    pub fn sized(num_ases: usize) -> InternetParams {
        let scale = num_ases as f64 / 42_697.0;
        let tier1_count = ((17.0 * scale.sqrt()).round() as usize).clamp(3, 17);
        let tier2_count = ((45.0 * scale.sqrt()).round() as usize).clamp(4, 60);
        let island_size = ((187.0 * scale).round() as usize).max(40);
        InternetParams {
            num_ases,
            tier1_count,
            tier2_count,
            transit_fraction: 0.148,
            zipf_exponent: 0.88,
            zipf_offset: 3.0,
            stub_multihome_fraction: 0.60,
            stub_third_provider_prob: 0.30,
            chain_fraction: 0.16,
            max_chain_len: 3,
            peer_link_ratio: 0.45,
            sibling_group_count: (num_ases / 400).max(1),
            num_regions: 24,
            island: Some(IslandParams {
                size: island_size,
                gateways: 3,
            }),
            ladder_count: 3,
            ladder_depth: 6,
            locality_candidates: 8,
        }
    }
}

impl Default for InternetParams {
    /// Defaults to [`InternetParams::medium`].
    fn default() -> Self {
        InternetParams::medium()
    }
}

/// A generated Internet: the topology plus the ground-truth metadata the
/// experiments need.
#[derive(Debug, Clone)]
pub struct GeneratedInternet {
    /// The relationship graph (tier-1 clique declared).
    pub topology: crate::Topology,
    /// Region of every AS.
    pub regions: crate::region::RegionMap,
    /// Address-space weight of every AS (/24-equivalents).
    pub address_space: crate::AddressSpace,
    /// Number of tier-1 ASes (they occupy dense indices `0..tier1_count`).
    pub tier1_count: usize,
    /// The island region id, when an island was requested.
    pub island_region: Option<RegionId>,
    /// The island's gateway transit ASes.
    pub island_gateways: Vec<crate::AsIndex>,
    /// Longitude in `[0, 1)` of every AS, for polar layouts.
    pub longitude: Vec<f64>,
}
