//! The synthetic-Internet construction algorithm.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::gen::{GeneratedInternet, InternetParams};
use crate::region::{RegionId, RegionMap};
use crate::{AddressSpace, AsId, AsIndex, LinkKind, TopologyBuilder};

/// Node roles planned before any link is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Tier1,
    Tier2,
    Transit,
    Stub,
    IslandGateway,
    IslandTransit,
    IslandStub,
    LadderTransit,
    LadderStub,
}

/// Weighted sampler over transit ASes with a locality re-ranking step.
struct TransitSampler {
    /// Cumulative weights aligned with `items`.
    cum: Vec<f64>,
    items: Vec<u32>,
}

impl TransitSampler {
    fn new(items: Vec<u32>, weights: &[f64]) -> TransitSampler {
        let mut cum = Vec::with_capacity(items.len());
        let mut acc = 0.0;
        for &i in &items {
            acc += weights[i as usize];
            cum.push(acc);
        }
        TransitSampler { cum, items }
    }

    fn total(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// One weighted draw.
    fn sample(&self, rng: &mut StdRng) -> u32 {
        let t = rng.random_range(0.0..self.total());
        let pos = self.cum.partition_point(|&c| c <= t);
        self.items[pos.min(self.items.len() - 1)]
    }

    /// Draws `k` candidates and keeps the one closest (in circular
    /// longitude) to `theta`. Returns `u32::MAX` if the sampler is empty.
    fn sample_local(&self, rng: &mut StdRng, theta: f64, longitude: &[f64], k: usize) -> u32 {
        if self.items.is_empty() || self.total() <= 0.0 {
            return u32::MAX;
        }
        let mut best = u32::MAX;
        let mut best_d = f64::INFINITY;
        for _ in 0..k.max(1) {
            let c = self.sample(rng);
            let d = circ_dist(theta, longitude[c as usize]);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }
}

fn circ_dist(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// Generates a synthetic Internet. Deterministic for a given `(params,
/// seed)` pair.
///
/// # Panics
///
/// Panics if the parameters are degenerate (e.g. `num_ases` too small to
/// hold the tier-1 clique, island and ladders). The presets are always
/// valid.
pub fn generate(params: &InternetParams, seed: u64) -> GeneratedInternet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.num_ases;
    let t1 = params.tier1_count;
    let t2 = params.tier2_count;

    // ---- Plan the index layout -------------------------------------------------
    let (island_size, island_gw) = match params.island {
        Some(p) => (p.size, p.gateways.max(1).min(p.size)),
        None => (0, 0),
    };
    // Per ladder: a transit chain of (depth-1) plus two stubs per depth level.
    let ladder_chain = params.ladder_depth.saturating_sub(1);
    let ladder_block = ladder_chain + 2 * params.ladder_depth;
    let ladder_total = params.ladder_count * ladder_block;
    let mainland = n
        .checked_sub(island_size + ladder_total)
        .expect("num_ases too small for island + ladders");
    assert!(
        mainland > t1 + t2 + 8,
        "num_ases too small for the requested tier counts"
    );
    let transit_target = ((n as f64) * params.transit_fraction).round() as usize;
    let island_transit = if island_size > 0 {
        ((island_size as f64) * 0.10).round() as usize + island_gw
    } else {
        0
    };
    let mainland_other_transit = transit_target
        .saturating_sub(t1 + t2 + island_transit + params.ladder_count * ladder_chain)
        .clamp(4, mainland - t1 - t2 - 4);

    // Index ranges (dense indices are assigned in this order).
    let r_tier1 = 0..t1;
    let r_tier2 = t1..t1 + t2;
    let r_transit = t1 + t2..t1 + t2 + mainland_other_transit;
    let r_stub = r_transit.end..mainland;
    let r_ladder = mainland..mainland + ladder_total;
    let r_island = r_ladder.end..n;
    debug_assert_eq!(r_island.end, n);

    let mut role = vec![Role::Stub; n];
    for i in r_tier1.clone() {
        role[i] = Role::Tier1;
    }
    for i in r_tier2.clone() {
        role[i] = Role::Tier2;
    }
    for i in r_transit.clone() {
        role[i] = Role::Transit;
    }
    for i in r_ladder.clone() {
        role[i] = Role::LadderStub; // refined below
    }
    for i in r_island.clone() {
        role[i] = Role::IslandStub; // refined below
    }

    // ---- Longitude and regions -------------------------------------------------
    // The island occupies a dedicated narrow slice and a dedicated region id.
    let island_region = if island_size > 0 {
        Some(RegionId(params.num_regions))
    } else {
        None
    };
    let island_theta = 0.5; // center of the island slice
    let mut longitude = vec![0.0f64; n];
    let mut region = vec![RegionId(0); n];
    for i in 0..n {
        if r_island.contains(&i) {
            longitude[i] = island_theta + rng.random_range(-0.01..0.01);
            region[i] = island_region.expect("island indices imply island");
        } else {
            longitude[i] = rng.random_range(0.0..1.0);
            region[i] = RegionId((longitude[i] * params.num_regions as f64) as u16);
        }
    }
    // Tier-1s are spread evenly so every region has a nearby backbone.
    for (k, i) in r_tier1.clone().enumerate() {
        longitude[i] = k as f64 / t1 as f64;
        region[i] = RegionId((longitude[i] * params.num_regions as f64) as u16);
    }

    // ---- Attachment attractiveness (Zipf over mainland transits) ---------------
    let mut weight = vec![0.0f64; n];
    let mainland_transits: Vec<u32> = r_tier1
        .clone()
        .chain(r_tier2.clone())
        .chain(r_transit.clone())
        .map(|i| i as u32)
        .collect();
    for (rank, &i) in mainland_transits.iter().enumerate() {
        weight[i as usize] =
            1.0 / ((rank as f64 + 1.0 + params.zipf_offset).powf(params.zipf_exponent));
    }

    let mut builder = TopologyBuilder::with_capacity(n, n * 4);
    for i in 0..n {
        builder.add_as(AsId::new(i as u32 + 1));
    }
    for i in r_tier1.clone() {
        builder.declare_tier1(AsId::new(i as u32 + 1));
    }
    let link = |builder: &mut TopologyBuilder, a: usize, b: usize, kind: LinkKind| -> bool {
        let (a, b) = (AsId::new(a as u32 + 1), AsId::new(b as u32 + 1));
        if a == b || builder.has_link(a, b) {
            return false;
        }
        builder.add_link(a, b, kind).expect("checked link");
        true
    };

    // ---- Tier-1 clique ----------------------------------------------------------
    for i in r_tier1.clone() {
        for j in i + 1..t1 {
            link(&mut builder, i, j, LinkKind::PeerToPeer);
        }
    }

    // ---- Tier-2 multi-homing to the clique --------------------------------------
    for i in r_tier2.clone() {
        let homes = rng.random_range(2..=5.min(t1));
        let mut picked = Vec::new();
        while picked.len() < homes {
            let p = rng.random_range(0..t1);
            if !picked.contains(&p) {
                picked.push(p);
                link(&mut builder, p, i, LinkKind::ProviderToCustomer);
            }
        }
    }

    // ---- Other mainland transit: preferential attachment + chains ---------------
    // Only lower-index transits are candidate providers, so p2c stays acyclic.
    let sampler_all = TransitSampler::new(mainland_transits.clone(), &weight);
    let mut chain_prev: Option<usize> = None;
    let mut chain_left = 0usize;
    for i in r_transit.clone() {
        if chain_left > 0 {
            // Continue an existing chain: single provider, the previous link.
            let prev = chain_prev.expect("chain in progress");
            link(&mut builder, prev, i, LinkKind::ProviderToCustomer);
            chain_prev = Some(i);
            chain_left -= 1;
            continue;
        }
        if rng.random_bool(params.chain_fraction) && params.max_chain_len >= 2 {
            chain_left = rng.random_range(1..params.max_chain_len);
            chain_prev = Some(i);
        }
        let nproviders =
            1 + usize::from(rng.random_bool(0.45)) + usize::from(rng.random_bool(0.15));
        let mut got = 0;
        let mut attempts = 0;
        while got < nproviders && attempts < 64 {
            attempts += 1;
            let p = sampler_all.sample_local(
                &mut rng,
                longitude[i],
                &longitude,
                params.locality_candidates,
            ) as usize;
            if p >= i {
                continue; // keep the provider DAG acyclic
            }
            if link(&mut builder, p, i, LinkKind::ProviderToCustomer) {
                got += 1;
            }
        }
        if got == 0 {
            // Guarantee connectivity: fall back to a random tier-1.
            let p = rng.random_range(0..t1);
            link(&mut builder, p, i, LinkKind::ProviderToCustomer);
        }
    }

    // ---- Mainland stubs ----------------------------------------------------------
    for i in r_stub.clone() {
        let mut nproviders = 1;
        if rng.random_bool(params.stub_multihome_fraction) {
            nproviders = 2;
            if rng.random_bool(params.stub_third_provider_prob) {
                nproviders = 3;
            }
        }
        let mut got = 0;
        let mut attempts = 0;
        while got < nproviders && attempts < 64 {
            attempts += 1;
            let p = sampler_all.sample_local(
                &mut rng,
                longitude[i],
                &longitude,
                params.locality_candidates,
            ) as usize;
            if link(&mut builder, p, i, LinkKind::ProviderToCustomer) {
                got += 1;
            }
        }
        if got == 0 {
            let p = rng.random_range(0..t1);
            link(&mut builder, p, i, LinkKind::ProviderToCustomer);
        }
    }

    // ---- Ladders: guaranteed depth exemplars -------------------------------------
    // Each ladder hangs a transit chain off a tier-1 and attaches one
    // single-homed and one multi-homed stub at every depth 1..=ladder_depth.
    // Multi-homed ladder stubs take their second provider from the *next*
    // ladder at the same level, preserving their depth.
    let mut ladder_transits: Vec<Vec<usize>> = Vec::with_capacity(params.ladder_count);
    {
        let mut cursor = r_ladder.start;
        for l in 0..params.ladder_count {
            let anchor = l % t1.max(1);
            let chain = Vec::with_capacity(ladder_chain);
            let mut prev = anchor;
            for _ in 0..ladder_chain {
                let c = cursor;
                cursor += 1;
                role[c] = Role::LadderTransit;
                link(&mut builder, prev, c, LinkKind::ProviderToCustomer);
                prev = c;
            }
            ladder_transits.push(chain.clone());
            ladder_transits[l] = {
                let start = cursor - ladder_chain;
                (start..cursor).collect()
            };
            // Stub indices for this ladder follow its chain.
            cursor += 2 * params.ladder_depth;
        }
        // Second pass: attach stubs now that every chain exists.
        let mut cursor = r_ladder.start;
        for l in 0..params.ladder_count {
            let anchor = l % t1.max(1);
            cursor += ladder_chain;
            let provider_at = |level: usize, ladder: &Vec<usize>| -> usize {
                if level == 0 {
                    anchor
                } else {
                    ladder[level - 1]
                }
            };
            for level in 0..params.ladder_depth {
                let single = cursor;
                let multi = cursor + 1;
                cursor += 2;
                role[single] = Role::LadderStub;
                role[multi] = Role::LadderStub;
                let p = provider_at(level, &ladder_transits[l]);
                link(&mut builder, p, single, LinkKind::ProviderToCustomer);
                link(&mut builder, p, multi, LinkKind::ProviderToCustomer);
                // Second home at the same depth, from the next ladder (or a
                // second tier-1 for level 0).
                if params.ladder_count > 1 {
                    let other = (l + 1) % params.ladder_count;
                    let p2 = if level == 0 {
                        let alt = other % t1.max(1);
                        if alt != anchor {
                            alt
                        } else {
                            (anchor + 1) % t1.max(1)
                        }
                    } else {
                        ladder_transits[other][level - 1]
                    };
                    link(&mut builder, p2, multi, LinkKind::ProviderToCustomer);
                } else if t1 > 1 {
                    link(
                        &mut builder,
                        (anchor + 1) % t1,
                        multi,
                        LinkKind::ProviderToCustomer,
                    );
                }
            }
        }
        debug_assert_eq!(cursor, r_ladder.end);
    }

    // ---- Island region -------------------------------------------------------------
    let mut island_gateways: Vec<AsIndex> = Vec::new();
    if island_size > 0 {
        let gw_range = r_island.start..r_island.start + island_gw;
        let it_count = island_transit - island_gw;
        let it_range = gw_range.end..gw_range.end + it_count;
        let is_range = it_range.end..n;
        // Gateways buy mainland transit (from tier-2s) and peer together.
        for g in gw_range.clone() {
            role[g] = Role::IslandGateway;
            island_gateways.push(AsIndex::new(g as u32));
            let homes = rng.random_range(1..=2usize);
            for _ in 0..homes {
                let p = t1 + rng.random_range(0..t2);
                link(&mut builder, p, g, LinkKind::ProviderToCustomer);
            }
        }
        for a in gw_range.clone() {
            for b in a + 1..gw_range.end {
                link(&mut builder, a, b, LinkKind::PeerToPeer);
            }
        }
        // Island transits: the first gateway acts as the region's dominant
        // hub (the paper's VOCUS analogue) — most transits buy from it —
        // while a chain bias keeps real depth (§VII's target sits at
        // depth 5).
        let hub = gw_range.start;
        let mut prev_it: Option<usize> = None;
        for (k, i) in it_range.clone().enumerate() {
            role[i] = Role::IslandTransit;
            let deep = prev_it.is_some() && rng.random_bool(0.55);
            let p = if deep {
                prev_it.expect("deep implies previous transit")
            } else if k == 0 || rng.random_bool(0.75) {
                hub
            } else {
                gw_range.start + rng.random_range(0..island_gw)
            };
            link(&mut builder, p, i, LinkKind::ProviderToCustomer);
            // Occasional second home to the hub keeps it dominant.
            if rng.random_bool(0.25) {
                link(&mut builder, hub, i, LinkKind::ProviderToCustomer);
            }
            // A few island transits buy mainland transit directly (the
            // paper's NZ has members homed to Australian providers).
            if rng.random_bool(0.15) {
                let p = sampler_all.sample(&mut rng) as usize;
                link(&mut builder, p, i, LinkKind::ProviderToCustomer);
            }
            prev_it = Some(i);
        }
        // Island stubs attach to island transits (or gateways when there
        // are no inner transits); a fraction leak to mainland providers,
        // matching regions whose members multi-home abroad.
        for i in is_range.clone() {
            role[i] = Role::IslandStub;
            let pool_start = if it_count > 0 {
                it_range.start
            } else {
                gw_range.start
            };
            let pool_len = if it_count > 0 { it_count } else { island_gw };
            let homes = 1 + usize::from(rng.random_bool(0.4));
            let mut got = 0;
            let mut attempts = 0;
            while got < homes && attempts < 32 {
                attempts += 1;
                let p = pool_start + rng.random_range(0..pool_len);
                if link(&mut builder, p, i, LinkKind::ProviderToCustomer) {
                    got += 1;
                }
            }
            if rng.random_bool(0.18) {
                let p = sampler_all.sample(&mut rng) as usize;
                link(&mut builder, p, i, LinkKind::ProviderToCustomer);
            }
        }
    }

    // ---- Peer links ------------------------------------------------------------------
    let p2c_so_far = builder.num_links();
    let ratio = params.peer_link_ratio.clamp(0.0, 0.8);
    let peer_target = ((p2c_so_far as f64) * ratio / (1.0 - ratio)) as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    let stub_lo = r_stub.start;
    let stub_len = r_stub.len();
    while added < peer_target && attempts < peer_target * 20 + 100 {
        attempts += 1;
        let a = sampler_all.sample(&mut rng) as usize;
        let b = if stub_len > 0 && rng.random_bool(0.15) {
            // Content-network style peering: a transit peers with a stub.
            stub_lo + rng.random_range(0..stub_len)
        } else {
            sampler_all.sample_local(
                &mut rng,
                longitude[a],
                &longitude,
                params.locality_candidates,
            ) as usize
        };
        if a == b {
            continue;
        }
        if link(&mut builder, a, b, LinkKind::PeerToPeer) {
            added += 1;
        }
    }

    // ---- Sibling groups -----------------------------------------------------------
    let mut formed = 0usize;
    let mut attempts = 0usize;
    while formed < params.sibling_group_count && attempts < params.sibling_group_count * 30 + 30 {
        attempts += 1;
        if stub_len < 8 {
            break;
        }
        let a = stub_lo + rng.random_range(0..stub_len);
        let size = rng.random_range(2..=4usize);
        let mut members = vec![a];
        let mut tries = 0;
        while members.len() < size && tries < 24 {
            tries += 1;
            let b = stub_lo + rng.random_range(0..stub_len);
            if region[b] == region[a] && !members.contains(&b) {
                members.push(b);
            }
        }
        if members.len() >= 2 {
            let mut ok = true;
            for w in members.windows(2) {
                ok &= link(&mut builder, w[0], w[1], LinkKind::SiblingToSibling);
            }
            if ok {
                formed += 1;
            }
        }
    }

    // ---- Freeze and derive metadata -------------------------------------------------
    let topology = builder.build().expect("generator topologies are non-empty");
    let regions = RegionMap::from_labels(&topology, region);
    let mut space = vec![0u64; n];
    for ix in topology.indices() {
        let i = ix.usize();
        let deg = topology.degree(ix) as f64;
        space[i] = match role[i] {
            Role::Tier1 => 256 + (deg.powf(1.1) * 4.0) as u64,
            Role::Tier2 | Role::IslandGateway => 64 + (deg.powf(1.1) * 2.0) as u64,
            Role::Transit | Role::IslandTransit | Role::LadderTransit => {
                8 + (deg.powf(1.05)) as u64
            }
            Role::Stub | Role::IslandStub | Role::LadderStub => {
                // Mostly tiny originators with a skewed tail.
                let r: f64 = rng.random_range(0.0..1.0);
                1 + (16.0 * r.powi(4)) as u64
            }
        };
    }
    let address_space = AddressSpace::from_weights(&topology, space);
    GeneratedInternet {
        topology,
        regions,
        address_space,
        tier1_count: t1,
        island_region,
        island_gateways,
        longitude,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ClassifyConfig};
    use crate::metrics::DepthMap;

    #[test]
    fn tiny_generation_is_deterministic() {
        let p = InternetParams::tiny();
        let a = generate(&p, 7);
        let b = generate(&p, 7);
        assert_eq!(a.topology.num_ases(), b.topology.num_ases());
        assert_eq!(a.topology.num_links(), b.topology.num_links());
        for ix in a.topology.indices() {
            assert_eq!(a.topology.neighbors(ix), b.topology.neighbors(ix));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = InternetParams::tiny();
        let a = generate(&p, 1);
        let b = generate(&p, 2);
        let same = a
            .topology
            .indices()
            .all(|ix| a.topology.neighbors(ix) == b.topology.neighbors(ix));
        assert!(!same, "distinct seeds should yield distinct graphs");
    }

    #[test]
    fn tier1_clique_is_complete_and_provider_free() {
        let net = generate(&InternetParams::tiny(), 3);
        let t = &net.topology;
        let t1s = t.tier1s();
        assert_eq!(t1s.len(), net.tier1_count);
        for &a in &t1s {
            assert_eq!(t.num_providers(a), 0, "tier-1 {a} must not buy transit");
            for &b in &t1s {
                if a != b {
                    assert!(t.peers(a).any(|p| p == b), "tier-1s {a} and {b} must peer");
                }
            }
        }
    }

    #[test]
    fn everyone_reaches_tier1_via_providers() {
        let net = generate(&InternetParams::tiny(), 11);
        let d = DepthMap::to_tier1(&net.topology);
        assert_eq!(d.num_unreachable(), 0, "all ASes need a provider chain up");
    }

    #[test]
    fn depth_exemplars_exist_up_to_ladder_depth() {
        let p = InternetParams::tiny();
        let net = generate(&p, 5);
        let d = DepthMap::to_tier1(&net.topology);
        let hist = d.histogram();
        for depth in 1..=p.ladder_depth {
            assert!(
                hist.get(depth).copied().unwrap_or(0) > 0,
                "no AS at depth {depth}; histogram {hist:?}"
            );
        }
    }

    #[test]
    fn transit_share_is_near_target() {
        let p = InternetParams::small();
        let net = generate(&p, 9);
        let share = net.topology.transit_ases().len() as f64 / net.topology.num_ases() as f64;
        assert!(
            (0.08..=0.30).contains(&share),
            "transit share {share} out of range"
        );
    }

    #[test]
    fn island_is_mostly_isolated_behind_gateways() {
        let p = InternetParams::small();
        let net = generate(&p, 13);
        let t = &net.topology;
        let island = net.island_region.expect("preset has an island");
        let members = net.regions.members(island);
        assert!(members.len() >= 12);
        // Non-gateway members connect to the mainland only by *buying
        // transit* there (the leakage fraction); most have island-only
        // neighborhoods, and nobody sells transit or peers across the
        // boundary except the gateways.
        let gw: std::collections::HashSet<_> = net.island_gateways.iter().copied().collect();
        let mut fully_internal = 0usize;
        for &m in members {
            if gw.contains(&m) {
                continue;
            }
            let mut internal = true;
            for nb in t.neighbors(m) {
                if net.regions.region_of(nb.index) != island {
                    internal = false;
                    assert_eq!(
                        nb.rel,
                        crate::Relationship::Provider,
                        "island AS {m} has a non-provider mainland link"
                    );
                }
            }
            fully_internal += usize::from(internal);
        }
        let non_gateway = members.len() - gw.len();
        assert!(
            fully_internal as f64 >= 0.6 * non_gateway as f64,
            "too much leakage: {fully_internal}/{non_gateway} internal"
        );
        // Gateways do connect to the mainland.
        assert!(net
            .island_gateways
            .iter()
            .any(|&g| { t.providers(g).any(|p| net.regions.region_of(p) != island) }));
        // The hub (first gateway) dominates: it has the most island
        // customers among the gateways.
        let hub = net.island_gateways[0];
        let island_customers = |g: crate::AsIndex| {
            t.customers(g)
                .filter(|&c| net.regions.region_of(c) == island)
                .count()
        };
        for &g in &net.island_gateways[1..] {
            assert!(island_customers(hub) >= island_customers(g));
        }
    }

    #[test]
    fn degree_cohorts_are_monotone_and_small() {
        let net = generate(&InternetParams::small(), 17);
        let t = &net.topology;
        let count_at_least = |k: usize| t.indices().filter(|&ix| t.degree(ix) >= k).count();
        let c50 = count_at_least(50);
        let c25 = count_at_least(25);
        let c10 = count_at_least(10);
        assert!(c50 <= c25 && c25 <= c10);
        assert!(c10 < t.num_ases() / 6, "degree tail too fat: {c10}");
        assert!(c50 >= 1, "no high-degree cores generated");
    }

    #[test]
    fn classification_finds_tier2s() {
        let net = generate(&InternetParams::small(), 21);
        let c = classify(
            &net.topology,
            &ClassifyConfig {
                tier2_min_degree: 10,
                tier2_min_tier1_adjacencies: 2,
            },
        );
        assert!(c.count(crate::classify::TierClass::Tier2) > 0);
    }

    #[test]
    fn address_space_favors_the_core() {
        let net = generate(&InternetParams::tiny(), 23);
        let t1 = net.topology.tier1s()[0];
        let some_stub = net.topology.stub_ases()[0];
        assert!(net.address_space.weight(t1) > net.address_space.weight(some_stub));
        assert!(net.address_space.total() > 0);
    }

    #[test]
    fn no_island_when_disabled() {
        let mut p = InternetParams::tiny();
        p.island = None;
        let net = generate(&p, 3);
        assert!(net.island_region.is_none());
        assert!(net.island_gateways.is_empty());
        assert_eq!(net.regions.num_regions() as u16, {
            // all regions are longitude slices
            let mut ids = net.regions.region_ids();
            ids.retain(|r| r.0 >= p.num_regions);
            assert!(ids.is_empty());
            net.regions.num_regions() as u16
        });
    }

    #[test]
    fn longitudes_and_regions_are_consistent() {
        let p = InternetParams::tiny();
        let net = generate(&p, 8);
        assert_eq!(net.longitude.len(), net.topology.num_ases());
        for ix in net.topology.indices() {
            let theta = net.longitude[ix.usize()];
            assert!(
                (-0.02..1.02).contains(&theta),
                "longitude {theta} out of band"
            );
            let region = net.regions.region_of(ix);
            if Some(region) == net.island_region {
                continue; // island has a dedicated id beyond the slices
            }
            assert!(
                region.0 < p.num_regions,
                "mainland region {region} out of range"
            );
        }
        // Region membership lists partition the AS set.
        let total: usize = net
            .regions
            .region_ids()
            .iter()
            .map(|&r| net.regions.members(r).len())
            .sum();
        assert_eq!(total, net.topology.num_ases());
    }

    #[test]
    fn address_space_total_is_positive_and_stable() {
        let p = InternetParams::tiny();
        let a = generate(&p, 12);
        let b = generate(&p, 12);
        assert_eq!(a.address_space.total(), b.address_space.total());
        assert!(a.address_space.total() > a.topology.num_ases() as u64);
    }

    #[test]
    fn sibling_groups_are_formed() {
        let mut p = InternetParams::small();
        p.sibling_group_count = 5;
        let net = generate(&p, 31);
        assert!(net.topology.num_s2s_links() >= 5);
        assert!(net.topology.num_sibling_groups() < net.topology.num_ases());
    }
}
