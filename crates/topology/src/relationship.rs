//! Business relationships between neighboring autonomous systems.
//!
//! The AS-level Internet is modeled, following Gao, as a graph whose edges
//! carry one of three business relationships: *provider/customer* (transit is
//! bought), *peer/peer* (traffic is exchanged settlement-free) and
//! *sibling/sibling* (both ASes belong to one organization). Routing policy —
//! both route preference and export rules — is a function of these labels.

use core::fmt;

/// The role a neighbor plays *from the perspective of a given AS*.
///
/// If AS `a`'s neighbor list contains `(b, Relationship::Customer)`, then `b`
/// is a customer of `a` (equivalently `a` is a provider of `b`).
///
/// # Examples
///
/// ```
/// use bgpsim_topology::Relationship;
///
/// assert_eq!(Relationship::Customer.reversed(), Relationship::Provider);
/// assert_eq!(Relationship::Peer.reversed(), Relationship::Peer);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Relationship {
    /// The neighbor buys transit from this AS.
    Customer,
    /// The neighbor exchanges traffic settlement-free with this AS.
    Peer,
    /// The neighbor sells transit to this AS.
    Provider,
    /// The neighbor belongs to the same organization as this AS.
    Sibling,
}

impl Relationship {
    /// All relationship values, in the canonical storage order
    /// (customers, then peers, then providers, then siblings).
    pub const ALL: [Relationship; 4] = [
        Relationship::Customer,
        Relationship::Peer,
        Relationship::Provider,
        Relationship::Sibling,
    ];

    /// Returns the same link seen from the other endpoint.
    #[must_use]
    pub const fn reversed(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::Sibling => Relationship::Sibling,
        }
    }

    /// Canonical sort key used to order neighbor lists deterministically.
    pub(crate) const fn order(self) -> u8 {
        match self {
            Relationship::Customer => 0,
            Relationship::Peer => 1,
            Relationship::Provider => 2,
            Relationship::Sibling => 3,
        }
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relationship::Customer => "customer",
            Relationship::Peer => "peer",
            Relationship::Provider => "provider",
            Relationship::Sibling => "sibling",
        };
        f.write_str(s)
    }
}

/// An undirected link kind, used when *adding* links to a
/// [`TopologyBuilder`]: the pair `(a, b)` plus the kind fully determines the
/// relationship seen from both endpoints.
///
/// [`TopologyBuilder`]: crate::TopologyBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LinkKind {
    /// `a` is the provider, `b` is the customer.
    ProviderToCustomer,
    /// `a` and `b` are settlement-free peers.
    PeerToPeer,
    /// `a` and `b` are siblings in one organization.
    SiblingToSibling,
}

impl LinkKind {
    /// Relationship of `b` from `a`'s perspective.
    #[must_use]
    pub const fn rel_at_a(self) -> Relationship {
        match self {
            LinkKind::ProviderToCustomer => Relationship::Customer,
            LinkKind::PeerToPeer => Relationship::Peer,
            LinkKind::SiblingToSibling => Relationship::Sibling,
        }
    }

    /// Relationship of `a` from `b`'s perspective.
    #[must_use]
    pub const fn rel_at_b(self) -> Relationship {
        self.rel_at_a().reversed()
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::ProviderToCustomer => "p2c",
            LinkKind::PeerToPeer => "p2p",
            LinkKind::SiblingToSibling => "s2s",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_is_involutive() {
        for r in Relationship::ALL {
            assert_eq!(r.reversed().reversed(), r);
        }
    }

    #[test]
    fn link_kind_endpoint_views_are_consistent() {
        assert_eq!(
            LinkKind::ProviderToCustomer.rel_at_a(),
            Relationship::Customer
        );
        assert_eq!(
            LinkKind::ProviderToCustomer.rel_at_b(),
            Relationship::Provider
        );
        assert_eq!(LinkKind::PeerToPeer.rel_at_a(), Relationship::Peer);
        assert_eq!(LinkKind::PeerToPeer.rel_at_b(), Relationship::Peer);
        assert_eq!(LinkKind::SiblingToSibling.rel_at_a(), Relationship::Sibling);
        assert_eq!(LinkKind::SiblingToSibling.rel_at_b(), Relationship::Sibling);
    }

    #[test]
    fn storage_order_is_total_and_stable() {
        let mut seen = [false; 4];
        for r in Relationship::ALL {
            let o = r.order() as usize;
            assert!(!seen[o], "duplicate order {o}");
            seen[o] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn displays() {
        assert_eq!(Relationship::Customer.to_string(), "customer");
        assert_eq!(LinkKind::PeerToPeer.to_string(), "p2p");
    }
}
