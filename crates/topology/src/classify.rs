//! Tier classification of autonomous systems.
//!
//! The paper distinguishes tier-1 ASes (the ~17-member provider-free
//! clique), "large tier-2" providers (§IV re-defines depth relative to
//! these), other transit ASes, and stubs.

use crate::metrics::DepthMap;
use crate::{AsIndex, Topology};

/// Coarse tier of an AS in the provider hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TierClass {
    /// Member of the provider-free top clique.
    Tier1,
    /// Large transit provider directly below the tier-1s.
    Tier2,
    /// Any other AS selling transit.
    OtherTransit,
    /// An AS with no customers.
    Stub,
}

/// Tunables for [`classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyConfig {
    /// Minimum total degree for an AS to qualify as tier-2.
    pub tier2_min_degree: usize,
    /// Minimum number of distinct tier-1 providers or peers for an AS to
    /// qualify as tier-2.
    pub tier2_min_tier1_adjacencies: usize,
}

impl Default for ClassifyConfig {
    /// Defaults tuned so that, at the paper's scale, the tier-2 set is "the
    /// large tier-2 providers": degree ≥ 50 and at least two tier-1
    /// adjacencies.
    fn default() -> Self {
        ClassifyConfig {
            tier2_min_degree: 50,
            tier2_min_tier1_adjacencies: 2,
        }
    }
}

/// Per-AS tier labels for a topology.
#[derive(Debug, Clone)]
pub struct Classification {
    classes: Vec<TierClass>,
}

impl Classification {
    /// The tier of `ix`.
    pub fn class(&self, ix: AsIndex) -> TierClass {
        self.classes[ix.usize()]
    }

    /// All ASes with the given tier, in index order.
    pub fn of_class(&self, class: TierClass) -> Vec<AsIndex> {
        self.classes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(i, _)| AsIndex::new(i as u32))
            .collect()
    }

    /// Count of ASes with the given tier.
    pub fn count(&self, class: TierClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// The raw label slice, indexed by dense AS index.
    pub fn as_slice(&self) -> &[TierClass] {
        &self.classes
    }

    /// Seed set for the paper's re-defined depth metric: tier-1 ∪ tier-2.
    pub fn depth_seeds(&self) -> Vec<AsIndex> {
        self.classes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| matches!(c, TierClass::Tier1 | TierClass::Tier2))
            .map(|(i, _)| AsIndex::new(i as u32))
            .collect()
    }
}

/// Classifies every AS.
///
/// Tier-1 membership comes from [`Topology::tier1s`] (declared metadata when
/// available, structural heuristic otherwise). Tier-2 is heuristic: a
/// transit AS, not tier-1, adjacent (as customer or peer) to at least
/// `tier2_min_tier1_adjacencies` tier-1s with total degree at least
/// `tier2_min_degree`.
pub fn classify(topo: &Topology, config: &ClassifyConfig) -> Classification {
    let n = topo.num_ases();
    let mut classes = vec![TierClass::Stub; n];
    let mut is_tier1 = vec![false; n];
    for t in topo.tier1s() {
        is_tier1[t.usize()] = true;
        classes[t.usize()] = TierClass::Tier1;
    }
    for ix in topo.indices() {
        if is_tier1[ix.usize()] {
            continue;
        }
        if topo.is_stub(ix) {
            classes[ix.usize()] = TierClass::Stub;
            continue;
        }
        let tier1_adj = topo
            .providers(ix)
            .chain(topo.peers(ix))
            .filter(|p| is_tier1[p.usize()])
            .count();
        classes[ix.usize()] = if topo.degree(ix) >= config.tier2_min_degree
            && tier1_adj >= config.tier2_min_tier1_adjacencies
        {
            TierClass::Tier2
        } else {
            TierClass::OtherTransit
        };
    }
    Classification { classes }
}

/// Computes the paper's re-defined depth: hops to the nearest tier-1 *or*
/// tier-2 AS (§IV, after figure 3).
pub fn effective_depth(topo: &Topology, classification: &Classification) -> DepthMap {
    DepthMap::compute(topo, classification.depth_seeds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    /// Two tier-1s, one fat tier-2 (degree boosted by stub customers), one
    /// small transit, several stubs.
    fn sample() -> Topology {
        let mut triples = vec![
            (1, 2, PeerToPeer),
            (1, 10, ProviderToCustomer),
            (2, 10, ProviderToCustomer),
            (1, 20, ProviderToCustomer),
            (20, 21, ProviderToCustomer),
        ];
        for stub in 100..160 {
            triples.push((10, stub, ProviderToCustomer));
        }
        topology_from_triples(&triples)
    }

    #[test]
    fn classifies_all_four_tiers() {
        let topo = sample();
        let c = classify(&topo, &ClassifyConfig::default());
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        assert_eq!(c.class(ix(1)), TierClass::Tier1);
        assert_eq!(c.class(ix(2)), TierClass::Tier1);
        assert_eq!(c.class(ix(10)), TierClass::Tier2);
        assert_eq!(c.class(ix(20)), TierClass::OtherTransit);
        assert_eq!(c.class(ix(21)), TierClass::Stub);
        assert_eq!(c.class(ix(150)), TierClass::Stub);
    }

    #[test]
    fn counts_and_of_class_agree() {
        let topo = sample();
        let c = classify(&topo, &ClassifyConfig::default());
        for class in [
            TierClass::Tier1,
            TierClass::Tier2,
            TierClass::OtherTransit,
            TierClass::Stub,
        ] {
            assert_eq!(c.count(class), c.of_class(class).len());
        }
        let total: usize = [
            TierClass::Tier1,
            TierClass::Tier2,
            TierClass::OtherTransit,
            TierClass::Stub,
        ]
        .iter()
        .map(|&cl| c.count(cl))
        .sum();
        assert_eq!(total, topo.num_ases());
    }

    #[test]
    fn effective_depth_treats_tier2_as_depth_zero() {
        let topo = sample();
        let c = classify(&topo, &ClassifyConfig::default());
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = effective_depth(&topo, &c);
        // Stub under the fat tier-2 is depth 1, not 2.
        assert_eq!(d.depth(ix(150)), Some(1));
        assert_eq!(d.depth(ix(10)), Some(0));
        // Stub under the small transit is still depth 2.
        assert_eq!(d.depth(ix(21)), Some(2));
    }

    #[test]
    fn single_homed_small_transit_is_not_tier2() {
        let topo = sample();
        let c = classify(
            &topo,
            &ClassifyConfig {
                tier2_min_degree: 2,
                tier2_min_tier1_adjacencies: 2,
            },
        );
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        // AS20 has only one tier-1 adjacency.
        assert_eq!(c.class(ix(20)), TierClass::OtherTransit);
    }
}
