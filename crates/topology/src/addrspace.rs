//! Per-AS address-space weights.
//!
//! Figure 1 of the paper reports that a single attack left "96% of the IP
//! address space" unable to reach the target: pollution is weighted by how
//! much address space each polluted AS originates, not just counted. This
//! module carries those weights (in /24-equivalents, the finest unit that
//! commonly appears in the global table).

use crate::{AsIndex, Topology};

/// Address space originated by each AS, in /24-equivalent units.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AddressSpace, LinkKind::*};
///
/// let topo = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
/// let space = AddressSpace::uniform(&topo, 4);
/// assert_eq!(space.total(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AddressSpace {
    weights: Vec<u64>,
    total: u64,
}

impl AddressSpace {
    /// Builds an address-space map from explicit per-AS weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != topo.num_ases()`.
    pub fn from_weights(topo: &Topology, weights: Vec<u64>) -> AddressSpace {
        assert_eq!(weights.len(), topo.num_ases(), "one weight per AS required");
        let total = weights.iter().sum();
        AddressSpace { weights, total }
    }

    /// Gives every AS the same weight.
    pub fn uniform(topo: &Topology, weight: u64) -> AddressSpace {
        AddressSpace {
            weights: vec![weight; topo.num_ases()],
            total: weight * topo.num_ases() as u64,
        }
    }

    /// Weight of a single AS.
    pub fn weight(&self, ix: AsIndex) -> u64 {
        self.weights[ix.usize()]
    }

    /// Total address space across all ASes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of total address space held by the given set.
    ///
    /// Returns 0.0 for an empty universe.
    pub fn fraction_of<I>(&self, ases: I) -> f64
    where
        I: IntoIterator<Item = AsIndex>,
    {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = ases.into_iter().map(|ix| self.weight(ix)).sum();
        sum as f64 / self.total as f64
    }

    /// The raw weight slice, indexed by dense AS index.
    pub fn as_slice(&self) -> &[u64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    fn fraction_of_subset() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (1, 3, PeerToPeer)]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let space = AddressSpace::from_weights(&topo, vec![6, 3, 1]);
        assert_eq!(space.total(), 10);
        assert!((space.fraction_of([ix(2), ix(3)]) - 0.4).abs() < 1e-12);
        assert_eq!(space.weight(ix(1)), 6);
    }

    #[test]
    #[should_panic(expected = "one weight per AS")]
    fn wrong_length_panics() {
        let topo = topology_from_triples(&[(1, 2, PeerToPeer)]);
        let _ = AddressSpace::from_weights(&topo, vec![1]);
    }

    #[test]
    fn zero_total_fraction_is_zero() {
        let topo = topology_from_triples(&[(1, 2, PeerToPeer)]);
        let space = AddressSpace::uniform(&topo, 0);
        let all: Vec<_> = topo.indices().collect();
        assert_eq!(space.fraction_of(all), 0.0);
    }
}
