//! Geographic/administrative regions of the AS graph.
//!
//! Section VII of the paper analyzes the ~187 ASes of the New Zealand
//! region in isolation: regional attack containment, re-homing and gateway
//! filtering are all evaluated by counting compromised ASes *within the
//! region*. Regions here are just labels over the AS set.

use std::collections::HashMap;

use crate::{AsIndex, Topology};

/// Identifier of a region. Values are small and dense, assigned by the
/// generator or by the user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct RegionId(pub u16);

impl core::fmt::Display for RegionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Assignment of every AS to exactly one region.
#[derive(Debug, Clone)]
pub struct RegionMap {
    regions: Vec<RegionId>,
    members: HashMap<RegionId, Vec<AsIndex>>,
}

impl RegionMap {
    /// Builds a region map from a per-AS label vector.
    ///
    /// # Panics
    ///
    /// Panics if `regions.len() != topo.num_ases()`.
    pub fn from_labels(topo: &Topology, regions: Vec<RegionId>) -> RegionMap {
        assert_eq!(regions.len(), topo.num_ases(), "one region per AS required");
        let mut members: HashMap<RegionId, Vec<AsIndex>> = HashMap::new();
        for (i, &r) in regions.iter().enumerate() {
            members.entry(r).or_default().push(AsIndex::new(i as u32));
        }
        RegionMap { regions, members }
    }

    /// Puts every AS in a single region 0 (useful default).
    pub fn single(topo: &Topology) -> RegionMap {
        RegionMap::from_labels(topo, vec![RegionId(0); topo.num_ases()])
    }

    /// The region of `ix`.
    pub fn region_of(&self, ix: AsIndex) -> RegionId {
        self.regions[ix.usize()]
    }

    /// Members of `region`, in index order (empty if the region is unknown).
    pub fn members(&self, region: RegionId) -> &[AsIndex] {
        self.members.get(&region).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct regions.
    pub fn num_regions(&self) -> usize {
        self.members.len()
    }

    /// All region ids, sorted.
    pub fn region_ids(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.members.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// ASes *outside* `region`, in index order.
    pub fn non_members(&self, region: RegionId) -> Vec<AsIndex> {
        self.regions
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r != region)
            .map(|(i, _)| AsIndex::new(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    fn members_partition_the_as_set() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
        ]);
        let labels = vec![RegionId(0), RegionId(1), RegionId(1), RegionId(0)];
        let map = RegionMap::from_labels(&topo, labels);
        assert_eq!(map.num_regions(), 2);
        assert_eq!(map.members(RegionId(0)).len(), 2);
        assert_eq!(map.members(RegionId(1)).len(), 2);
        assert_eq!(map.non_members(RegionId(0)).len(), 2);
        let ix2 = topo.index_of(AsId::new(2)).unwrap();
        assert_eq!(map.region_of(ix2), RegionId(1));
        assert_eq!(map.region_ids(), vec![RegionId(0), RegionId(1)]);
    }

    #[test]
    fn single_region_covers_everything() {
        let topo = topology_from_triples(&[(1, 2, PeerToPeer)]);
        let map = RegionMap::single(&topo);
        assert_eq!(map.num_regions(), 1);
        assert_eq!(map.members(RegionId(0)).len(), 2);
        assert!(map.members(RegionId(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "one region per AS")]
    fn wrong_length_panics() {
        let topo = topology_from_triples(&[(1, 2, PeerToPeer)]);
        let _ = RegionMap::from_labels(&topo, vec![RegionId(0)]);
    }
}
