//! Customer cones — the paper's *reach* metric.
//!
//! The reach of an AS is "the number of ASes that can be independently
//! reached from an AS without the aid of peer ASes": exactly the set of
//! ASes reachable by repeatedly descending provider→customer links,
//! including the AS itself.

use std::collections::VecDeque;

use crate::{AsIndex, Topology};

/// Returns the customer cone of `root`: all ASes reachable from `root` by
/// descending provider→customer links, including `root` itself, in
/// breadth-first discovery order.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
/// use bgpsim_topology::metrics::customer_cone;
///
/// let topo = topology_from_triples(&[
///     (1, 2, ProviderToCustomer),
///     (2, 3, ProviderToCustomer),
///     (1, 4, PeerToPeer),
/// ]);
/// let root = topo.index_of(AsId::new(1)).unwrap();
/// assert_eq!(customer_cone(&topo, root).len(), 3); // 1, 2, 3 — not the peer 4
/// ```
pub fn customer_cone(topo: &Topology, root: AsIndex) -> Vec<AsIndex> {
    let mut visited = vec![false; topo.num_ases()];
    let mut cone = Vec::new();
    let mut queue = VecDeque::new();
    visited[root.usize()] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        cone.push(u);
        for c in topo.customers(u) {
            if !visited[c.usize()] {
                visited[c.usize()] = true;
                queue.push_back(c);
            }
        }
    }
    cone
}

/// Computes the customer-cone size (reach) of every AS.
///
/// Provider/customer links overwhelmingly form a DAG, but published data can
/// contain p2c cycles; this implementation is cycle-safe because each cone
/// is an independent reachability query. Stubs trivially have cone size 1.
///
/// Runs one truncated BFS per transit AS; total cost is the sum of cone
/// sizes, which is moderate even at Internet scale because most ASes are
/// stubs.
pub fn customer_cone_sizes(topo: &Topology) -> Vec<u32> {
    let n = topo.num_ases();
    let mut sizes = vec![1u32; n];
    // `stamp` marks visited nodes per-root without reallocating.
    let mut stamp = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for root in topo.indices() {
        if topo.is_stub(root) {
            continue; // cone of a stub is itself
        }
        let r = root.raw();
        stamp[root.usize()] = r;
        queue.push_back(root);
        let mut count = 0u32;
        while let Some(u) = queue.pop_front() {
            count += 1;
            for c in topo.customers(u) {
                if stamp[c.usize()] != r {
                    stamp[c.usize()] = r;
                    queue.push_back(c);
                }
            }
        }
        sizes[root.usize()] = count;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    fn ix(topo: &Topology, n: u32) -> AsIndex {
        topo.index_of(AsId::new(n)).unwrap()
    }

    #[test]
    fn cone_excludes_peers_and_providers() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (2, 4, PeerToPeer),
            (5, 1, ProviderToCustomer),
        ]);
        let cone = customer_cone(&topo, ix(&topo, 2));
        let ids: Vec<u32> = cone.iter().map(|&c| topo.id_of(c).value()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn diamond_counts_shared_customer_once() {
        // 1 → {2, 3} → 4: the diamond's sink must not be double counted.
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
        ]);
        assert_eq!(customer_cone(&topo, ix(&topo, 1)).len(), 4);
        let sizes = customer_cone_sizes(&topo);
        assert_eq!(sizes[ix(&topo, 1).usize()], 4);
        assert_eq!(sizes[ix(&topo, 2).usize()], 2);
        assert_eq!(sizes[ix(&topo, 4).usize()], 1);
    }

    #[test]
    fn sizes_match_individual_cones() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (3, 5, ProviderToCustomer),
            (2, 5, ProviderToCustomer),
            (4, 6, PeerToPeer),
        ]);
        let sizes = customer_cone_sizes(&topo);
        for root in topo.indices() {
            assert_eq!(
                sizes[root.usize()] as usize,
                customer_cone(&topo, root).len(),
                "mismatch at {}",
                topo.id_of(root)
            );
        }
    }

    #[test]
    fn p2c_cycle_terminates() {
        // Corrupt data: 1→2→3→1 provider cycle. Must not loop forever.
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (3, 1, ProviderToCustomer),
        ]);
        let sizes = customer_cone_sizes(&topo);
        assert!(sizes.iter().all(|&s| s == 3));
    }
}
