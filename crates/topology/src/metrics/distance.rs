//! Plain hop distances ignoring routing policy.
//!
//! Policy-oblivious distances are *not* what BGP paths follow (valley-free
//! export forbids many short paths), but they are useful as diagnostics and
//! for layout in the polar visualizations.

use std::collections::VecDeque;

use crate::{AsIndex, Topology};

/// Breadth-first hop distance from `source` to every AS over all link
/// classes. Unreachable ASes hold `None`.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
/// use bgpsim_topology::metrics::hop_distances;
///
/// let topo = topology_from_triples(&[(1, 2, PeerToPeer), (2, 3, ProviderToCustomer)]);
/// let src = topo.index_of(AsId::new(1)).unwrap();
/// let d = hop_distances(&topo, src);
/// assert_eq!(d[topo.index_of(AsId::new(3)).unwrap().usize()], Some(2));
/// ```
pub fn hop_distances(topo: &Topology, source: AsIndex) -> Vec<Option<u32>> {
    let mut dist = vec![None; topo.num_ases()];
    let mut queue = VecDeque::new();
    dist[source.usize()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.usize()].expect("queued nodes have distances");
        for nb in topo.neighbors(u) {
            let v = nb.index;
            if dist[v.usize()].is_none() {
                dist[v.usize()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    fn distances_ignore_link_direction_and_class() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (3, 2, ProviderToCustomer), // 2's provider — still 1 hop from 2
            (3, 4, SiblingToSibling),
        ]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = hop_distances(&topo, ix(1));
        assert_eq!(d[ix(1).usize()], Some(0));
        assert_eq!(d[ix(2).usize()], Some(1));
        assert_eq!(d[ix(3).usize()], Some(2));
        assert_eq!(d[ix(4).usize()], Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let topo = topology_from_triples(&[(1, 2, PeerToPeer), (5, 6, PeerToPeer)]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = hop_distances(&topo, ix(1));
        assert_eq!(d[ix(5).usize()], None);
    }
}
