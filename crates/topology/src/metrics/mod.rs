//! Topological metrics that the paper correlates with attack vulnerability.
//!
//! * [`depth`] — hops from an AS up its provider chains to the nearest
//!   tier-1 (or tier-1/tier-2) AS; the paper's primary vulnerability
//!   predictor (§IV).
//! * [`cone`] — customer-cone sizes, the paper's *reach* metric ("the number
//!   of ASes that can be independently reached from an AS without the aid of
//!   peer ASes").
//! * [`distance`] — plain hop distance ignoring policy, for diagnostics and
//!   the polar visualizations.

pub mod cone;
pub mod depth;
pub mod distance;

pub use cone::{customer_cone, customer_cone_sizes};
pub use depth::DepthMap;
pub use distance::hop_distances;
