//! The *depth* metric: provider-chain hops to the nearest seed AS.
//!
//! The paper defines depth as "the number of hops to the nearest tier-1 AS"
//! and, after observing that stubs under large tier-2 providers behave like
//! depth-1 stubs, re-defines it as hops to the nearest tier-1 *or tier-2*
//! provider (§IV). Both variants are exposed: pass the appropriate seed set
//! to [`DepthMap::compute`], or use the convenience constructors.

use std::collections::VecDeque;

use crate::{AsIndex, Topology};

/// Depth of every AS relative to a seed set, following provider chains.
///
/// Depth 0 means the AS is itself a seed; depth *d* means the shortest chain
/// `AS → provider → … → seed` has *d* links. ASes with no provider chain to
/// any seed are *unreachable* ([`DepthMap::depth`] returns `None` for them).
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
/// use bgpsim_topology::metrics::DepthMap;
///
/// // 1 (tier-1) ← 2 ← 3, a two-level chain.
/// let topo = topology_from_triples(&[
///     (1, 2, ProviderToCustomer),
///     (2, 3, ProviderToCustomer),
/// ]);
/// let depth = DepthMap::to_tier1(&topo);
/// let ix = |n| topo.index_of(AsId::new(n)).unwrap();
/// assert_eq!(depth.depth(ix(1)), Some(0));
/// assert_eq!(depth.depth(ix(2)), Some(1));
/// assert_eq!(depth.depth(ix(3)), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct DepthMap {
    depths: Vec<u32>,
}

const UNREACHABLE: u32 = u32::MAX;

impl DepthMap {
    /// Computes depths from an explicit seed set.
    ///
    /// Runs a multi-source breadth-first search that expands from each seed
    /// to its *customers* (so discovered paths are exactly the reversed
    /// provider chains). `O(n + m)` time.
    pub fn compute<I>(topo: &Topology, seeds: I) -> DepthMap
    where
        I: IntoIterator<Item = AsIndex>,
    {
        let mut depths = vec![UNREACHABLE; topo.num_ases()];
        let mut queue = VecDeque::new();
        for s in seeds {
            if depths[s.usize()] == UNREACHABLE {
                depths[s.usize()] = 0;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = depths[u.usize()];
            for c in topo.customers(u) {
                if depths[c.usize()] == UNREACHABLE {
                    depths[c.usize()] = du + 1;
                    queue.push_back(c);
                }
            }
        }
        DepthMap { depths }
    }

    /// Depths to the nearest tier-1 AS (the paper's original definition).
    pub fn to_tier1(topo: &Topology) -> DepthMap {
        DepthMap::compute(topo, topo.tier1s())
    }

    /// Depth of `ix`, or `None` if no provider chain reaches a seed.
    pub fn depth(&self, ix: AsIndex) -> Option<u32> {
        match self.depths[ix.usize()] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Raw depth slice; unreachable ASes hold `u32::MAX`.
    pub fn as_slice(&self) -> &[u32] {
        &self.depths
    }

    /// The largest finite depth, or `None` if nothing is reachable.
    pub fn max_depth(&self) -> Option<u32> {
        self.depths
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
    }

    /// Histogram of finite depths: `histogram()[d]` is the number of ASes at
    /// depth `d`.
    pub fn histogram(&self) -> Vec<usize> {
        let max = match self.max_depth() {
            Some(m) => m as usize,
            None => return Vec::new(),
        };
        let mut h = vec![0usize; max + 1];
        for &d in &self.depths {
            if d != UNREACHABLE {
                h[d as usize] += 1;
            }
        }
        h
    }

    /// Number of ASes with no provider chain to any seed.
    pub fn num_unreachable(&self) -> usize {
        self.depths.iter().filter(|&&d| d == UNREACHABLE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    fn multi_homing_takes_minimum() {
        // 1 and 2 are seeds; 4 buys from 3 (depth 1) and from 1 directly.
        let topo = topology_from_triples(&[
            (1, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (1, 4, ProviderToCustomer),
            (1, 2, PeerToPeer),
        ]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = DepthMap::compute(&topo, [ix(1), ix(2)]);
        assert_eq!(d.depth(ix(4)), Some(1));
        assert_eq!(d.depth(ix(3)), Some(1));
    }

    #[test]
    fn peers_do_not_shorten_depth() {
        // 3 peers with seed 1 but only buys transit from 4 (depth 2 chain).
        let topo = topology_from_triples(&[
            (1, 4, ProviderToCustomer),
            (4, 3, ProviderToCustomer),
            (1, 3, PeerToPeer),
        ]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = DepthMap::compute(&topo, [ix(1)]);
        assert_eq!(d.depth(ix(3)), Some(2));
    }

    #[test]
    fn unreachable_islands_are_none() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (8, 9, ProviderToCustomer), // disconnected island
        ]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = DepthMap::compute(&topo, [ix(1)]);
        assert_eq!(d.depth(ix(9)), None);
        assert_eq!(d.num_unreachable(), 2);
    }

    #[test]
    fn histogram_counts_each_depth() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
        ]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = DepthMap::compute(&topo, [ix(1)]);
        assert_eq!(d.histogram(), vec![1, 1, 2]);
        assert_eq!(d.max_depth(), Some(2));
    }

    #[test]
    fn to_tier1_uses_heuristic_when_undeclared() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, ProviderToCustomer)]);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        let d = DepthMap::to_tier1(&topo);
        assert_eq!(d.depth(ix(3)), Some(2));
    }

    #[test]
    fn empty_seed_set_leaves_everything_unreachable() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
        let d = DepthMap::compute(&topo, std::iter::empty());
        assert_eq!(d.num_unreachable(), 2);
        assert_eq!(d.max_depth(), None);
        assert!(d.histogram().is_empty());
    }
}
