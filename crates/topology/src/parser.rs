//! Parsing and serializing CAIDA-style AS-relationship files.
//!
//! The paper's simulator reads "a list of 139,156 provider/customer/peer
//! relationships obtained from CAIDA". CAIDA publishes these as pipe-
//! separated lines:
//!
//! ```text
//! # comment lines start with '#'
//! <provider-as>|<customer-as>|-1
//! <peer-as>|<peer-as>|0
//! <sibling-as>|<sibling-as>|1        (serial-1 only)
//! <as0>|<as1>|-1|bgp                 (serial-2 appends a source field)
//! ```
//!
//! Both serial-1 and serial-2 layouts are accepted; a trailing source field
//! is ignored. Use [`from_caida_reader`] for files and [`from_caida_str`]
//! for in-memory data.

use std::io::BufRead;

use crate::{AsId, LinkKind, Topology, TopologyBuilder, TopologyError};

/// Relationship codes used by the CAIDA file formats.
const P2C: i32 = -1;
const P2P: i32 = 0;
const S2S: i32 = 1;

/// Parses a CAIDA AS-relationship file from a buffered reader.
///
/// Duplicate unordered pairs are tolerated (first occurrence wins), matching
/// how the published files occasionally repeat links across sources;
/// malformed lines are hard errors.
///
/// # Errors
///
/// Returns [`TopologyError::Parse`] for malformed lines,
/// [`TopologyError::Io`] for read failures, and [`TopologyError::Empty`] if
/// the file contains no links or ASes.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::parser::from_caida_reader;
///
/// let data = "# as-rel\n1|2|-1\n2|3|0\n";
/// let topo = from_caida_reader(data.as_bytes())?;
/// assert_eq!(topo.num_ases(), 3);
/// # Ok::<(), bgpsim_topology::TopologyError>(())
/// ```
pub fn from_caida_reader<R: BufRead>(reader: R) -> Result<Topology, TopologyError> {
    let mut builder = TopologyBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        parse_line(&mut builder, lineno + 1, &line)?;
    }
    builder.build()
}

/// Parses a CAIDA AS-relationship file held in a string.
///
/// # Errors
///
/// Same conditions as [`from_caida_reader`].
pub fn from_caida_str(data: &str) -> Result<Topology, TopologyError> {
    let mut builder = TopologyBuilder::new();
    for (lineno, line) in data.lines().enumerate() {
        parse_line(&mut builder, lineno + 1, line)?;
    }
    builder.build()
}

fn parse_line(
    builder: &mut TopologyBuilder,
    lineno: usize,
    line: &str,
) -> Result<(), TopologyError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(());
    }
    let mut fields = line.split('|');
    let a = parse_asn(fields.next(), lineno, "first AS")?;
    let b = parse_asn(fields.next(), lineno, "second AS")?;
    let rel_str = fields.next().ok_or_else(|| TopologyError::Parse {
        line: lineno,
        message: "missing relationship field".into(),
    })?;
    // serial-2 appends a data-source field; anything after it is invalid.
    let extra = fields.next();
    if fields.next().is_some() {
        return Err(TopologyError::Parse {
            line: lineno,
            message: "too many fields".into(),
        });
    }
    if let Some(src) = extra {
        if src.is_empty() {
            return Err(TopologyError::Parse {
                line: lineno,
                message: "empty source field".into(),
            });
        }
    }
    let rel: i32 = rel_str.trim().parse().map_err(|_| TopologyError::Parse {
        line: lineno,
        message: format!("invalid relationship code {rel_str:?}"),
    })?;
    let kind = match rel {
        P2C => LinkKind::ProviderToCustomer,
        P2P => LinkKind::PeerToPeer,
        S2S => LinkKind::SiblingToSibling,
        other => {
            return Err(TopologyError::Parse {
                line: lineno,
                message: format!("unknown relationship code {other}"),
            })
        }
    };
    if a == b {
        return Err(TopologyError::Parse {
            line: lineno,
            message: format!("self-loop on {a}"),
        });
    }
    // First occurrence of an unordered pair wins; CAIDA dumps repeat links.
    if !builder.has_link(a, b) {
        builder
            .add_link(a, b, kind)
            .expect("checked for duplicates and self-loops");
    }
    Ok(())
}

fn parse_asn(field: Option<&str>, lineno: usize, what: &str) -> Result<AsId, TopologyError> {
    let field = field.ok_or_else(|| TopologyError::Parse {
        line: lineno,
        message: format!("missing {what} field"),
    })?;
    field
        .trim()
        .parse::<u32>()
        .map(AsId::new)
        .map_err(|_| TopologyError::Parse {
            line: lineno,
            message: format!("invalid {what} {field:?}"),
        })
}

/// Serializes a topology back to CAIDA serial-1 text (`a|b|code` lines,
/// provider first for p2c links), preceded by a summary comment.
///
/// Round-trips with [`from_caida_str`] up to link order.
pub fn to_caida_string(topo: &Topology) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(topo.num_links() * 12 + 64);
    let _ = writeln!(
        out,
        "# bgpsim as-rel export: {} ases, {} links",
        topo.num_ases(),
        topo.num_links()
    );
    for ix in topo.indices() {
        for nb in topo.neighbors(ix) {
            let (code, emit) = match nb.rel {
                crate::Relationship::Customer => (P2C, true),
                crate::Relationship::Peer => (P2P, nb.index.raw() > ix.raw()),
                crate::Relationship::Sibling => (S2S, nb.index.raw() > ix.raw()),
                crate::Relationship::Provider => (P2C, false),
            };
            if emit {
                let _ = writeln!(
                    out,
                    "{}|{}|{}",
                    topo.id_of(ix).value(),
                    topo.id_of(nb.index).value(),
                    code
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_relationship_kinds() {
        let t = from_caida_str("1|2|-1\n2|3|0\n3|4|1\n").unwrap();
        assert_eq!(t.num_p2c_links(), 1);
        assert_eq!(t.num_p2p_links(), 1);
        assert_eq!(t.num_s2s_links(), 1);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let t = from_caida_str("# header\n\n  \n1|2|-1\n").unwrap();
        assert_eq!(t.num_ases(), 2);
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    fn accepts_serial2_source_field() {
        let t = from_caida_str("1|2|-1|bgp\n").unwrap();
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    fn provider_is_first_field() {
        let t = from_caida_str("10|20|-1\n").unwrap();
        let p = t.index_of(AsId::new(10)).unwrap();
        let c = t.index_of(AsId::new(20)).unwrap();
        assert_eq!(t.customers(p).collect::<Vec<_>>(), vec![c]);
        assert_eq!(t.providers(c).collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    fn duplicate_pairs_keep_first() {
        let t = from_caida_str("1|2|-1\n2|1|0\n1|2|-1\n").unwrap();
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.num_p2c_links(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "1|2",           // missing rel
            "1|2|9",         // unknown code
            "x|2|-1",        // bad asn
            "1|y|0",         // bad asn
            "1|2|-1|s|junk", // too many fields
            "1|2|zz",        // non-numeric rel
            "7|7|0",         // self loop
            "1|2|-1|",       // empty source
        ] {
            let err = from_caida_str(bad).unwrap_err();
            assert!(
                matches!(err, TopologyError::Parse { line: 1, .. }),
                "{bad:?} gave {err}"
            );
        }
    }

    #[test]
    fn error_reports_line_number() {
        let err = from_caida_str("1|2|-1\nbogus\n").unwrap_err();
        match err {
            TopologyError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            from_caida_str("# nothing here\n"),
            Err(TopologyError::Empty)
        ));
    }

    #[test]
    fn roundtrip_through_serialization() {
        let src = "1|2|-1\n2|3|0\n3|4|1\n1|4|-1\n";
        let t = from_caida_str(src).unwrap();
        let t2 = from_caida_str(&to_caida_string(&t)).unwrap();
        assert_eq!(t.num_ases(), t2.num_ases());
        assert_eq!(t.num_p2c_links(), t2.num_p2c_links());
        assert_eq!(t.num_p2p_links(), t2.num_p2p_links());
        assert_eq!(t.num_s2s_links(), t2.num_s2s_links());
        for ix in t.indices() {
            let id = t.id_of(ix);
            let jx = t2.index_of(id).unwrap();
            assert_eq!(
                t.customers(ix)
                    .map(|c| t.id_of(c))
                    .collect::<std::collections::BTreeSet<_>>(),
                t2.customers(jx)
                    .map(|c| t2.id_of(c))
                    .collect::<std::collections::BTreeSet<_>>()
            );
        }
    }

    #[test]
    fn reader_variant_matches_str_variant() {
        let src = "1|2|-1\n2|3|0\n";
        let a = from_caida_str(src).unwrap();
        let b = from_caida_reader(src.as_bytes()).unwrap();
        assert_eq!(a.num_ases(), b.num_ases());
        assert_eq!(a.num_links(), b.num_links());
    }
}
