//! Aggregate topology statistics — the paper's "simulation model" table.
//!
//! Section III of the paper characterizes its substrate: 42,697 ASes,
//! 139,156 relationships, 17 tier-1s, 6,318 transit ASes, 62 ASes with
//! degree ≥ 500. [`TopologyStats`] computes the same summary for any
//! topology so EXPERIMENTS.md can place measured values next to the
//! paper's.

use core::fmt;

use crate::metrics::DepthMap;
use crate::Topology;

/// Summary statistics of a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TopologyStats {
    /// Total autonomous systems.
    pub num_ases: usize,
    /// Total links.
    pub num_links: usize,
    /// Provider-customer links.
    pub num_p2c: usize,
    /// Peer links.
    pub num_p2p: usize,
    /// Sibling links.
    pub num_s2s: usize,
    /// Tier-1 clique size.
    pub num_tier1: usize,
    /// ASes selling transit.
    pub num_transit: usize,
    /// Stub ASes.
    pub num_stubs: usize,
    /// Cohort sizes at the paper's degree thresholds (500, 300, 200, 100).
    pub degree_cohorts: [(usize, usize); 4],
    /// Histogram of depth-to-tier-1 (index = depth).
    pub depth_histogram: Vec<usize>,
    /// ASes with no provider chain to a tier-1.
    pub unreachable: usize,
    /// Maximum observed degree.
    pub max_degree: usize,
}

impl TopologyStats {
    /// Computes the full summary. Cost is `O(n + m)` plus one BFS.
    pub fn compute(topo: &Topology) -> TopologyStats {
        let depth = DepthMap::to_tier1(topo);
        let thresholds = [500usize, 300, 200, 100];
        let mut cohorts = [(0usize, 0usize); 4];
        for (slot, &k) in thresholds.iter().enumerate() {
            cohorts[slot] = (k, topo.indices().filter(|&ix| topo.degree(ix) >= k).count());
        }
        TopologyStats {
            num_ases: topo.num_ases(),
            num_links: topo.num_links(),
            num_p2c: topo.num_p2c_links(),
            num_p2p: topo.num_p2p_links(),
            num_s2s: topo.num_s2s_links(),
            num_tier1: topo.tier1s().len(),
            num_transit: topo.transit_ases().len(),
            num_stubs: topo.stub_ases().len(),
            degree_cohorts: cohorts,
            depth_histogram: depth.histogram(),
            unreachable: depth.num_unreachable(),
            max_degree: topo.indices().map(|ix| topo.degree(ix)).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ases:        {}", self.num_ases)?;
        writeln!(
            f,
            "links:       {} (p2c {}, p2p {}, s2s {})",
            self.num_links, self.num_p2c, self.num_p2p, self.num_s2s
        )?;
        writeln!(f, "tier-1:      {}", self.num_tier1)?;
        writeln!(
            f,
            "transit:     {} ({:.1}%)",
            self.num_transit,
            100.0 * self.num_transit as f64 / self.num_ases.max(1) as f64
        )?;
        writeln!(f, "stubs:       {}", self.num_stubs)?;
        for (k, c) in self.degree_cohorts {
            writeln!(f, "degree ≥{k:<4} {c}")?;
        }
        writeln!(f, "max degree:  {}", self.max_degree)?;
        write!(f, "depth hist:  ")?;
        for (d, c) in self.depth_histogram.iter().enumerate() {
            write!(f, "{d}:{c} ")?;
        }
        if self.unreachable > 0 {
            write!(f, "(unreachable {})", self.unreachable)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, InternetParams};
    use crate::topology_from_triples;
    use crate::LinkKind::*;

    #[test]
    fn stats_on_micro_topology() {
        let t = topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
        ]);
        let s = TopologyStats::compute(&t);
        assert_eq!(s.num_ases, 4);
        assert_eq!(s.num_links, 3);
        assert_eq!(s.num_tier1, 2);
        assert_eq!(s.num_transit, 2);
        assert_eq!(s.num_stubs, 2);
        assert_eq!(s.depth_histogram, vec![2, 1, 1]);
        assert_eq!(s.unreachable, 0);
        assert_eq!(s.max_degree, 2);
        let text = s.to_string();
        assert!(text.contains("tier-1:      2"));
    }

    #[test]
    fn generated_stats_are_consistent() {
        let net = generate(&InternetParams::tiny(), 2);
        let s = TopologyStats::compute(&net.topology);
        assert_eq!(s.num_transit + s.num_stubs, s.num_ases);
        assert_eq!(s.num_p2c + s.num_p2p + s.num_s2s, s.num_links);
        assert_eq!(s.unreachable, 0);
        let total_by_depth: usize = s.depth_histogram.iter().sum();
        assert_eq!(total_by_depth, s.num_ases);
    }
}
