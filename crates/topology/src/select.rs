//! Selectors that find representative ASes by topological criteria.
//!
//! The paper anchors its experiments on specific ASes chosen for their
//! topological position: AS98 ("depth-1, multi-homed, relatively attack
//! resistant"), AS55857 ("depth-5, very vulnerable"), AS4 ("aggressive,
//! low-depth"), and so on. On a synthetic topology the same roles are
//! filled by searching for ASes matching the stated criteria; these
//! selectors make that search explicit and deterministic (ties break toward
//! the smallest index).

use crate::metrics::DepthMap;
use crate::{AsIndex, Topology};

/// Homing requirement for [`stub_at_depth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Homing {
    /// Exactly one provider.
    SingleHomed,
    /// Two or more providers.
    MultiHomed,
    /// Any number of providers.
    Any,
}

/// Finds a stub AS at exactly `depth` with the requested homing, if any.
///
/// `depths` must come from the same topology (see [`DepthMap`]); pass a
/// tier-1 map for the paper's fig. 2 selections or an effective-depth map
/// for fig. 3.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::gen::{generate, InternetParams};
/// use bgpsim_topology::metrics::DepthMap;
/// use bgpsim_topology::select::{stub_at_depth, Homing};
///
/// let net = generate(&InternetParams::tiny(), 1);
/// let depths = DepthMap::to_tier1(&net.topology);
/// let stub = stub_at_depth(&net.topology, &depths, 1, Homing::MultiHomed);
/// assert!(stub.is_some());
/// ```
pub fn stub_at_depth(
    topo: &Topology,
    depths: &DepthMap,
    depth: u32,
    homing: Homing,
) -> Option<AsIndex> {
    topo.indices().find(|&ix| {
        topo.is_stub(ix)
            && depths.depth(ix) == Some(depth)
            && match homing {
                Homing::SingleHomed => topo.num_providers(ix) == 1,
                Homing::MultiHomed => topo.num_providers(ix) >= 2,
                Homing::Any => true,
            }
    })
}

/// Finds a *transit* AS at exactly `depth` (useful as an attacker or
/// re-homing anchor), preferring higher degree.
pub fn transit_at_depth(topo: &Topology, depths: &DepthMap, depth: u32) -> Option<AsIndex> {
    topo.indices()
        .filter(|&ix| topo.is_transit(ix) && depths.depth(ix) == Some(depth))
        .max_by_key(|&ix| (topo.degree(ix), std::cmp::Reverse(ix.raw())))
}

/// All ASes with total degree at least `k`, in index order.
///
/// This is the paper's deployment cohort constructor ("the 62 ASes with
/// degree ≥ 500").
pub fn by_degree_at_least(topo: &Topology, k: usize) -> Vec<AsIndex> {
    topo.indices().filter(|&ix| topo.degree(ix) >= k).collect()
}

/// The `k` highest-degree ASes (ties break toward smaller index).
pub fn top_k_by_degree(topo: &Topology, k: usize) -> Vec<AsIndex> {
    let mut all: Vec<AsIndex> = topo.indices().collect();
    all.sort_by_key(|&ix| (std::cmp::Reverse(topo.degree(ix)), ix.raw()));
    all.truncate(k);
    all
}

/// An "aggressive attacker" candidate: the lowest-depth, highest-degree
/// transit AS that is not itself tier-1 (mirrors the paper's AS4, a
/// low-depth transit whose providers peer widely).
pub fn aggressive_transit(topo: &Topology, depths: &DepthMap) -> Option<AsIndex> {
    let tier1: std::collections::HashSet<AsIndex> = topo.tier1s().into_iter().collect();
    topo.indices()
        .filter(|ix| topo.is_transit(*ix) && !tier1.contains(ix))
        .filter(|&ix| depths.depth(ix).is_some())
        .min_by_key(|&ix| {
            (
                depths.depth(ix).expect("filtered to reachable"),
                std::cmp::Reverse(topo.degree(ix)),
                ix.raw(),
            )
        })
}

/// The most vulnerable-looking stub: maximum depth, breaking ties toward
/// fewer providers then smaller index (mirrors the paper's AS55857).
pub fn deepest_stub(topo: &Topology, depths: &DepthMap) -> Option<AsIndex> {
    topo.indices()
        .filter(|&ix| topo.is_stub(ix) && depths.depth(ix).is_some())
        .max_by_key(|&ix| {
            (
                depths.depth(ix).expect("filtered to reachable"),
                std::cmp::Reverse(topo.num_providers(ix)),
                std::cmp::Reverse(ix.raw()),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, AsId, LinkKind::*};

    fn ladder() -> Topology {
        // 1,2 tier-1 peers; 3=depth1 transit; 4=depth2 transit;
        // 5=depth1 single stub; 6=depth1 multi stub; 7=depth3 stub.
        topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (1, 5, ProviderToCustomer),
            (1, 6, ProviderToCustomer),
            (2, 6, ProviderToCustomer),
            (4, 7, ProviderToCustomer),
        ])
    }

    fn ix(t: &Topology, n: u32) -> AsIndex {
        t.index_of(AsId::new(n)).unwrap()
    }

    #[test]
    fn finds_stubs_by_depth_and_homing() {
        let t = ladder();
        let d = DepthMap::to_tier1(&t);
        assert_eq!(
            stub_at_depth(&t, &d, 1, Homing::SingleHomed),
            Some(ix(&t, 5))
        );
        assert_eq!(
            stub_at_depth(&t, &d, 1, Homing::MultiHomed),
            Some(ix(&t, 6))
        );
        assert_eq!(stub_at_depth(&t, &d, 3, Homing::Any), Some(ix(&t, 7)));
        assert_eq!(stub_at_depth(&t, &d, 4, Homing::Any), None);
    }

    #[test]
    fn transit_at_depth_prefers_degree() {
        let t = ladder();
        let d = DepthMap::to_tier1(&t);
        assert_eq!(transit_at_depth(&t, &d, 1), Some(ix(&t, 3)));
        assert_eq!(transit_at_depth(&t, &d, 2), Some(ix(&t, 4)));
    }

    #[test]
    fn degree_cohorts() {
        let t = ladder();
        let big = by_degree_at_least(&t, 4);
        assert_eq!(big, vec![ix(&t, 1)]); // AS1 has degree 5
        let top2 = top_k_by_degree(&t, 2);
        assert_eq!(top2[0], ix(&t, 1));
        assert_eq!(top2.len(), 2);
    }

    #[test]
    fn aggressive_and_deepest() {
        let t = ladder();
        let d = DepthMap::to_tier1(&t);
        assert_eq!(aggressive_transit(&t, &d), Some(ix(&t, 3)));
        assert_eq!(deepest_stub(&t, &d), Some(ix(&t, 7)));
    }
}
