//! The immutable AS-level topology graph.

use std::collections::HashMap;

use crate::{AsId, AsIndex, LinkKind, Relationship, TopologyBuilder};

/// One entry of an AS's neighbor list: the neighbor's dense index plus the
/// relationship *of that neighbor from the owning AS's perspective*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Neighbor {
    /// Dense index of the neighboring AS.
    pub index: AsIndex,
    /// The neighbor's role relative to the owner (e.g. `Customer` means the
    /// neighbor buys transit from the owner).
    pub rel: Relationship,
}

/// An immutable AS-level Internet topology.
///
/// Stores the relationship graph in compressed-sparse-row (CSR) form with
/// each AS's neighbor list sorted by relationship class (customers, peers,
/// providers, siblings) and then by index, so iteration order — and
/// therefore every simulation built on top — is deterministic.
///
/// Construct via [`TopologyBuilder`], [`crate::parser::from_caida_str`], or
/// the synthetic generator in [`crate::gen`].
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*, Relationship};
///
/// let topo = topology_from_triples(&[
///     (1, 2, ProviderToCustomer),
///     (1, 3, ProviderToCustomer),
///     (2, 3, PeerToPeer),
/// ]);
/// let a1 = topo.index_of(AsId::new(1)).unwrap();
/// assert_eq!(topo.customers(a1).count(), 2);
/// assert_eq!(topo.degree(a1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    ids: Vec<AsId>,
    index_of: HashMap<AsId, u32>,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Flattened neighbor lists, sorted by `(rel.order(), index)` per AS.
    nbrs: Vec<Neighbor>,
    /// Per-AS boundaries inside its neighbor slice: end of customers, end of
    /// peers, end of providers (end of siblings is the slice end).
    cuts: Vec<[u32; 3]>,
    /// Sibling-group id per AS (singleton groups for AS with no siblings).
    sibling_group: Vec<u32>,
    num_sibling_groups: u32,
    /// Declared tier-1 set (may be empty; see [`Topology::tier1s`]).
    tier1: Vec<AsIndex>,
    num_links: usize,
    links_p2c: usize,
    links_p2p: usize,
    links_s2s: usize,
}

impl Topology {
    pub(crate) fn from_parts(
        ids: Vec<AsId>,
        index_of: HashMap<AsId, u32>,
        links: Vec<(u32, u32, LinkKind)>,
        mut declared_tier1: Vec<u32>,
    ) -> Topology {
        let n = ids.len();
        let mut degree = vec![0u32; n];
        for &(a, b, _) in &links {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut nbrs = vec![
            Neighbor {
                index: AsIndex::new(0),
                rel: Relationship::Customer
            };
            offsets[n] as usize
        ];
        let mut fill = offsets.clone();
        let mut links_p2c = 0;
        let mut links_p2p = 0;
        let mut links_s2s = 0;
        for &(a, b, kind) in &links {
            match kind {
                LinkKind::ProviderToCustomer => links_p2c += 1,
                LinkKind::PeerToPeer => links_p2p += 1,
                LinkKind::SiblingToSibling => links_s2s += 1,
            }
            nbrs[fill[a as usize] as usize] = Neighbor {
                index: AsIndex::new(b),
                rel: kind.rel_at_a(),
            };
            fill[a as usize] += 1;
            nbrs[fill[b as usize] as usize] = Neighbor {
                index: AsIndex::new(a),
                rel: kind.rel_at_b(),
            };
            fill[b as usize] += 1;
        }
        // Sort each AS's slice by (relationship class, neighbor index) and
        // record the class boundaries.
        let mut cuts = vec![[0u32; 3]; n];
        for i in 0..n {
            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
            let slice = &mut nbrs[lo..hi];
            slice.sort_unstable_by_key(|nb| (nb.rel.order(), nb.index.raw()));
            let cut_of = |class_end: u8, slice: &[Neighbor]| -> u32 {
                (lo + slice.partition_point(|nb| nb.rel.order() < class_end)) as u32
            };
            cuts[i] = [cut_of(1, slice), cut_of(2, slice), cut_of(3, slice)];
        }
        // Sibling groups via union-find over sibling links.
        let mut uf: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while uf[root as usize] != root {
                root = uf[root as usize];
            }
            let mut cur = x;
            while uf[cur as usize] != root {
                let next = uf[cur as usize];
                uf[cur as usize] = root;
                cur = next;
            }
            root
        }
        for &(a, b, kind) in &links {
            if kind == LinkKind::SiblingToSibling {
                let (ra, rb) = (find(&mut uf, a), find(&mut uf, b));
                if ra != rb {
                    // Deterministic union: smaller root wins.
                    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                    uf[hi as usize] = lo;
                }
            }
        }
        // Compact group ids in index order.
        let mut sibling_group = vec![u32::MAX; n];
        let mut next_group = 0u32;
        for i in 0..n as u32 {
            let root = find(&mut uf, i) as usize;
            if sibling_group[root] == u32::MAX {
                sibling_group[root] = next_group;
                next_group += 1;
            }
            sibling_group[i as usize] = sibling_group[root];
        }
        declared_tier1.sort_unstable();
        declared_tier1.dedup();
        Topology {
            ids,
            index_of,
            offsets,
            nbrs,
            cuts,
            sibling_group,
            num_sibling_groups: next_group,
            tier1: declared_tier1.into_iter().map(AsIndex::new).collect(),
            num_links: links.len(),
            links_p2c,
            links_p2p,
            links_s2s,
        }
    }

    /// Number of autonomous systems.
    pub fn num_ases(&self) -> usize {
        self.ids.len()
    }

    /// Number of inter-AS links (each counted once).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of provider-to-customer links.
    pub fn num_p2c_links(&self) -> usize {
        self.links_p2c
    }

    /// Number of peer-to-peer links.
    pub fn num_p2p_links(&self) -> usize {
        self.links_p2p
    }

    /// Number of sibling links.
    pub fn num_s2s_links(&self) -> usize {
        self.links_s2s
    }

    /// The ASN living at dense index `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of range for this topology.
    pub fn id_of(&self, ix: AsIndex) -> AsId {
        self.ids[ix.usize()]
    }

    /// Dense index of `asn`, or `None` if the AS is not in this topology.
    pub fn index_of(&self, asn: AsId) -> Option<AsIndex> {
        self.index_of.get(&asn).map(|&i| AsIndex::new(i))
    }

    /// Iterates over all dense indices, in order.
    pub fn indices(&self) -> impl ExactSizeIterator<Item = AsIndex> + Clone + '_ {
        (0..self.ids.len() as u32).map(AsIndex::new)
    }

    /// Iterates over all ASNs in dense-index order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = AsId> + Clone + '_ {
        self.ids.iter().copied()
    }

    /// Full neighbor list of `ix`, sorted by relationship class then index.
    pub fn neighbors(&self, ix: AsIndex) -> &[Neighbor] {
        let i = ix.usize();
        &self.nbrs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    fn class_slice(&self, ix: AsIndex, class: Relationship) -> &[Neighbor] {
        let i = ix.usize();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        let c = &self.cuts[i];
        let (s, e) = match class {
            Relationship::Customer => (lo, c[0] as usize),
            Relationship::Peer => (c[0] as usize, c[1] as usize),
            Relationship::Provider => (c[1] as usize, c[2] as usize),
            Relationship::Sibling => (c[2] as usize, hi),
        };
        &self.nbrs[s..e]
    }

    /// Relationship-class boundaries inside [`Topology::neighbors`]`(ix)`:
    /// customers occupy `[0, b[0])`, peers `[b[0], b[1])`, providers
    /// `[b[1], b[2])` and siblings `[b[2], degree)`. Lets hot loops walk
    /// only the classes a valley-free export may reach, without a
    /// per-edge relationship test.
    pub fn class_bounds(&self, ix: AsIndex) -> [usize; 3] {
        let i = ix.usize();
        let lo = self.offsets[i] as usize;
        let c = self.cuts[i];
        [c[0] as usize - lo, c[1] as usize - lo, c[2] as usize - lo]
    }

    /// The customers of `ix` (ASes buying transit from it).
    pub fn customers(&self, ix: AsIndex) -> impl ExactSizeIterator<Item = AsIndex> + Clone + '_ {
        self.class_slice(ix, Relationship::Customer)
            .iter()
            .map(|nb| nb.index)
    }

    /// The settlement-free peers of `ix`.
    pub fn peers(&self, ix: AsIndex) -> impl ExactSizeIterator<Item = AsIndex> + Clone + '_ {
        self.class_slice(ix, Relationship::Peer)
            .iter()
            .map(|nb| nb.index)
    }

    /// The transit providers of `ix`.
    pub fn providers(&self, ix: AsIndex) -> impl ExactSizeIterator<Item = AsIndex> + Clone + '_ {
        self.class_slice(ix, Relationship::Provider)
            .iter()
            .map(|nb| nb.index)
    }

    /// The siblings of `ix` (same organization).
    pub fn siblings(&self, ix: AsIndex) -> impl ExactSizeIterator<Item = AsIndex> + Clone + '_ {
        self.class_slice(ix, Relationship::Sibling)
            .iter()
            .map(|nb| nb.index)
    }

    /// Total number of neighbors of `ix` across all relationship classes.
    pub fn degree(&self, ix: AsIndex) -> usize {
        self.neighbors(ix).len()
    }

    /// Number of customers of `ix`.
    pub fn num_customers(&self, ix: AsIndex) -> usize {
        self.class_slice(ix, Relationship::Customer).len()
    }

    /// Number of providers of `ix`.
    pub fn num_providers(&self, ix: AsIndex) -> usize {
        self.class_slice(ix, Relationship::Provider).len()
    }

    /// Number of peers of `ix`.
    pub fn num_peers(&self, ix: AsIndex) -> usize {
        self.class_slice(ix, Relationship::Peer).len()
    }

    /// Whether `ix` sells transit to at least one customer.
    pub fn is_transit(&self, ix: AsIndex) -> bool {
        self.num_customers(ix) > 0
    }

    /// Whether `ix` is a stub (no customers).
    pub fn is_stub(&self, ix: AsIndex) -> bool {
        !self.is_transit(ix)
    }

    /// The sibling-group id of `ix`. ASes in the same organization share a
    /// group id; ASes without sibling links form singleton groups.
    pub fn sibling_group(&self, ix: AsIndex) -> u32 {
        self.sibling_group[ix.usize()]
    }

    /// Number of distinct sibling groups (equals `num_ases` when there are
    /// no sibling links).
    pub fn num_sibling_groups(&self) -> usize {
        self.num_sibling_groups as usize
    }

    /// Whether `a` and `b` belong to the same organization.
    pub fn same_organization(&self, a: AsIndex, b: AsIndex) -> bool {
        self.sibling_group(a) == self.sibling_group(b)
    }

    /// The tier-1 set.
    ///
    /// If the topology was built with declared tier-1 metadata (the
    /// synthetic generator always declares its clique), that set is
    /// returned. Otherwise a structural heuristic is used: every AS with no
    /// providers and at least one customer or peer. The heuristic is
    /// computed on each call; cache the result if used in a loop.
    pub fn tier1s(&self) -> Vec<AsIndex> {
        if !self.tier1.is_empty() {
            return self.tier1.clone();
        }
        self.indices()
            .filter(|&ix| {
                self.num_providers(ix) == 0
                    && (self.num_customers(ix) > 0 || self.num_peers(ix) > 0)
            })
            .collect()
    }

    /// Whether tier-1 membership was declared explicitly at build time.
    pub fn has_declared_tier1(&self) -> bool {
        !self.tier1.is_empty()
    }

    /// All transit ASes (at least one customer), in index order.
    pub fn transit_ases(&self) -> Vec<AsIndex> {
        self.indices().filter(|&ix| self.is_transit(ix)).collect()
    }

    /// All stub ASes (no customers), in index order.
    pub fn stub_ases(&self) -> Vec<AsIndex> {
        self.indices().filter(|&ix| self.is_stub(ix)).collect()
    }

    /// Reconstructs a [`TopologyBuilder`] holding the same ASes and links,
    /// for topology surgery (e.g. the re-homing experiments of §VII).
    ///
    /// Each link is emitted once, from the endpoint with the smaller dense
    /// index, so rebuilding yields identical indices for all original ASes.
    pub fn to_builder(&self) -> TopologyBuilder {
        let mut b = TopologyBuilder::with_capacity(self.num_ases(), self.num_links());
        for asn in self.ids() {
            b.add_as(asn);
        }
        for ix in self.indices() {
            for nb in self.neighbors(ix) {
                if nb.index.raw() > ix.raw() || nb.rel == Relationship::Customer {
                    // Emit from the canonical side exactly once: for
                    // asymmetric links the provider side emits; for
                    // symmetric links the smaller index emits.
                    let kind = match nb.rel {
                        Relationship::Customer => LinkKind::ProviderToCustomer,
                        Relationship::Peer => LinkKind::PeerToPeer,
                        Relationship::Sibling => LinkKind::SiblingToSibling,
                        Relationship::Provider => continue,
                    };
                    if kind != LinkKind::ProviderToCustomer && nb.index.raw() < ix.raw() {
                        continue;
                    }
                    let _ = b.add_link(self.id_of(ix), self.id_of(nb.index), kind);
                }
            }
        }
        for &t in &self.tier1 {
            b.declare_tier1(self.id_of(t));
        }
        b
    }

    /// Converts the topology into a [`petgraph`] undirected graph whose node
    /// weights are ASNs and edge weights are [`LinkKind`]s (from the
    /// lower-index endpoint's perspective).
    ///
    /// Useful for interop with generic graph algorithms; the simulation hot
    /// paths in this workspace use the CSR representation directly.
    pub fn to_petgraph(&self) -> petgraph::graph::UnGraph<AsId, LinkKind> {
        let mut g = petgraph::graph::UnGraph::with_capacity(self.num_ases(), self.num_links());
        let nodes: Vec<_> = self.ids().map(|id| g.add_node(id)).collect();
        for ix in self.indices() {
            for nb in self.neighbors(ix) {
                let kind = match nb.rel {
                    Relationship::Customer => LinkKind::ProviderToCustomer,
                    Relationship::Peer if nb.index.raw() > ix.raw() => LinkKind::PeerToPeer,
                    Relationship::Sibling if nb.index.raw() > ix.raw() => {
                        LinkKind::SiblingToSibling
                    }
                    _ => continue,
                };
                g.add_edge(nodes[ix.usize()], nodes[nb.index.usize()], kind);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_triples, LinkKind::*};

    fn diamond() -> Topology {
        // 1 and 2 are tier-1-like peers; 3 buys from both; 4 buys from 3.
        topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 3, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
        ])
    }

    #[test]
    fn class_slices_partition_neighbors() {
        let t = diamond();
        for ix in t.indices() {
            let total = t.degree(ix);
            let parts = t.customers(ix).count()
                + t.peers(ix).count()
                + t.providers(ix).count()
                + t.siblings(ix).count();
            assert_eq!(total, parts);
        }
    }

    #[test]
    fn relationship_views_are_symmetric() {
        let t = diamond();
        let i1 = t.index_of(AsId::new(1)).unwrap();
        let i3 = t.index_of(AsId::new(3)).unwrap();
        assert!(t.customers(i1).any(|c| c == i3));
        assert!(t.providers(i3).any(|p| p == i1));
    }

    #[test]
    fn neighbor_lists_sorted_by_class_then_index() {
        let t = diamond();
        for ix in t.indices() {
            let ns = t.neighbors(ix);
            for w in ns.windows(2) {
                assert!(
                    (w[0].rel.order(), w[0].index.raw()) < (w[1].rel.order(), w[1].index.raw())
                );
            }
        }
    }

    #[test]
    fn transit_and_stub_classification() {
        let t = diamond();
        let i3 = t.index_of(AsId::new(3)).unwrap();
        let i4 = t.index_of(AsId::new(4)).unwrap();
        assert!(t.is_transit(i3));
        assert!(t.is_stub(i4));
        assert_eq!(t.transit_ases().len(), 3);
        assert_eq!(t.stub_ases().len(), 1);
    }

    #[test]
    fn tier1_heuristic_finds_provider_free_ases() {
        let t = diamond();
        assert!(!t.has_declared_tier1());
        let t1: Vec<_> = t.tier1s().iter().map(|&ix| t.id_of(ix)).collect();
        assert_eq!(t1, vec![AsId::new(1), AsId::new(2)]);
    }

    #[test]
    fn declared_tier1_wins_over_heuristic() {
        let mut b = TopologyBuilder::new();
        b.add_link(AsId::new(1), AsId::new(2), ProviderToCustomer)
            .unwrap();
        b.declare_tier1(AsId::new(1));
        let t = b.build().unwrap();
        assert!(t.has_declared_tier1());
        assert_eq!(t.tier1s().len(), 1);
    }

    #[test]
    fn sibling_groups_union_transitively() {
        let t = topology_from_triples(&[
            (1, 2, SiblingToSibling),
            (2, 3, SiblingToSibling),
            (4, 5, PeerToPeer),
        ]);
        let ix = |n| t.index_of(AsId::new(n)).unwrap();
        assert!(t.same_organization(ix(1), ix(3)));
        assert!(!t.same_organization(ix(1), ix(4)));
        assert_eq!(t.num_sibling_groups(), 3); // {1,2,3}, {4}, {5}
    }

    #[test]
    fn link_kind_counts() {
        let t = diamond();
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.num_p2c_links(), 3);
        assert_eq!(t.num_p2p_links(), 1);
        assert_eq!(t.num_s2s_links(), 0);
    }

    #[test]
    fn to_builder_roundtrip_preserves_structure() {
        let t = topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 3, ProviderToCustomer),
            (2, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (4, 5, SiblingToSibling),
        ]);
        let t2 = t.to_builder().build().unwrap();
        assert_eq!(t2.num_ases(), t.num_ases());
        assert_eq!(t2.num_links(), t.num_links());
        assert_eq!(t2.num_p2c_links(), t.num_p2c_links());
        assert_eq!(t2.num_p2p_links(), t.num_p2p_links());
        assert_eq!(t2.num_s2s_links(), t.num_s2s_links());
        for ix in t.indices() {
            assert_eq!(t.id_of(ix), t2.id_of(ix));
            assert_eq!(t.neighbors(ix), t2.neighbors(ix));
        }
    }

    #[test]
    fn petgraph_conversion_counts_match() {
        let t = diamond();
        let g = t.to_petgraph();
        assert_eq!(g.node_count(), t.num_ases());
        assert_eq!(g.edge_count(), t.num_links());
        // Connectivity check via petgraph as an independent oracle.
        assert_eq!(petgraph::algo::connected_components(&g), 1);
    }

    #[test]
    fn index_of_unknown_is_none() {
        let t = diamond();
        assert!(t.index_of(AsId::new(999)).is_none());
    }
}
