//! Identifiers for autonomous systems.
//!
//! Two identifier spaces coexist:
//!
//! * [`AsId`] — the globally unique autonomous-system *number* (ASN) as it
//!   appears in registry data and BGP messages.
//! * [`AsIndex`] — a dense index `0..n` assigned by a [`Topology`] so that
//!   per-AS state can live in flat arrays on the simulation hot path.
//!
//! [`Topology`]: crate::Topology

use core::fmt;
use std::num::ParseIntError;
use std::str::FromStr;

/// An autonomous-system number (ASN), e.g. `AS98`.
///
/// This is the *external* identifier: stable across topologies and suitable
/// for display, parsing and persistence. Simulation engines should convert it
/// to an [`AsIndex`] via [`Topology::index_of`] once and work with indices.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::AsId;
///
/// let a: AsId = "AS98".parse()?;
/// assert_eq!(a, AsId::new(98));
/// assert_eq!(a.to_string(), "AS98");
/// # Ok::<(), bgpsim_topology::ParseAsIdError>(())
/// ```
///
/// [`Topology::index_of`]: crate::Topology::index_of
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct AsId(u32);

impl AsId {
    /// Creates an ASN from its numeric value.
    pub const fn new(asn: u32) -> Self {
        AsId(asn)
    }

    /// Returns the numeric ASN value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for AsId {
    fn from(asn: u32) -> Self {
        AsId(asn)
    }
}

impl From<AsId> for u32 {
    fn from(id: AsId) -> Self {
        id.0
    }
}

/// Error returned when parsing an [`AsId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsIdError {
    kind: ParseAsIdErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseAsIdErrorKind {
    Empty,
    Int(ParseIntError),
}

impl fmt::Display for ParseAsIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseAsIdErrorKind::Empty => write!(f, "empty autonomous-system number"),
            ParseAsIdErrorKind::Int(e) => write!(f, "invalid autonomous-system number: {e}"),
        }
    }
}

impl std::error::Error for ParseAsIdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ParseAsIdErrorKind::Empty => None,
            ParseAsIdErrorKind::Int(e) => Some(e),
        }
    }
}

impl FromStr for AsId {
    type Err = ParseAsIdError;

    /// Parses either a bare number (`"98"`) or the `AS`-prefixed form
    /// (`"AS98"`, case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .or_else(|| s.strip_prefix("aS"))
            .unwrap_or(s);
        if digits.is_empty() {
            return Err(ParseAsIdError {
                kind: ParseAsIdErrorKind::Empty,
            });
        }
        digits.parse::<u32>().map(AsId).map_err(|e| ParseAsIdError {
            kind: ParseAsIdErrorKind::Int(e),
        })
    }
}

/// A dense per-topology index in `0..topology.num_ases()`.
///
/// Indices are only meaningful relative to the [`Topology`] that produced
/// them; mixing indices across topologies is a logic error (it cannot be
/// detected at runtime and will silently address the wrong AS).
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct AsIndex(u32);

impl AsIndex {
    /// Creates an index from a raw `u32`.
    pub const fn new(raw: u32) -> Self {
        AsIndex(raw)
    }

    /// Returns the raw index value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, for direct array addressing.
    pub const fn usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AsIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for AsIndex {
    fn from(raw: u32) -> Self {
        AsIndex(raw)
    }
}

impl From<AsIndex> for u32 {
    fn from(ix: AsIndex) -> Self {
        ix.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_display_roundtrip() {
        let id = AsId::new(55857);
        assert_eq!(id.to_string(), "AS55857");
        assert_eq!("AS55857".parse::<AsId>().unwrap(), id);
        assert_eq!("55857".parse::<AsId>().unwrap(), id);
        assert_eq!("as55857".parse::<AsId>().unwrap(), id);
    }

    #[test]
    fn asid_parse_rejects_garbage() {
        assert!("".parse::<AsId>().is_err());
        assert!("AS".parse::<AsId>().is_err());
        assert!("ASxyz".parse::<AsId>().is_err());
        assert!("-3".parse::<AsId>().is_err());
        assert!("4294967296".parse::<AsId>().is_err());
    }

    #[test]
    fn asid_parse_error_displays() {
        let e = "AS".parse::<AsId>().unwrap_err();
        assert!(e.to_string().contains("empty"));
        let e = "ASzz".parse::<AsId>().unwrap_err();
        assert!(e.to_string().contains("invalid"));
    }

    #[test]
    fn asid_ordering_is_numeric() {
        assert!(AsId::new(2) < AsId::new(10));
    }

    #[test]
    fn asindex_helpers() {
        let ix = AsIndex::new(7);
        assert_eq!(ix.raw(), 7);
        assert_eq!(ix.usize(), 7);
        assert_eq!(ix.to_string(), "#7");
        assert_eq!(u32::from(ix), 7);
        assert_eq!(AsIndex::from(7u32), ix);
    }

    #[test]
    fn conversions() {
        assert_eq!(u32::from(AsId::new(5)), 5);
        assert_eq!(AsId::from(5u32), AsId::new(5));
    }
}
