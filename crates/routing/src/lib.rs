//! BGP route propagation over AS-level topologies.
//!
//! This crate implements the routing model of *"Incremental Deployment
//! Strategies for Effective Detection and Prevention of BGP Origin
//! Hijacks"* (ICDCS 2014), §III:
//!
//! * `LOCAL_PREF` prefers customer routes over peer routes over provider
//!   routes; ties break to the shorter AS path; tier-1 routers always take
//!   the shortest path ([`policy`]).
//! * Valley-free export with sibling groups acting as one AS.
//! * Generation-stepped propagation until convergence, observable message
//!   by message ([`engine::generation`], [`Observer`]).
//! * Route-origin-validation filters and defensive stub filters
//!   ([`FilterContext`]), the paper's §V prevention mechanisms.
//!
//! A second, closed-form engine ([`engine::stable`]) computes the stable
//! solution directly under strict Gao-Rexford policy, and
//! [`engine::race`] extends it to the paper policy via a tier-1
//! fixed-point; property tests pin all engines to each other.
//!
//! # Quick start
//!
//! ```
//! use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
//! use bgpsim_routing::{propagate, FilterContext, NullObserver, PolicyConfig, SimNet, Workspace};
//!
//! // AS1 provides transit to AS2 and AS3; AS3 announces a prefix.
//! let topo = topology_from_triples(&[
//!     (1, 2, ProviderToCustomer),
//!     (1, 3, ProviderToCustomer),
//! ]);
//! let net = SimNet::new(&topo);
//! let origin = topo.index_of(AsId::new(3)).unwrap();
//! let routes = propagate(
//!     &net,
//!     &[origin],
//!     &FilterContext::none(),
//!     &PolicyConfig::paper(),
//!     &mut Workspace::new(),
//!     &mut NullObserver,
//! );
//! assert_eq!(routes.reached_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod filter;
mod net;
mod observer;
pub mod policy;
mod route;

pub use engine::delta::{propagate_delta, Baseline, DeltaResult, DeltaWorkspace};
pub use engine::generation::{propagate, propagate_announcements, Announcement, Workspace};
pub use engine::race::{solve_race, solve_race_observed, RaceWorkspace, DEFAULT_MAX_ROUNDS};
pub use engine::stable::{solve, solve_observed};
pub use filter::{AsSet, FilterContext};
pub use net::SimNet;
pub use observer::{
    Decision, EngineTelemetry, MessageEvent, NullObserver, Observer, TraceRecorder,
};
pub use policy::{PolicyConfig, PrefClass};
pub use route::{Choice, ConvergenceStats, Propagation};
