//! Routing policy: route preference and valley-free export rules.
//!
//! The paper's policy model (§III):
//!
//! * **Message priority** — `LOCAL_PREF` prefers customer-learned routes
//!   over peer-learned over provider-learned; within a preference class a
//!   strictly shorter AS path wins. Tier-1 routers always accept the
//!   shortest path regardless of class ("this increased the percentage of
//!   real-world matches with RouteViews").
//! * **Propagation policy** — valley-free: customer→provider exports only
//!   own and customer routes; provider→customer exports everything;
//!   peer→peer exports own and customer routes; siblings behave as one AS.

use bgpsim_topology::Relationship;

/// Preference class of a route, ordered by `LOCAL_PREF`
/// (`Provider < Peer < Customer < Origin`).
///
/// `Origin` is the AS's own announcement — always preferred and exported to
/// every neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum PrefClass {
    /// Learned from a transit provider.
    Provider = 0,
    /// Learned from a settlement-free peer.
    Peer = 1,
    /// Learned from a customer.
    Customer = 2,
    /// The AS's own prefix announcement.
    Origin = 3,
}

impl PrefClass {
    /// The preference class a route acquires when learned over a link with
    /// the given relationship (the *sender's* role from the receiver's
    /// perspective).
    ///
    /// Returns `None` for [`Relationship::Sibling`]: sibling-learned routes
    /// inherit the class the route had when it entered the organization,
    /// which the message must carry (see `export_class` in the engines).
    #[must_use]
    pub fn from_sender_rel(rel: Relationship) -> Option<PrefClass> {
        match rel {
            Relationship::Customer => Some(PrefClass::Customer),
            Relationship::Peer => Some(PrefClass::Peer),
            Relationship::Provider => Some(PrefClass::Provider),
            Relationship::Sibling => None,
        }
    }

    /// Raw discriminant, usable as an array index.
    pub const fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`PrefClass::as_u8`].
    ///
    /// # Panics
    ///
    /// Panics if `v > 3`.
    pub fn from_u8(v: u8) -> PrefClass {
        match v {
            0 => PrefClass::Provider,
            1 => PrefClass::Peer,
            2 => PrefClass::Customer,
            3 => PrefClass::Origin,
            other => panic!("invalid PrefClass discriminant {other}"),
        }
    }
}

/// Whether a route with export class `class` may be announced to a neighbor
/// with relationship `to` (the *receiver's* role from the exporter's
/// perspective).
///
/// Valley-free rules:
///
/// | route class ↓ / to → | customer | peer | provider | sibling |
/// |----------------------|----------|------|----------|---------|
/// | `Origin`             | yes      | yes  | yes      | yes     |
/// | `Customer`           | yes      | yes  | yes      | yes     |
/// | `Peer`               | yes      | no   | no       | yes     |
/// | `Provider`           | yes      | no   | no       | yes     |
#[must_use]
pub fn may_export(class: PrefClass, to: Relationship) -> bool {
    match to {
        Relationship::Customer | Relationship::Sibling => true,
        Relationship::Peer | Relationship::Provider => {
            matches!(class, PrefClass::Origin | PrefClass::Customer)
        }
    }
}

/// Engine-wide policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PolicyConfig {
    /// Tier-1 routers compare by path length first, ignoring `LOCAL_PREF`
    /// (the paper's §III refinement). Default `true`.
    pub tier1_shortest_path: bool,
    /// Hard cap on propagation generations; exceeding it is reported as
    /// non-convergence. Valley-free topologies converge well under this.
    pub max_generations: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            tier1_shortest_path: true,
            max_generations: 100,
        }
    }
}

impl PolicyConfig {
    /// The paper's configuration (tier-1 shortest-path rule on).
    pub fn paper() -> PolicyConfig {
        PolicyConfig::default()
    }

    /// Strict Gao-Rexford preference at every AS (tier-1 rule off). This is
    /// the mode in which [`crate::engine::StableSolver`] provably computes
    /// the same routes as the message-passing engine.
    pub fn strict_gao_rexford() -> PolicyConfig {
        PolicyConfig {
            tier1_shortest_path: false,
            ..PolicyConfig::default()
        }
    }
}

/// Comparison key for route selection at a non-tier-1 AS: larger is better.
///
/// `tie` should be a *smaller-is-better* value folded in negated (we use
/// the neighbor slot so the lowest-index neighbor wins ties), making
/// selection order-independent and deterministic.
#[inline]
#[must_use]
pub fn standard_key(class: PrefClass, len: u16, tie_slot: u32) -> u64 {
    // class (2 bits) | !len (16 bits) | !slot (32 bits)
    ((class.as_u8() as u64) << 48) | ((!len as u64) << 32) | (!tie_slot as u64)
}

/// Comparison key at a tier-1 AS when the shortest-path rule is enabled:
/// length dominates, then class, then the tie slot.
#[inline]
#[must_use]
pub fn tier1_key(class: PrefClass, len: u16, tie_slot: u32) -> u64 {
    ((!len as u64) << 34) | ((class.as_u8() as u64) << 32) | (!tie_slot as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_matches_local_pref() {
        assert!(PrefClass::Customer > PrefClass::Peer);
        assert!(PrefClass::Peer > PrefClass::Provider);
        assert!(PrefClass::Origin > PrefClass::Customer);
    }

    #[test]
    fn class_from_relationship() {
        assert_eq!(
            PrefClass::from_sender_rel(Relationship::Customer),
            Some(PrefClass::Customer)
        );
        assert_eq!(
            PrefClass::from_sender_rel(Relationship::Peer),
            Some(PrefClass::Peer)
        );
        assert_eq!(
            PrefClass::from_sender_rel(Relationship::Provider),
            Some(PrefClass::Provider)
        );
        assert_eq!(PrefClass::from_sender_rel(Relationship::Sibling), None);
    }

    #[test]
    fn u8_roundtrip() {
        for c in [
            PrefClass::Provider,
            PrefClass::Peer,
            PrefClass::Customer,
            PrefClass::Origin,
        ] {
            assert_eq!(PrefClass::from_u8(c.as_u8()), c);
        }
    }

    #[test]
    #[should_panic(expected = "invalid PrefClass")]
    fn bad_discriminant_panics() {
        let _ = PrefClass::from_u8(9);
    }

    #[test]
    fn export_matrix_is_valley_free() {
        use Relationship::*;
        // Own and customer routes go everywhere.
        for class in [PrefClass::Origin, PrefClass::Customer] {
            for to in [Customer, Peer, Provider, Sibling] {
                assert!(may_export(class, to), "{class:?} to {to:?}");
            }
        }
        // Peer/provider routes go only down (and to siblings).
        for class in [PrefClass::Peer, PrefClass::Provider] {
            assert!(may_export(class, Customer));
            assert!(may_export(class, Sibling));
            assert!(!may_export(class, Peer));
            assert!(!may_export(class, Provider));
        }
    }

    #[test]
    fn standard_key_orders_class_then_len_then_slot() {
        let a = standard_key(PrefClass::Customer, 9, 5);
        let b = standard_key(PrefClass::Peer, 1, 0);
        assert!(a > b, "class dominates length");
        let c = standard_key(PrefClass::Peer, 2, 9);
        let d = standard_key(PrefClass::Peer, 3, 0);
        assert!(c > d, "shorter wins within class");
        let e = standard_key(PrefClass::Peer, 2, 3);
        let f = standard_key(PrefClass::Peer, 2, 7);
        assert!(e > f, "lower slot wins ties");
    }

    #[test]
    fn tier1_key_orders_len_first() {
        let short_provider = tier1_key(PrefClass::Provider, 2, 9);
        let long_customer = tier1_key(PrefClass::Customer, 3, 0);
        assert!(short_provider > long_customer);
        let a = tier1_key(PrefClass::Customer, 2, 4);
        let b = tier1_key(PrefClass::Provider, 2, 4);
        assert!(a > b, "class breaks length ties");
    }

    #[test]
    fn policy_presets() {
        assert!(PolicyConfig::paper().tier1_shortest_path);
        assert!(!PolicyConfig::strict_gao_rexford().tier1_shortest_path);
    }
}
