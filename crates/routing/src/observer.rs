//! Observation hooks for propagation engines.
//!
//! The paper's polar visualizations (fig. 1) draw every announcement of
//! every generation, colored by whether it was accepted (red: the bogus
//! route polluted the AS) or rejected (green: the AS already had a
//! preferred path). Engines report each delivered message to an
//! [`Observer`]; [`NullObserver`] compiles to nothing for bulk sweeps and
//! [`TraceRecorder`] retains the full event stream for visualization.

use bgpsim_topology::AsIndex;

use crate::route::ConvergenceStats;

/// What happened to one delivered announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Decision {
    /// Accepted and became the receiver's best route.
    NewBest,
    /// Stored in the Adj-RIB-In but a preferred route already exists.
    Stored,
    /// Rejected: the receiver (or its sibling group) is already on the
    /// AS path.
    RejectedLoop,
    /// Rejected by a route-origin-validation filter.
    RejectedOrigin,
    /// Rejected by a provider's defensive stub filter.
    RejectedStub,
    /// A withdrawal: the sender no longer announces the prefix to this
    /// neighbor, and the stored entry (if any) was removed.
    Withdrawn,
}

impl Decision {
    /// Whether the announcement was installed (as best or alternate).
    #[must_use]
    pub fn is_installed(self) -> bool {
        matches!(self, Decision::NewBest | Decision::Stored)
    }
}

/// One delivered announcement, as seen by an [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MessageEvent {
    /// Generation in which the message was delivered (1-based).
    pub generation: u32,
    /// Sending AS.
    pub from: AsIndex,
    /// Receiving AS.
    pub to: AsIndex,
    /// Origin of the announced route.
    pub origin: AsIndex,
    /// AS-path length of the announced route at the receiver.
    pub len: u16,
    /// The receiver's decision.
    pub decision: Decision,
}

/// Receives engine events during a propagation.
///
/// All methods have empty defaults; implement only what you need. Engines
/// are generic over the observer so [`NullObserver`] adds zero overhead.
pub trait Observer {
    /// A new generation of messages is about to be delivered.
    fn on_generation_start(&mut self, generation: u32) {
        let _ = generation;
    }

    /// One announcement was delivered and decided on.
    fn on_message(&mut self, event: MessageEvent) {
        let _ = event;
    }

    /// The propagation converged (or hit its generation cap). Called once
    /// per engine run with the final counters — by the generation engine,
    /// the delta engine, and [`crate::engine::stable::solve_observed`]
    /// alike, so a collector sees every run regardless of dispatch.
    fn on_converged(&mut self, stats: &ConvergenceStats) {
        let _ = stats;
    }
}

/// Observer that ignores everything (for bulk sweeps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Aggregating counter collector over any number of engine runs.
///
/// Records one [`ConvergenceStats`] per [`Observer::on_converged`] call and
/// sums the counters, so a sweep can answer "how many messages did the
/// engine deliver in total, and how did rejects break down by reason?"
/// without touching the per-message hook — collection cost is one add per
/// *run*, not per message.
///
/// # Examples
///
/// ```
/// use bgpsim_routing::{ConvergenceStats, EngineTelemetry, Observer};
///
/// let mut t = EngineTelemetry::new();
/// t.on_converged(&ConvergenceStats {
///     generations: 3,
///     messages: 10,
///     accepted: 4,
///     ..ConvergenceStats::default()
/// });
/// assert_eq!(t.runs, 1);
/// assert_eq!(t.messages, 10);
/// assert_eq!(t.max_generations, 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Engine runs recorded.
    pub runs: u64,
    /// Total announcements delivered across all runs.
    pub messages: u64,
    /// Announcements that changed some AS's best route. The stable solver
    /// reports its settled-AS count here (it delivers no messages).
    pub accepted: u64,
    /// Announcements rejected by the AS-path loop check.
    pub loop_rejected: u64,
    /// Announcements rejected by route-origin-validation filters.
    pub filter_rejected: u64,
    /// Announcements rejected by defensive stub filters.
    pub stub_rejected: u64,
    /// Withdrawals delivered.
    pub withdrawals: u64,
    /// Sum of generations-to-convergence over all runs.
    pub generations_total: u64,
    /// Largest single-run generation count seen.
    pub max_generations: u32,
    /// Runs that hit the generation cap before draining their queues.
    pub truncated_runs: u64,
}

impl EngineTelemetry {
    /// Creates a collector with all counters at zero.
    #[must_use]
    pub fn new() -> EngineTelemetry {
        EngineTelemetry::default()
    }

    /// Adds one run's final counters.
    pub fn record(&mut self, stats: &ConvergenceStats) {
        self.runs += 1;
        self.messages += stats.messages;
        self.accepted += stats.accepted;
        self.loop_rejected += stats.loop_rejected;
        self.filter_rejected += stats.filter_rejected;
        self.stub_rejected += stats.stub_rejected;
        self.withdrawals += stats.withdrawals;
        self.generations_total += u64::from(stats.generations);
        self.max_generations = self.max_generations.max(stats.generations);
        self.truncated_runs += u64::from(stats.truncated);
    }

    /// Folds another collector's counters into this one (for merging
    /// per-worker collectors after a parallel sweep).
    pub fn merge(&mut self, other: &EngineTelemetry) {
        self.runs += other.runs;
        self.messages += other.messages;
        self.accepted += other.accepted;
        self.loop_rejected += other.loop_rejected;
        self.filter_rejected += other.filter_rejected;
        self.stub_rejected += other.stub_rejected;
        self.withdrawals += other.withdrawals;
        self.generations_total += other.generations_total;
        self.max_generations = self.max_generations.max(other.max_generations);
        self.truncated_runs += other.truncated_runs;
    }

    /// Total announcements rejected, over all reject reasons.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.loop_rejected + self.filter_rejected + self.stub_rejected
    }
}

impl Observer for EngineTelemetry {
    fn on_converged(&mut self, stats: &ConvergenceStats) {
        self.record(stats);
    }
}

/// Observer that records every event, grouped by generation.
///
/// # Examples
///
/// ```
/// use bgpsim_routing::TraceRecorder;
///
/// let trace = TraceRecorder::new();
/// assert_eq!(trace.num_generations(), 0);
/// assert!(trace.events().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<MessageEvent>,
    generations: u32,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// All recorded events, in delivery order.
    pub fn events(&self) -> &[MessageEvent] {
        &self.events
    }

    /// Number of generations observed.
    pub fn num_generations(&self) -> u32 {
        self.generations
    }

    /// Events of one generation (1-based), in delivery order.
    pub fn generation(&self, generation: u32) -> impl Iterator<Item = &MessageEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| e.generation == generation)
    }

    /// Clears the recorder for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
        self.generations = 0;
    }
}

impl Observer for TraceRecorder {
    fn on_generation_start(&mut self, generation: u32) {
        self.generations = self.generations.max(generation);
    }

    fn on_message(&mut self, event: MessageEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(generation: u32, decision: Decision) -> MessageEvent {
        MessageEvent {
            generation,
            from: AsIndex::new(0),
            to: AsIndex::new(1),
            origin: AsIndex::new(0),
            len: 1,
            decision,
        }
    }

    #[test]
    fn recorder_groups_by_generation() {
        let mut t = TraceRecorder::new();
        t.on_generation_start(1);
        t.on_message(ev(1, Decision::NewBest));
        t.on_message(ev(1, Decision::Stored));
        t.on_generation_start(2);
        t.on_message(ev(2, Decision::RejectedLoop));
        assert_eq!(t.num_generations(), 2);
        assert_eq!(t.generation(1).count(), 2);
        assert_eq!(t.generation(2).count(), 1);
        assert_eq!(t.events().len(), 3);
        t.clear();
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.num_generations(), 0);
    }

    #[test]
    fn telemetry_records_and_merges() {
        let run = |generations, messages, truncated| ConvergenceStats {
            generations,
            messages,
            accepted: messages / 2,
            loop_rejected: 1,
            filter_rejected: 2,
            stub_rejected: 3,
            withdrawals: 1,
            truncated,
        };
        let mut a = EngineTelemetry::new();
        a.on_converged(&run(4, 10, false));
        a.on_converged(&run(7, 20, true));
        let mut b = EngineTelemetry::new();
        b.on_converged(&run(2, 6, false));
        a.merge(&b);
        assert_eq!(a.runs, 3);
        assert_eq!(a.messages, 36);
        assert_eq!(a.accepted, 18);
        assert_eq!(a.rejected(), 18); // (1 + 2 + 3) per run
        assert_eq!(a.withdrawals, 3);
        assert_eq!(a.generations_total, 13);
        assert_eq!(a.max_generations, 7);
        assert_eq!(a.truncated_runs, 1);
    }

    #[test]
    fn decision_installed() {
        assert!(Decision::NewBest.is_installed());
        assert!(Decision::Stored.is_installed());
        assert!(!Decision::RejectedLoop.is_installed());
        assert!(!Decision::RejectedOrigin.is_installed());
        assert!(!Decision::RejectedStub.is_installed());
        assert!(!Decision::Withdrawn.is_installed());
    }
}
