//! Observation hooks for propagation engines.
//!
//! The paper's polar visualizations (fig. 1) draw every announcement of
//! every generation, colored by whether it was accepted (red: the bogus
//! route polluted the AS) or rejected (green: the AS already had a
//! preferred path). Engines report each delivered message to an
//! [`Observer`]; [`NullObserver`] compiles to nothing for bulk sweeps and
//! [`TraceRecorder`] retains the full event stream for visualization.

use bgpsim_topology::AsIndex;

/// What happened to one delivered announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Decision {
    /// Accepted and became the receiver's best route.
    NewBest,
    /// Stored in the Adj-RIB-In but a preferred route already exists.
    Stored,
    /// Rejected: the receiver (or its sibling group) is already on the
    /// AS path.
    RejectedLoop,
    /// Rejected by a route-origin-validation filter.
    RejectedOrigin,
    /// Rejected by a provider's defensive stub filter.
    RejectedStub,
    /// A withdrawal: the sender no longer announces the prefix to this
    /// neighbor, and the stored entry (if any) was removed.
    Withdrawn,
}

impl Decision {
    /// Whether the announcement was installed (as best or alternate).
    #[must_use]
    pub fn is_installed(self) -> bool {
        matches!(self, Decision::NewBest | Decision::Stored)
    }
}

/// One delivered announcement, as seen by an [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MessageEvent {
    /// Generation in which the message was delivered (1-based).
    pub generation: u32,
    /// Sending AS.
    pub from: AsIndex,
    /// Receiving AS.
    pub to: AsIndex,
    /// Origin of the announced route.
    pub origin: AsIndex,
    /// AS-path length of the announced route at the receiver.
    pub len: u16,
    /// The receiver's decision.
    pub decision: Decision,
}

/// Receives engine events during a propagation.
///
/// All methods have empty defaults; implement only what you need. Engines
/// are generic over the observer so [`NullObserver`] adds zero overhead.
pub trait Observer {
    /// A new generation of messages is about to be delivered.
    fn on_generation_start(&mut self, generation: u32) {
        let _ = generation;
    }

    /// One announcement was delivered and decided on.
    fn on_message(&mut self, event: MessageEvent) {
        let _ = event;
    }
}

/// Observer that ignores everything (for bulk sweeps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Observer that records every event, grouped by generation.
///
/// # Examples
///
/// ```
/// use bgpsim_routing::TraceRecorder;
///
/// let trace = TraceRecorder::new();
/// assert_eq!(trace.num_generations(), 0);
/// assert!(trace.events().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<MessageEvent>,
    generations: u32,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// All recorded events, in delivery order.
    pub fn events(&self) -> &[MessageEvent] {
        &self.events
    }

    /// Number of generations observed.
    pub fn num_generations(&self) -> u32 {
        self.generations
    }

    /// Events of one generation (1-based), in delivery order.
    pub fn generation(&self, generation: u32) -> impl Iterator<Item = &MessageEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| e.generation == generation)
    }

    /// Clears the recorder for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
        self.generations = 0;
    }
}

impl Observer for TraceRecorder {
    fn on_generation_start(&mut self, generation: u32) {
        self.generations = self.generations.max(generation);
    }

    fn on_message(&mut self, event: MessageEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(generation: u32, decision: Decision) -> MessageEvent {
        MessageEvent {
            generation,
            from: AsIndex::new(0),
            to: AsIndex::new(1),
            origin: AsIndex::new(0),
            len: 1,
            decision,
        }
    }

    #[test]
    fn recorder_groups_by_generation() {
        let mut t = TraceRecorder::new();
        t.on_generation_start(1);
        t.on_message(ev(1, Decision::NewBest));
        t.on_message(ev(1, Decision::Stored));
        t.on_generation_start(2);
        t.on_message(ev(2, Decision::RejectedLoop));
        assert_eq!(t.num_generations(), 2);
        assert_eq!(t.generation(1).count(), 2);
        assert_eq!(t.generation(2).count(), 1);
        assert_eq!(t.events().len(), 3);
        t.clear();
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.num_generations(), 0);
    }

    #[test]
    fn decision_installed() {
        assert!(Decision::NewBest.is_installed());
        assert!(Decision::Stored.is_installed());
        assert!(!Decision::RejectedLoop.is_installed());
        assert!(!Decision::RejectedOrigin.is_installed());
        assert!(!Decision::RejectedStub.is_installed());
        assert!(!Decision::Withdrawn.is_installed());
    }
}
