//! Route-origin validation and defensive filtering.
//!
//! Two defenses from the paper:
//!
//! * **Origin validation** (§V) — an AS that has deployed a blocking
//!   mechanism (prefix filters built from RPKI/ROVER data, PGBGP, …)
//!   rejects any announcement for a prefix whose origin is not the
//!   authorized origin, and therefore never propagates it.
//! * **Defensive stub filters** (§IV, fig. 4) — "transit suppliers should
//!   know the prefixes announced by their direct customers and defensively
//!   filter any bogus announcements from them": an AS drops announcements
//!   of the simulated prefix received directly from a stub neighbor
//!   (customer or peer) that is not the prefix's authorized origin. With
//!   this on, only transit ASes can attack — the paper's optimistic case.

use bgpsim_topology::{AsIndex, Topology};

/// A compact bit set over dense AS indices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AsSet {
    words: Vec<u64>,
    len: usize,
}

impl AsSet {
    /// An empty set sized for `topo`.
    pub fn empty(topo: &Topology) -> AsSet {
        AsSet {
            words: vec![0; topo.num_ases().div_ceil(64)],
            len: topo.num_ases(),
        }
    }

    /// Builds a set from members.
    pub fn from_members<I>(topo: &Topology, members: I) -> AsSet
    where
        I: IntoIterator<Item = AsIndex>,
    {
        let mut s = AsSet::empty(topo);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// Adds `ix`. Returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of range for the topology this set was sized
    /// for.
    pub fn insert(&mut self, ix: AsIndex) -> bool {
        assert!(ix.usize() < self.len, "index {ix} out of range");
        let w = &mut self.words[ix.usize() / 64];
        let bit = 1u64 << (ix.usize() % 64);
        let newly = *w & bit == 0;
        *w |= bit;
        newly
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, ix: AsIndex) -> bool {
        self.words[ix.usize() / 64] & (1u64 << (ix.usize() % 64)) != 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Capacity (the topology's AS count).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Iterates members in index order.
    pub fn iter(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(AsIndex::new(wi as u32 * 64 + b))
            })
        })
    }
}

impl Extend<AsIndex> for AsSet {
    fn extend<T: IntoIterator<Item = AsIndex>>(&mut self, iter: T) {
        for ix in iter {
            self.insert(ix);
        }
    }
}

/// The defensive configuration active during one propagation.
///
/// `authorized_origin` is the legitimate originator of the prefix under
/// simulation; `validators` are the ASes performing route-origin
/// validation; `stub_defense` enables provider-side stub filtering
/// globally (the paper's "optimistic case").
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterContext<'a> {
    /// The prefix's legitimate origin (routes from it always validate).
    pub authorized_origin: Option<AsIndex>,
    /// ASes rejecting announcements whose origin is unauthorized.
    pub validators: Option<&'a AsSet>,
    /// Every AS filters bogus stub announcements on non-sibling edges:
    /// routes sent by an unauthorized stub *and* routes claiming an
    /// unauthorized stub as origin are dropped. The origin half contains a
    /// stub's hijack within its own organization even when a transit
    /// sibling re-announces it.
    pub stub_defense: bool,
}

impl<'a> FilterContext<'a> {
    /// No filtering at all (the paper's baseline).
    pub fn none() -> FilterContext<'a> {
        FilterContext::default()
    }

    /// Origin validation at `validators`, authorizing `origin`.
    pub fn origin_validation(origin: AsIndex, validators: &'a AsSet) -> FilterContext<'a> {
        FilterContext {
            authorized_origin: Some(origin),
            validators: Some(validators),
            stub_defense: false,
        }
    }

    /// Whether this context can never reject a route — no validators, no
    /// stub defense, nothing authorized. Hot loops use this to skip the
    /// per-edge filter predicates wholesale (the undefended sweeps of the
    /// paper's figures all run inert contexts).
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.authorized_origin.is_none() && self.validators.is_none() && !self.stub_defense
    }

    /// Whether `receiver` rejects a route with the given `origin` under
    /// route-origin validation.
    #[inline]
    pub fn rejects_origin(&self, receiver: AsIndex, origin: AsIndex) -> bool {
        match (self.authorized_origin, self.validators) {
            (Some(auth), Some(v)) => origin != auth && v.contains(receiver),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, LinkKind::*};

    fn topo() -> Topology {
        topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, ProviderToCustomer)])
    }

    #[test]
    fn set_insert_contains_iter() {
        let t = topo();
        let mut s = AsSet::empty(&t);
        assert_eq!(s.count(), 0);
        assert!(s.insert(AsIndex::new(1)));
        assert!(!s.insert(AsIndex::new(1)));
        s.extend([AsIndex::new(2)]);
        assert!(s.contains(AsIndex::new(1)));
        assert!(!s.contains(AsIndex::new(0)));
        assert_eq!(s.count(), 2);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![AsIndex::new(1), AsIndex::new(2)]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let t = topo();
        let mut s = AsSet::empty(&t);
        s.insert(AsIndex::new(99));
    }

    #[test]
    fn filter_context_rejects_only_unauthorized_at_validators() {
        let t = topo();
        let v = AsSet::from_members(&t, [AsIndex::new(0)]);
        let ctx = FilterContext::origin_validation(AsIndex::new(2), &v);
        // Validator rejects a bogus origin.
        assert!(ctx.rejects_origin(AsIndex::new(0), AsIndex::new(1)));
        // Validator accepts the authorized origin.
        assert!(!ctx.rejects_origin(AsIndex::new(0), AsIndex::new(2)));
        // Non-validator accepts anything.
        assert!(!ctx.rejects_origin(AsIndex::new(1), AsIndex::new(1)));
        // Baseline rejects nothing.
        assert!(!FilterContext::none().rejects_origin(AsIndex::new(0), AsIndex::new(1)));
    }

    #[test]
    fn set_across_word_boundaries() {
        use bgpsim_topology::{AsId, LinkKind, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        for i in 0..130u32 {
            b.add_link(
                AsId::new(1000),
                AsId::new(i + 1),
                LinkKind::ProviderToCustomer,
            )
            .unwrap();
        }
        let t = b.build().unwrap();
        let mut s = AsSet::empty(&t);
        for i in [0u32, 63, 64, 127, 128, 130] {
            s.insert(AsIndex::new(i));
        }
        assert_eq!(s.count(), 6);
        assert!(s.contains(AsIndex::new(128)));
        assert!(!s.contains(AsIndex::new(129)));
    }
}
