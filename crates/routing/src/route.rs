//! Route representations and propagation outcomes.

use bgpsim_topology::AsIndex;

use crate::policy::PrefClass;

/// The route an AS selected after convergence, in compact form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Choice {
    /// The origin AS of the selected route.
    pub origin: AsIndex,
    /// The neighbor the route was learned from (`None` if `origin` is the
    /// AS itself).
    pub learned_from: Option<AsIndex>,
    /// AS-path length (number of links to the origin; 0 at the origin).
    pub len: u16,
    /// Preference class under which the route was accepted.
    pub class: PrefClass,
}

/// Result of one propagation: per-AS selections plus convergence stats.
#[derive(Debug, Clone)]
pub struct Propagation {
    choices: Vec<Option<Choice>>,
    stats: ConvergenceStats,
}

/// Counters describing how a propagation converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvergenceStats {
    /// Generations executed before the message queues drained.
    pub generations: u32,
    /// Total announcements delivered.
    pub messages: u64,
    /// Announcements that changed some AS's best route.
    pub accepted: u64,
    /// Announcements rejected by the AS-path loop check.
    pub loop_rejected: u64,
    /// Announcements rejected by route-origin-validation filters.
    pub filter_rejected: u64,
    /// Announcements rejected by defensive stub filters.
    pub stub_rejected: u64,
    /// Withdrawals delivered (implicit route removals).
    pub withdrawals: u64,
    /// True if the generation cap was hit before the queues drained.
    pub truncated: bool,
}

impl Propagation {
    pub(crate) fn new(choices: Vec<Option<Choice>>, stats: ConvergenceStats) -> Propagation {
        Propagation { choices, stats }
    }

    /// The selection of `ix`, or `None` if no route reached it.
    pub fn choice(&self, ix: AsIndex) -> Option<Choice> {
        self.choices[ix.usize()]
    }

    /// Resident heap footprint of the per-AS selection map in bytes
    /// (capacity-based, like [`Baseline::heap_bytes`](crate::Baseline::heap_bytes)).
    pub fn heap_bytes(&self) -> usize {
        self.choices.capacity() * std::mem::size_of::<Option<Choice>>()
    }

    /// Per-AS selections, indexed by dense AS index.
    pub fn choices(&self) -> &[Option<Choice>] {
        &self.choices
    }

    /// Convergence counters.
    pub fn stats(&self) -> ConvergenceStats {
        self.stats
    }

    /// ASes whose selected route originates at `origin`, excluding `origin`
    /// itself. For a hijack simulation with the attacker as `origin`, these
    /// are exactly the *polluted* ASes.
    pub fn captured_by(&self, origin: AsIndex) -> impl Iterator<Item = AsIndex> + '_ {
        self.choices
            .iter()
            .enumerate()
            .filter(move |(i, c)| {
                *i != origin.usize() && matches!(c, Some(ch) if ch.origin == origin)
            })
            .map(|(i, _)| AsIndex::new(i as u32))
    }

    /// Count of ASes captured by `origin` (see [`Propagation::captured_by`]).
    pub fn captured_count(&self, origin: AsIndex) -> usize {
        self.captured_by(origin).count()
    }

    /// Number of ASes that selected *some* route.
    pub fn reached_count(&self) -> usize {
        self.choices.iter().filter(|c| c.is_some()).count()
    }

    /// Reconstructs the AS path from `ix` to its route's origin by walking
    /// the `learned_from` chain. The returned path starts at `ix` and ends
    /// at the origin (so its length is `choice.len + 1`). Returns `None`
    /// if `ix` selected no route.
    ///
    /// # Panics
    ///
    /// Panics if the stored choices are inconsistent (a `learned_from`
    /// chain that does not terminate) — impossible for engine-produced
    /// propagations, whose loop prevention forbids cycles.
    pub fn path_to_origin(&self, ix: AsIndex) -> Option<Vec<AsIndex>> {
        let mut path = vec![ix];
        let mut cur = self.choice(ix)?;
        let mut guard = self.choices.len() + 1;
        while let Some(from) = cur.learned_from {
            path.push(from);
            cur = self.choice(from).expect("learned_from chains are routed");
            guard = guard
                .checked_sub(1)
                .expect("learned_from chain exceeds AS count — cycle");
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_by_excludes_the_origin() {
        let o = AsIndex::new(0);
        let mk = |origin| {
            Some(Choice {
                origin,
                learned_from: None,
                len: 1,
                class: PrefClass::Customer,
            })
        };
        let p = Propagation::new(
            vec![mk(o), mk(o), mk(AsIndex::new(1)), None],
            ConvergenceStats::default(),
        );
        assert_eq!(p.captured_count(o), 1);
        assert_eq!(p.reached_count(), 3);
        assert_eq!(p.captured_by(o).collect::<Vec<_>>(), vec![AsIndex::new(1)]);
        assert!(p.choice(AsIndex::new(3)).is_none());
    }

    #[test]
    fn path_reconstruction_walks_learned_from() {
        let o = AsIndex::new(0);
        let chain = |origin, from: Option<u32>, len| {
            Some(Choice {
                origin,
                learned_from: from.map(AsIndex::new),
                len,
                class: PrefClass::Customer,
            })
        };
        // 2 -> 1 -> 0 (origin).
        let p = Propagation::new(
            vec![
                chain(o, None, 0),
                chain(o, Some(0), 1),
                chain(o, Some(1), 2),
                None,
            ],
            ConvergenceStats::default(),
        );
        let path = p.path_to_origin(AsIndex::new(2)).unwrap();
        assert_eq!(
            path,
            vec![AsIndex::new(2), AsIndex::new(1), AsIndex::new(0)]
        );
        assert_eq!(
            path.len() as u16,
            p.choice(AsIndex::new(2)).unwrap().len + 1
        );
        assert_eq!(p.path_to_origin(AsIndex::new(0)).unwrap(), vec![o]);
        assert!(p.path_to_origin(AsIndex::new(3)).is_none());
    }
}
