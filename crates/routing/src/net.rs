//! Precomputed simulation view of a topology.
//!
//! Propagation engines address neighbors through the topology's CSR arrays
//! and need two extra lookups on the hot path: the *reverse slot* of every
//! directed edge (where the receiver stores its Adj-RIB-In entry for the
//! sender) and a tier-1 membership mask. [`SimNet`] computes both once so
//! thousands of simulations can share them.

use bgpsim_topology::{AsIndex, Relationship, Topology};

/// A topology plus the derived tables the engines need. Build once, share
/// across simulations (it is `Sync`; parallel sweeps borrow it).
#[derive(Debug)]
pub struct SimNet<'t> {
    topo: &'t Topology,
    /// For the directed edge stored at global CSR slot `e` (owner → nbr),
    /// the global CSR slot of the mirror edge (nbr → owner).
    reverse_slot: Vec<u32>,
    /// Global CSR slot of the first neighbor of each AS (length `n + 1`).
    offsets: Vec<u32>,
    /// Tier-1 membership mask.
    tier1: Vec<bool>,
    /// Sibling-group id per AS.
    group: Vec<u32>,
    /// Stub mask (no customers), used by defensive stub filtering.
    stub: Vec<bool>,
}

impl<'t> SimNet<'t> {
    /// Builds the derived tables. `O(n + m log d)`.
    pub fn new(topo: &'t Topology) -> SimNet<'t> {
        let n = topo.num_ases();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for ix in topo.indices() {
            let last = *offsets.last().expect("seeded with 0");
            offsets.push(last + topo.degree(ix) as u32);
        }
        let total = *offsets.last().expect("non-empty") as usize;
        let mut reverse_slot = vec![u32::MAX; total];
        for ix in topo.indices() {
            let base = offsets[ix.usize()];
            for (j, nb) in topo.neighbors(ix).iter().enumerate() {
                let slot = base + j as u32;
                if reverse_slot[slot as usize] != u32::MAX {
                    continue; // already filled from the mirror side
                }
                // Locate `ix` inside the neighbor's list. The neighbor sees
                // us with the reversed relationship; its list is sorted by
                // (class, index), so a linear scan of the class segment is
                // cheap and deterministic.
                let mirror_rel = nb.rel.reversed();
                let their_base = offsets[nb.index.usize()];
                let theirs = topo.neighbors(nb.index);
                let pos = theirs
                    .iter()
                    .position(|o| o.index == ix && o.rel == mirror_rel)
                    .expect("adjacency is symmetric");
                let mirror_slot = their_base + pos as u32;
                reverse_slot[slot as usize] = mirror_slot;
                reverse_slot[mirror_slot as usize] = slot;
            }
        }
        let mut tier1 = vec![false; n];
        for t in topo.tier1s() {
            tier1[t.usize()] = true;
        }
        let group = topo.indices().map(|ix| topo.sibling_group(ix)).collect();
        let stub = topo.indices().map(|ix| topo.is_stub(ix)).collect();
        SimNet {
            topo,
            reverse_slot,
            offsets,
            tier1,
            group,
            stub,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Number of ASes.
    pub fn num_ases(&self) -> usize {
        self.topo.num_ases()
    }

    /// Total number of directed edge slots (`2 × num_links`).
    pub fn num_slots(&self) -> usize {
        self.reverse_slot.len()
    }

    /// Global CSR slot range of `ix`'s neighbor list.
    #[inline]
    pub fn slots_of(&self, ix: AsIndex) -> std::ops::Range<u32> {
        self.offsets[ix.usize()]..self.offsets[ix.usize() + 1]
    }

    /// The neighbor stored at `ix`'s local position `j`.
    #[inline]
    pub fn neighbor(&self, ix: AsIndex, j: usize) -> bgpsim_topology::Neighbor {
        self.topo.neighbors(ix)[j]
    }

    /// Mirror slot of the directed edge at global slot `e`.
    #[inline]
    pub fn reverse_slot(&self, e: u32) -> u32 {
        self.reverse_slot[e as usize]
    }

    /// The AS owning global slot `e` (binary search over offsets; not for
    /// hot paths).
    pub fn owner_of_slot(&self, e: u32) -> AsIndex {
        let i = self.offsets.partition_point(|&o| o <= e) - 1;
        AsIndex::new(i as u32)
    }

    /// Relationship and neighbor for a global slot owned by `owner`.
    #[inline]
    pub fn slot_entry(&self, owner: AsIndex, e: u32) -> bgpsim_topology::Neighbor {
        let local = (e - self.offsets[owner.usize()]) as usize;
        self.topo.neighbors(owner)[local]
    }

    /// Whether `ix` is tier-1.
    #[inline]
    pub fn is_tier1(&self, ix: AsIndex) -> bool {
        self.tier1[ix.usize()]
    }

    /// Sibling group of `ix`.
    #[inline]
    pub fn group(&self, ix: AsIndex) -> u32 {
        self.group[ix.usize()]
    }

    /// Whether `ix` is a stub.
    #[inline]
    pub fn is_stub(&self, ix: AsIndex) -> bool {
        self.stub[ix.usize()]
    }

    /// Relationship of the *sender* as seen by the receiver, for the
    /// receiver-side slot `e`.
    #[inline]
    pub fn rel_at(&self, receiver: AsIndex, e: u32) -> Relationship {
        self.slot_entry(receiver, e).rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    fn reverse_slots_are_involutive_and_correct() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, PeerToPeer),
            (2, 3, ProviderToCustomer),
            (3, 4, SiblingToSibling),
        ]);
        let net = SimNet::new(&topo);
        assert_eq!(net.num_slots(), 2 * topo.num_links());
        for ix in topo.indices() {
            for e in net.slots_of(ix) {
                let r = net.reverse_slot(e);
                assert_eq!(net.reverse_slot(r), e, "mirror is involutive");
                let nb = net.slot_entry(ix, e);
                assert_eq!(net.owner_of_slot(r), nb.index);
                let back = net.slot_entry(nb.index, r);
                assert_eq!(back.index, ix);
                assert_eq!(back.rel, nb.rel.reversed());
            }
        }
    }

    #[test]
    fn masks_and_groups() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, SiblingToSibling)]);
        let net = SimNet::new(&topo);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        assert!(net.is_tier1(ix(1)));
        assert!(!net.is_tier1(ix(2)));
        assert_eq!(net.group(ix(2)), net.group(ix(3)));
        assert!(!net.is_stub(ix(1)));
        assert!(net.is_stub(ix(3)));
    }

    #[test]
    fn owner_of_slot_is_consistent() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (2, 3, PeerToPeer),
        ]);
        let net = SimNet::new(&topo);
        for ix in topo.indices() {
            for e in net.slots_of(ix) {
                assert_eq!(net.owner_of_slot(e), ix);
            }
        }
    }
}
