//! Precomputed simulation view of a topology.
//!
//! Propagation engines address neighbors through the topology's CSR arrays
//! and need two extra lookups on the hot path: the *reverse slot* of every
//! directed edge (where the receiver stores its Adj-RIB-In entry for the
//! sender) and a tier-1 membership mask. [`SimNet`] computes both once so
//! thousands of simulations can share them.

use bgpsim_topology::{AsIndex, Relationship, Topology};

/// Marker ORed into the low (receiver) half of a packed adjacency entry
/// whose receiver is a race leaf (an AS with neither customers nor
/// siblings that is not a tier-1), letting the race solver's relax loop
/// skip leaves on the adjacency word alone. Dense AS indices stay far
/// below 2^31, so the bit is free.
pub(crate) const RACE_LEAF_BIT: u64 = 1 << 31;

/// A topology plus the derived tables the engines need. Build once, share
/// across simulations (it is `Sync`; parallel sweeps borrow it).
#[derive(Debug)]
pub struct SimNet<'t> {
    topo: &'t Topology,
    /// For the directed edge stored at global CSR slot `e` (owner → nbr),
    /// the global CSR slot of the mirror edge (nbr → owner).
    reverse_slot: Vec<u32>,
    /// Global CSR slot of the first neighbor of each AS (length `n + 1`).
    offsets: Vec<u32>,
    /// Tier-1 membership mask.
    tier1: Vec<bool>,
    /// Tier-1 members in index order (the mask, materialized once so the
    /// race solver's per-run setup is O(|tier-1|), not O(n)).
    tier1_list: Vec<AsIndex>,
    /// Sibling-group id per AS.
    group: Vec<u32>,
    /// Stub mask (no customers), used by defensive stub filtering.
    stub: Vec<bool>,
    /// Per-slot packed edge for the race solver's relax loop: the
    /// receiver's dense index in the low 32 bits (leaf marker in
    /// [`RACE_LEAF_BIT`]), the mirror slot ([`SimNet::reverse_slot`]) in
    /// the high 32. One sequential 8-byte load per edge instead of
    /// parallel walks of two arrays.
    race_adj: Vec<u64>,
    /// Per-AS relationship-class boundaries as *absolute* slot positions
    /// (end of customers, of peers, of providers) — the slot-space mirror
    /// of [`Topology::class_bounds`].
    race_cuts: Vec<[u32; 3]>,
    /// Leaf-only adjacency for the race solver's post-convergence leaf
    /// sweep: per AS, its leaf customers then its leaf peers, packed like
    /// [`SimNet::race_adj`] (receiver index | mirror slot << 32, leaf
    /// marker in [`RACE_LEAF_BIT`] — always set here).
    leaf_adj: Vec<u64>,
    /// Per-AS bounds into `leaf_adj` (length `n + 1` interleaved with the
    /// customer/peer split): `[start, end of leaf customers, end]`.
    leaf_cuts: Vec<[u32; 3]>,
    /// Owner of each global slot — the O(1) inverse of [`SimNet::slots_of`].
    /// The delta engine's packed baseline log stores only the receiver-side
    /// slot per message and derives sender/receiver through this table, so
    /// it must be constant-time on the replay hot path (unlike the binary
    /// search in [`SimNet::owner_of_slot`], which this table now backs).
    slot_owner: Vec<u32>,
}

/// Converts a structural size to the `u32` index space every packed table
/// uses, with a loud failure instead of a silent wrap when a topology or
/// schedule outgrows it.
///
/// # Panics
///
/// Panics with a "scale exceeds u32 index space" message naming `what`.
pub(crate) fn checked_u32(v: usize, what: &str) -> u32 {
    u32::try_from(v).unwrap_or_else(|_| panic!("scale exceeds u32 index space: {what} = {v}"))
}

impl<'t> SimNet<'t> {
    /// Builds the derived tables. `O(n + m log d)`.
    pub fn new(topo: &'t Topology) -> SimNet<'t> {
        let n = topo.num_ases();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut running = 0usize;
        for ix in topo.indices() {
            running += topo.degree(ix);
            offsets.push(checked_u32(running, "directed edge slots"));
        }
        let total = *offsets.last().expect("non-empty") as usize;
        let mut reverse_slot = vec![u32::MAX; total];
        for ix in topo.indices() {
            let base = offsets[ix.usize()];
            for (j, nb) in topo.neighbors(ix).iter().enumerate() {
                let slot = base + j as u32;
                if reverse_slot[slot as usize] != u32::MAX {
                    continue; // already filled from the mirror side
                }
                // Locate `ix` inside the neighbor's list. The neighbor sees
                // us with the reversed relationship; its list is sorted by
                // (class, index), so a linear scan of the class segment is
                // cheap and deterministic.
                let mirror_rel = nb.rel.reversed();
                let their_base = offsets[nb.index.usize()];
                let theirs = topo.neighbors(nb.index);
                let pos = theirs
                    .iter()
                    .position(|o| o.index == ix && o.rel == mirror_rel)
                    .expect("adjacency is symmetric");
                let mirror_slot = their_base + pos as u32;
                reverse_slot[slot as usize] = mirror_slot;
                reverse_slot[mirror_slot as usize] = slot;
            }
        }
        let mut tier1 = vec![false; n];
        assert!(n < (1 << 31), "AS index space exceeds the leaf-marker bit");
        let mut tier1_list = topo.tier1s();
        tier1_list.sort_unstable();
        for &t in &tier1_list {
            tier1[t.usize()] = true;
        }
        let group = topo.indices().map(|ix| topo.sibling_group(ix)).collect();
        let stub = topo.indices().map(|ix| topo.is_stub(ix)).collect();
        let mut race_adj = Vec::with_capacity(total);
        let mut race_cuts = Vec::with_capacity(n);
        let mut slot_owner = Vec::with_capacity(total);
        // Leaf = no customers, no siblings, not a tier-1: exports
        // peer-/provider-learned routes to nobody. Consumed below to brand
        // adjacency entries and build the leaf-only sweep tables; the race
        // solver reads only those.
        let mut race_leaf = Vec::with_capacity(n);
        for ix in topo.indices() {
            let base = offsets[ix.usize()];
            for (j, nb) in topo.neighbors(ix).iter().enumerate() {
                let slot = base + j as u32;
                let mirror = reverse_slot[slot as usize];
                race_adj.push(u64::from(nb.index.raw()) | (u64::from(mirror) << 32));
                slot_owner.push(ix.raw());
            }
            let b = topo.class_bounds(ix);
            race_cuts.push([base + b[0] as u32, base + b[1] as u32, base + b[2] as u32]);
            // Tier-1s are excluded even at matching degree shape: the race
            // solver treats them as fixed-point variables (candidacy
            // tallies, sentinel stamps), never as skippable sinks.
            race_leaf.push(b[0] == 0 && b[2] == topo.degree(ix) && !tier1[ix.usize()]);
        }
        // Brand leaf receivers directly in the adjacency word so the race
        // solver's hot loop skips them without a second lookup.
        for packed in &mut race_adj {
            if race_leaf[*packed as u32 as usize] {
                *packed |= RACE_LEAF_BIT;
            }
        }
        let mut leaf_adj = Vec::new();
        let mut leaf_cuts = Vec::with_capacity(n);
        for ix in topo.indices() {
            let base = offsets[ix.usize()] as usize;
            let b = topo.class_bounds(ix);
            let start = leaf_adj.len() as u32;
            for local in [0..b[0], b[0]..b[1]] {
                for j in local {
                    let packed = race_adj[base + j];
                    if packed & RACE_LEAF_BIT != 0 {
                        leaf_adj.push(packed);
                    }
                }
            }
            let nbrs = topo.neighbors(ix);
            let mid = start
                + (0..b[0])
                    .filter(|&j| race_leaf[nbrs[j].index.usize()])
                    .count() as u32;
            leaf_cuts.push([start, mid, leaf_adj.len() as u32]);
        }
        SimNet {
            topo,
            reverse_slot,
            offsets,
            tier1,
            tier1_list,
            group,
            stub,
            race_adj,
            race_cuts,
            leaf_adj,
            leaf_cuts,
            slot_owner,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// Number of ASes.
    pub fn num_ases(&self) -> usize {
        self.topo.num_ases()
    }

    /// Total number of directed edge slots (`2 × num_links`).
    pub fn num_slots(&self) -> usize {
        self.reverse_slot.len()
    }

    /// Global CSR slot range of `ix`'s neighbor list.
    #[inline]
    pub fn slots_of(&self, ix: AsIndex) -> std::ops::Range<u32> {
        self.offsets[ix.usize()]..self.offsets[ix.usize() + 1]
    }

    /// The neighbor stored at `ix`'s local position `j`.
    #[inline]
    pub fn neighbor(&self, ix: AsIndex, j: usize) -> bgpsim_topology::Neighbor {
        self.topo.neighbors(ix)[j]
    }

    /// Mirror slot of the directed edge at global slot `e`.
    #[inline]
    pub fn reverse_slot(&self, e: u32) -> u32 {
        self.reverse_slot[e as usize]
    }

    /// Packed per-slot edges for the race solver's relax loop, indexed by
    /// global slot: receiver index in the low 32 bits, mirror slot in the
    /// high 32.
    #[inline]
    pub(crate) fn race_adj(&self) -> &[u64] {
        &self.race_adj
    }

    /// Absolute slot positions of `x`'s relationship-class boundaries
    /// (end of customers, of peers, of providers); with
    /// [`SimNet::slots_of`] they delimit the four class segments.
    #[inline]
    pub(crate) fn race_cuts(&self, x: usize) -> [u32; 3] {
        self.race_cuts[x]
    }

    /// Leaf-only packed adjacency (see `leaf_adj`).
    #[inline]
    pub(crate) fn leaf_adj(&self) -> &[u64] {
        &self.leaf_adj
    }

    /// Bounds of `x`'s leaf customers / leaf peers inside
    /// [`SimNet::leaf_adj`]: `[start, customer end, peer end]`.
    #[inline]
    pub(crate) fn leaf_cuts(&self, x: usize) -> [u32; 3] {
        self.leaf_cuts[x]
    }

    /// The AS owning global slot `e` (one table load; hot-path safe — the
    /// delta engine derives senders and receivers of packed log entries
    /// through this on every replayed message).
    #[inline]
    pub fn owner_of_slot(&self, e: u32) -> AsIndex {
        AsIndex::new(self.slot_owner[e as usize])
    }

    /// Relationship and neighbor for a global slot owned by `owner`.
    #[inline]
    pub fn slot_entry(&self, owner: AsIndex, e: u32) -> bgpsim_topology::Neighbor {
        let local = (e - self.offsets[owner.usize()]) as usize;
        self.topo.neighbors(owner)[local]
    }

    /// Whether `ix` is tier-1.
    #[inline]
    pub fn is_tier1(&self, ix: AsIndex) -> bool {
        self.tier1[ix.usize()]
    }

    /// All tier-1 ASes, in ascending index order.
    #[inline]
    pub fn tier1_members(&self) -> &[AsIndex] {
        &self.tier1_list
    }

    /// Sibling group of `ix`.
    #[inline]
    pub fn group(&self, ix: AsIndex) -> u32 {
        self.group[ix.usize()]
    }

    /// Whether `ix` is a stub.
    #[inline]
    pub fn is_stub(&self, ix: AsIndex) -> bool {
        self.stub[ix.usize()]
    }

    /// Relationship of the *sender* as seen by the receiver, for the
    /// receiver-side slot `e`.
    #[inline]
    pub fn rel_at(&self, receiver: AsIndex, e: u32) -> Relationship {
        self.slot_entry(receiver, e).rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    fn reverse_slots_are_involutive_and_correct() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, PeerToPeer),
            (2, 3, ProviderToCustomer),
            (3, 4, SiblingToSibling),
        ]);
        let net = SimNet::new(&topo);
        assert_eq!(net.num_slots(), 2 * topo.num_links());
        for ix in topo.indices() {
            for e in net.slots_of(ix) {
                let r = net.reverse_slot(e);
                assert_eq!(net.reverse_slot(r), e, "mirror is involutive");
                let nb = net.slot_entry(ix, e);
                assert_eq!(net.owner_of_slot(r), nb.index);
                let back = net.slot_entry(nb.index, r);
                assert_eq!(back.index, ix);
                assert_eq!(back.rel, nb.rel.reversed());
            }
        }
    }

    #[test]
    fn masks_and_groups() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, SiblingToSibling)]);
        let net = SimNet::new(&topo);
        let ix = |n| topo.index_of(AsId::new(n)).unwrap();
        assert!(net.is_tier1(ix(1)));
        assert!(!net.is_tier1(ix(2)));
        assert_eq!(net.group(ix(2)), net.group(ix(3)));
        assert!(!net.is_stub(ix(1)));
        assert!(net.is_stub(ix(3)));
    }

    #[test]
    fn owner_of_slot_is_consistent() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (2, 3, PeerToPeer),
        ]);
        let net = SimNet::new(&topo);
        for ix in topo.indices() {
            for e in net.slots_of(ix) {
                assert_eq!(net.owner_of_slot(e), ix);
            }
        }
    }
}
