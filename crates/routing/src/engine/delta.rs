//! Incremental re-convergence by race replay (§IV sweep accelerator).
//!
//! The paper's §IV measurement re-runs a two-origin propagation for every
//! (attacker, target) pair — tens of thousands of full simulations per
//! figure, each repeating the *same* honest convergence of the target's
//! announcement while the attacker's routes perturb only a fraction of the
//! network. This module factors the repetition out without changing a
//! single delivered message:
//!
//! 1. [`Baseline::build`] runs the honest propagation **once**, freezing
//!    both the converged per-AS state ([`RibSnapshot`]) and the complete
//!    per-generation message schedule (the race log).
//! 2. [`propagate_delta`] re-runs the race with the attacker's
//!    announcement added, but simulates live only the *contamination
//!    cone*: ASes whose message stream differs from the recorded honest
//!    schedule. Everything outside the cone provably evolves exactly as in
//!    the baseline, so its work — the bulk of the race — is skipped and
//!    its final state is read from the snapshot.
//!
//! # Equivalence guarantee
//!
//! Delta results are bit-identical to a from-scratch propagation of the
//! combined announcement set — **by construction**, not merely where the
//! stable solution is unique. The argument: the engine's race is a
//! deterministic synchronous process, and within one generation the
//! post-delivery state of an AS depends only on the *set* of messages it
//! received (each directed edge carries at most one message per
//! generation, and selection keys are total orders). An AS is recruited
//! into the cone the moment its generation-`g` message set deviates from
//! the recorded schedule — a cone member's exports are compared
//! content-and-path against the log, so equal re-exports do not recruit.
//! On recruitment the AS's exact race state at generation `g` is
//! reconstructed by replaying its recorded message history, after which it
//! runs live through the *same* [`deliver`]/[`export_from`] mechanics as a
//! full run. By induction, every AS ends in exactly the state the full
//! race would give it. The `delta_equivalence` property suite pins the
//! bit-level agreement (choices and polluted sets) across origin,
//! sub-prefix and forged-origin injections under all filter contexts.
//!
//! This construction matters because the paper policy's tier-1
//! shortest-path rule breaks Gao-Rexford uniqueness: rare topologies
//! (sibling-laundered customer routes racing a shorter provider path)
//! have several stable solutions, and "inject after convergence" would
//! land in a different one than the simultaneous race. Replaying the
//! schedule keeps the timing — and therefore the outcome — identical.
//!
//! [`ConvergenceStats`] are *not* part of the guarantee: a delta run
//! counts only the messages it actually processed (deliveries into the
//! cone), which is the point of the exercise.
//!
//! # Sharing
//!
//! A [`Baseline`] is immutable and `Sync`: one baseline per sweep target
//! is shared read-only across rayon workers, each worker holding its own
//! [`DeltaWorkspace`] (epoch-stamped like [`Workspace`], so back-to-back
//! attackers on one worker reuse the overlay arrays without clearing).
//!
//! [`deliver`]: generation::deliver
//! [`export_from`]: generation::export_from
//! [`RibSnapshot`]: generation::RibSnapshot

use bgpsim_topology::AsIndex;

use crate::engine::generation::{
    self, deliver, export_from, rescan, seed_announcement, AdjEntry, Announcement, Best, Msg,
    PathNode, Queues, RaceLog, RibSnapshot, RibState, Workspace, NONE, NO_ROUTE,
};
use crate::filter::FilterContext;
use crate::net::{checked_u32, SimNet};
use crate::observer::{Decision, MessageEvent, NullObserver, Observer};
use crate::policy::{PolicyConfig, PrefClass};
use crate::route::{Choice, ConvergenceStats, Propagation};

/// Generation budget of the packed log words: 13 bits. Schedules that run
/// deeper cannot be packed; every shipped `PolicyConfig::max_generations`
/// preset sits orders of magnitude below this.
const MAX_PACKED_GEN: u32 = (1 << 13) - 1;

/// One baseline delivery, packed into 16 bytes (the unpacked field-per-item
/// form was 36): the receiver-side slot identifies the directed edge, so
/// the receiver, the sender and the sender-side slot are all recovered in
/// O(1) from [`SimNet`]'s slot tables instead of being stored.
#[derive(Debug, Clone, Copy, Default)]
struct PackedReplay {
    /// Receiver-side slot (its owner is the receiver; its mirror is the
    /// sender side).
    slot: u32,
    /// Announced origin; [`NONE`] encodes a withdrawal.
    origin: u32,
    /// AS-path arena node ([`NONE`] for withdrawals).
    node: u32,
    /// `gen (13) | len << 13 (16) | class << 29 (2) | removed << 31 (1)`.
    meta: u32,
}

impl PackedReplay {
    fn pack(gen: u32, msg: &Msg, removed: bool) -> PackedReplay {
        debug_assert!(gen <= MAX_PACKED_GEN && msg.class < 4);
        PackedReplay {
            slot: msg.slot,
            origin: msg.origin,
            node: msg.node,
            meta: gen
                | (u32::from(msg.len) << 13)
                | (u32::from(msg.class) << 29)
                | (u32::from(removed) << 31),
        }
    }

    #[inline]
    fn gen(self) -> u32 {
        self.meta & MAX_PACKED_GEN
    }

    #[inline]
    fn len(self) -> u16 {
        (self.meta >> 13) as u16
    }

    #[inline]
    fn class(self) -> u8 {
        ((self.meta >> 29) & 0x3) as u8
    }

    #[inline]
    fn removed(self) -> bool {
        self.meta >> 31 != 0
    }

    /// Reassembles the delivered [`Msg`] for receiver `to` — always the
    /// owner of `self.slot`, which callers walking a receiver's log range
    /// already know.
    #[inline]
    fn msg(self, to: u32) -> Msg {
        Msg {
            to,
            slot: self.slot,
            origin: self.origin,
            len: self.len(),
            class: self.class(),
            node: self.node,
        }
    }
}

/// One recorded export phase, packed into 8 bytes: the exported best
/// triple plus the generation the phase ran in.
#[derive(Debug, Clone, Copy, Default)]
struct ExportEntry {
    /// Exported origin ([`NONE`] for a no-route export).
    origin: u32,
    /// `gen (13) | len << 13 (16) | class << 29 (2)`.
    meta: u32,
}

impl ExportEntry {
    fn pack(gen: u32, triple: (u32, u16, u8)) -> ExportEntry {
        debug_assert!(gen <= MAX_PACKED_GEN && triple.2 < 4);
        ExportEntry {
            origin: triple.0,
            meta: gen | (u32::from(triple.1) << 13) | (u32::from(triple.2) << 29),
        }
    }

    #[inline]
    fn gen(self) -> u32 {
        self.meta & MAX_PACKED_GEN
    }

    #[inline]
    fn triple(self) -> (u32, u16, u8) {
        (
            self.origin,
            (self.meta >> 13) as u16,
            ((self.meta >> 29) & 0x3) as u8,
        )
    }
}

/// A frozen converged propagation — state snapshot plus full message
/// schedule — reusable across many [`propagate_delta`] calls.
///
/// Build one per (target, filter context) pair and share it read-only
/// across threads; every per-attacker delta run borrows it immutably.
#[derive(Debug, Clone)]
pub struct Baseline {
    snap: RibSnapshot,
    /// Convergence counters of the frozen honest run. The per-AS
    /// selections themselves are *not* stored — [`Baseline::base_choice`]
    /// reconstructs each from the packed snapshot, so the old O(ASes)
    /// `Propagation` duplicate is gone from the resident footprint.
    stats: ConvergenceStats,
    policy: PolicyConfig,
    /// Packed delivery log, grouped by receiver: receiver `x`'s deliveries
    /// are `log[in_off[x]..in_off[x + 1]]` in delivery order (ascending
    /// generation). Grouping the log itself by receiver makes the
    /// delivery-side index implicit — there is no `in_dat` array.
    log: Vec<PackedReplay>,
    /// Last generation with recorded deliveries (0 for an empty log).
    last_gen: u32,
    /// Per-receiver offsets into `log` (see `log`). The replay loop walks
    /// ranges with per-AS cursors so each generation costs O(cone), not
    /// O(log).
    in_off: Vec<u32>,
    /// Per-sender CSR of positions in `log`, ascending generation (within
    /// one generation: ascending sender-side slot, the export-phase
    /// order).
    out_off: Vec<u32>,
    out_dat: Vec<u32>,
    /// Per-AS export phases as a CSR: AS `x`'s phases are
    /// `exp_dat[exp_off[x]..exp_off[x + 1]]`, ascending generation.
    exp_off: Vec<u32>,
    exp_dat: Vec<ExportEntry>,
}

/// Counting-sort CSR offsets for `len` items keyed by `key(i)` in `0..n`.
/// The length is checked up front: a schedule outgrowing the u32 index
/// space fails loudly instead of silently wrapping into corrupt indices.
fn csr_offsets(n: usize, len: usize, key: impl Fn(usize) -> u32) -> Vec<u32> {
    checked_u32(len, "CSR-indexed schedule length");
    let mut off = vec![0u32; n + 1];
    for i in 0..len {
        off[key(i) as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    off
}

impl Baseline {
    /// Runs `announcements` to convergence from scratch (through the
    /// caller's reusable `ws`), freezing the converged state and the full
    /// message schedule.
    ///
    /// The returned baseline is only valid for delta runs on the same
    /// `net` with the same `filters` and `policy` — the frozen state and
    /// log embed this run's filter decisions and preference keys.
    /// `policy` is checked at delta time; `filters` cannot be (the context
    /// borrows its validator set), so the caller must pass the identical
    /// context to [`propagate_delta`].
    ///
    /// # Panics
    ///
    /// Propagates the panics of
    /// [`propagate_announcements`](crate::propagate_announcements) (empty
    /// announcements, duplicate announcers, indices out of range).
    pub fn build(
        net: &SimNet<'_>,
        announcements: &[Announcement],
        filters: &FilterContext<'_>,
        policy: &PolicyConfig,
        ws: &mut Workspace,
    ) -> Baseline {
        let mut race = RaceLog::default();
        let result = generation::propagate_recorded(
            net,
            announcements,
            filters,
            policy,
            ws,
            &mut NullObserver,
            Some(&mut race),
        );
        let n = net.num_ases();
        let deliveries = &race.deliveries;
        let last_gen = deliveries.last().map_or(0, |d| d.gen);
        // Both recorders emit ascending generations, so the last entry
        // carries the maximum (exports can reach one past `last_gen`).
        let max_gen = race
            .exports
            .last()
            .map_or(last_gen, |e| e.gen.max(last_gen));
        assert!(
            max_gen <= MAX_PACKED_GEN,
            "schedule reached generation {max_gen}, beyond the packed 13-bit \
             budget ({MAX_PACKED_GEN}); lower policy.max_generations"
        );
        // Receiver-grouped packed log: stable counting sort by receiver,
        // remembering each delivery's sorted position (`perm`) so the
        // sender-side index below preserves the original per-sender order
        // (ascending generation, then ascending sender-side slot).
        let in_off = csr_offsets(n, deliveries.len(), |i| deliveries[i].msg.to);
        let mut cur = in_off.clone();
        let mut log = vec![PackedReplay::default(); deliveries.len()];
        let mut perm = vec![0u32; deliveries.len()];
        for (i, d) in deliveries.iter().enumerate() {
            let c = &mut cur[d.msg.to as usize];
            perm[i] = *c;
            log[*c as usize] = PackedReplay::pack(d.gen, &d.msg, d.removed);
            *c += 1;
        }
        let sender_of = |i: usize| {
            net.owner_of_slot(net.reverse_slot(deliveries[i].msg.slot))
                .raw()
        };
        let out_off = csr_offsets(n, deliveries.len(), sender_of);
        let mut cur = out_off.clone();
        let mut out_dat = vec![0u32; deliveries.len()];
        for i in 0..deliveries.len() {
            let c = &mut cur[sender_of(i) as usize];
            out_dat[*c as usize] = perm[i];
            *c += 1;
        }
        // Export phases, CSR-packed the same way (stable by AS, ascending
        // generation within each).
        let exports = &race.exports;
        let exp_off = csr_offsets(n, exports.len(), |i| exports[i].asn);
        let mut cur = exp_off.clone();
        let mut exp_dat = vec![ExportEntry::default(); exports.len()];
        for e in exports {
            let c = &mut cur[e.asn as usize];
            exp_dat[*c as usize] = ExportEntry::pack(e.gen, e.triple);
            *c += 1;
        }
        Baseline {
            snap: ws.snapshot(net),
            stats: result.stats(),
            policy: *policy,
            log,
            last_gen,
            in_off,
            out_off,
            out_dat,
            exp_off,
            exp_dat,
        }
    }

    /// The converged state of *zero* announcements: every table empty, no
    /// recorded schedule. A delta run from it is exactly a from-scratch
    /// propagation of the injected announcements (useful for sub-prefix
    /// hijacks, where the bogus more-specific prefix has no honest
    /// competition to race against).
    pub fn empty(net: &SimNet<'_>, policy: &PolicyConfig) -> Baseline {
        let n = net.num_ases();
        Baseline {
            snap: RibSnapshot::empty(net),
            stats: ConvergenceStats::default(),
            policy: *policy,
            log: Vec::new(),
            last_gen: 0,
            in_off: vec![0; n + 1],
            out_off: vec![0; n + 1],
            out_dat: Vec::new(),
            exp_off: vec![0; n + 1],
            exp_dat: Vec::new(),
        }
    }

    /// The baseline selection of `ix`, reconstructed from the packed
    /// snapshot (the frozen `best` entry plus the slot→neighbor map).
    pub(crate) fn base_choice(&self, net: &SimNet<'_>, ix: AsIndex) -> Option<Choice> {
        let b = self.snap.best(ix.raw())?;
        if b.origin == NONE {
            return None;
        }
        Some(Choice {
            origin: AsIndex::new(b.origin),
            learned_from: if b.slot == NONE {
                None
            } else {
                Some(net.slot_entry(ix, b.slot).index)
            },
            len: b.len,
            class: PrefClass::from_u8(b.class),
        })
    }

    /// Materializes the converged honest propagation this baseline froze
    /// (O(ASes)). The selections are rebuilt from the packed snapshot —
    /// they are not kept resident.
    pub fn propagation(&self, net: &SimNet<'_>) -> Propagation {
        let choices = (0..net.num_ases())
            .map(|i| self.base_choice(net, AsIndex::new(i as u32)))
            .collect();
        Propagation::new(choices, self.stats)
    }

    /// Resident heap footprint of this baseline in bytes: the packed
    /// snapshot tables plus the packed delivery schedule with its CSR
    /// indices and the export log. Computed from vector capacities, so it
    /// reflects what the allocator actually holds.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.snap.heap_bytes()
            + self.log.capacity() * size_of::<PackedReplay>()
            + self.exp_dat.capacity() * size_of::<ExportEntry>()
            + (self.in_off.capacity()
                + self.out_off.capacity()
                + self.out_dat.capacity()
                + self.exp_off.capacity())
                * size_of::<u32>()
    }
}

const TOMBSTONE: AdjEntry = AdjEntry {
    origin: NONE,
    len: 0,
    class: 0,
    node: NONE,
};

/// Reusable scratch buffers for the replay loop, owned separately from
/// the overlay arrays so the loop can hold `&mut` to both at once.
#[derive(Debug, Default)]
struct ReplayScratch {
    /// This generation's live exports as `(sender_side_slot, msg)`,
    /// grouped per sender (ranges recorded in the workspace), ascending
    /// slot within a group.
    live: Vec<(u32, Msg)>,
    /// Live messages matched against an identical log entry (not
    /// re-delivered; the log copy is).
    consumed: Vec<bool>,
    recruits: Vec<u32>,
}

/// Per-thread scratch state for [`propagate_delta`]: a copy-on-write
/// overlay over a [`Baseline`]'s frozen tables.
///
/// Reads fall through to the baseline until the delta run writes a cell;
/// epoch stamps (as in [`Workspace`]) invalidate all overlay writes at the
/// next run without clearing, so a sweep's thousands of attacker runs cost
/// no per-run memset. Create one per rayon worker.
#[derive(Debug, Default)]
pub struct DeltaWorkspace {
    epoch: u32,
    adj: Vec<AdjEntry>,
    adj_stamp: Vec<u32>,
    sent: Vec<bool>,
    sent_stamp: Vec<u32>,
    best: Vec<Best>,
    best_stamp: Vec<u32>,
    last_export: Vec<(u32, u16, u8)>,
    last_export_stamp: Vec<u32>,
    dirty_tag: Vec<u64>,
    /// Extension of the baseline's AS-path arena; node index
    /// `baseline.arena.len() + i` resolves here, so delta paths chain into
    /// frozen baseline paths without copying them.
    arena: Vec<PathNode>,
    /// ASes recruited into the cone (selection recorded) this run, in
    /// recruitment order.
    touched: Vec<u32>,
    /// Per-AS cursor into the baseline's receiver-grouped `log` /
    /// sender-side `out_dat` CSR — only meaningful for cone members
    /// (written on recruitment), so no stamps.
    in_cur: Vec<u32>,
    out_cur: Vec<u32>,
    /// Per-AS range of this generation's live exports in the scratch
    /// buffer, valid when `live_tag` matches `(epoch, generation)`.
    live_lo: Vec<u32>,
    live_hi: Vec<u32>,
    live_tag: Vec<u64>,
    /// Per-log-entry "invalidated this run" stamp (baseline-log sized).
    tomb_stamp: Vec<u32>,
    queues: Queues,
    scratch: ReplayScratch,
}

impl DeltaWorkspace {
    /// Creates an empty workspace; arrays are sized on first use.
    pub fn new() -> DeltaWorkspace {
        DeltaWorkspace::default()
    }

    fn begin(&mut self, baseline: &Baseline) {
        let n = baseline.snap.num_ases();
        let slots = baseline.snap.num_slots();
        if self.best.len() < n {
            self.best.resize(n, NO_ROUTE);
            self.best_stamp.resize(n, 0);
            self.last_export.resize(n, (NONE, 0, 0));
            self.last_export_stamp.resize(n, 0);
            self.dirty_tag.resize(n, 0);
            self.in_cur.resize(n, 0);
            self.out_cur.resize(n, 0);
            self.live_lo.resize(n, 0);
            self.live_hi.resize(n, 0);
            self.live_tag.resize(n, 0);
        }
        if self.adj.len() < slots {
            self.adj.resize(slots, TOMBSTONE);
            self.adj_stamp.resize(slots, 0);
            self.sent.resize(slots, false);
            self.sent_stamp.resize(slots, 0);
        }
        if self.tomb_stamp.len() < baseline.log.len() {
            self.tomb_stamp.resize(baseline.log.len(), 0);
        }
        // Epoch 0 marks "never used"; on wrap, clear all stamps.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.adj_stamp.fill(0);
            self.sent_stamp.fill(0);
            self.best_stamp.fill(0);
            self.last_export_stamp.fill(0);
            self.dirty_tag.fill(0);
            self.live_tag.fill(0);
            self.tomb_stamp.fill(0);
            self.epoch = 1;
        }
        self.arena.clear();
        self.touched.clear();
        self.queues.dirty.clear();
        self.queues.cur.clear();
        self.queues.next.clear();
    }
}

/// The overlay view the replay loop runs over: writes go to the
/// [`DeltaWorkspace`], reads fall through to the frozen snapshot. Cone
/// membership is `best_stamp` — every recruitment records a selection.
struct DeltaState<'a> {
    snap: &'a RibSnapshot,
    ws: &'a mut DeltaWorkspace,
    /// Length of the baseline arena: the boundary between frozen and
    /// extension path nodes.
    arena_base: u32,
}

impl DeltaState<'_> {
    #[inline]
    fn in_cone(&self, ix: u32) -> bool {
        self.ws.best_stamp[ix as usize] == self.ws.epoch
    }

    /// Whether a live message's payload matches a logged delivery,
    /// including the full AS-path chain (triples can coincide across
    /// different paths, and paths drive downstream loop checks).
    fn msg_matches(&self, a: &Msg, e: PackedReplay) -> bool {
        if (a.origin, a.len, a.class) != (e.origin, e.len(), e.class()) {
            return false;
        }
        let (mut x, mut y) = (a.node, e.node);
        while x != NONE && y != NONE {
            if x == y {
                return true; // identical shared suffix
            }
            let (px, py) = (self.node(x), self.node(y));
            if px.asn != py.asn {
                return false;
            }
            x = px.parent;
            y = py.parent;
        }
        x == y
    }
}

impl RibState for DeltaState<'_> {
    #[inline]
    fn adj(&self, slot: u32) -> Option<AdjEntry> {
        if self.ws.adj_stamp[slot as usize] == self.ws.epoch {
            let e = self.ws.adj[slot as usize];
            (e.origin != NONE).then_some(e)
        } else {
            self.snap.adj(slot)
        }
    }

    #[inline]
    fn set_adj(&mut self, slot: u32, e: AdjEntry) {
        self.ws.adj[slot as usize] = e;
        self.ws.adj_stamp[slot as usize] = self.ws.epoch;
    }

    #[inline]
    fn clear_adj(&mut self, slot: u32) -> bool {
        let had = self.adj(slot).is_some();
        self.ws.adj[slot as usize] = TOMBSTONE;
        self.ws.adj_stamp[slot as usize] = self.ws.epoch;
        had
    }

    #[inline]
    fn best(&self, ix: u32) -> Option<Best> {
        if self.ws.best_stamp[ix as usize] == self.ws.epoch {
            Some(self.ws.best[ix as usize])
        } else {
            self.snap.best(ix)
        }
    }

    #[inline]
    fn set_best(&mut self, ix: u32, b: Best) {
        if self.ws.best_stamp[ix as usize] != self.ws.epoch {
            self.ws.best_stamp[ix as usize] = self.ws.epoch;
            self.ws.touched.push(ix);
        }
        self.ws.best[ix as usize] = b;
    }

    #[inline]
    fn sent(&self, slot: u32) -> bool {
        if self.ws.sent_stamp[slot as usize] == self.ws.epoch {
            self.ws.sent[slot as usize]
        } else {
            self.snap.sent(slot)
        }
    }

    #[inline]
    fn set_sent(&mut self, slot: u32, on: bool) {
        self.ws.sent[slot as usize] = on;
        self.ws.sent_stamp[slot as usize] = self.ws.epoch;
    }

    #[inline]
    fn last_export(&self, ix: u32) -> Option<(u32, u16, u8)> {
        if self.ws.last_export_stamp[ix as usize] == self.ws.epoch {
            Some(self.ws.last_export[ix as usize])
        } else {
            self.snap.last_export(ix)
        }
    }

    #[inline]
    fn set_last_export(&mut self, ix: u32, snap: (u32, u16, u8)) {
        self.ws.last_export[ix as usize] = snap;
        self.ws.last_export_stamp[ix as usize] = self.ws.epoch;
    }

    #[inline]
    fn node(&self, node: u32) -> PathNode {
        if node < self.arena_base {
            self.snap.arena[node as usize]
        } else {
            self.ws.arena[(node - self.arena_base) as usize]
        }
    }

    #[inline]
    fn push_node(&mut self, pn: PathNode) -> u32 {
        let i = self.arena_base + self.ws.arena.len() as u32;
        self.ws.arena.push(pn);
        i
    }

    #[inline]
    fn try_mark_dirty(&mut self, ix: u32, wave: u32) -> bool {
        let tag = ((self.ws.epoch as u64) << 32) | wave as u64;
        if self.ws.dirty_tag[ix as usize] != tag {
            self.ws.dirty_tag[ix as usize] = tag;
            true
        } else {
            false
        }
    }
}

/// Reconstructs AS `x`'s exact race state as of the moment generation
/// `g`'s messages are about to be delivered, and enters it into the cone:
/// Adj-RIB-In from its recorded delivery history (generations `< g`),
/// selection by re-scan (origins keep their seeded route), last-export
/// memo and outstanding-announcement flags from its recorded export
/// history (generations `<= g` — the export phase that produced
/// generation `g`'s messages has already run).
fn recruit(
    net: &SimNet<'_>,
    baseline: &Baseline,
    policy: &PolicyConfig,
    state: &mut DeltaState<'_>,
    x: u32,
    g: u32,
) {
    let xi = AsIndex::new(x);
    for slot in net.slots_of(xi) {
        state.ws.adj[slot as usize] = TOMBSTONE;
        state.ws.adj_stamp[slot as usize] = state.ws.epoch;
        state.ws.sent[slot as usize] = false;
        state.ws.sent_stamp[slot as usize] = state.ws.epoch;
    }
    let mut ic = baseline.in_off[x as usize];
    let in_hi = baseline.in_off[x as usize + 1];
    while ic < in_hi {
        let e = baseline.log[ic as usize];
        if e.gen() >= g {
            break;
        }
        ic += 1;
        if e.removed() {
            state.ws.adj[e.slot as usize] = TOMBSTONE;
        } else {
            // Stored class is the *receiver-side* classification (the
            // logged message carries the sender-side one), exactly as
            // `deliver` computes it.
            let rel = net.slot_entry(xi, e.slot).rel;
            let class = match PrefClass::from_sender_rel(rel) {
                Some(c) => c.as_u8(),
                None => e.class(), // sibling: inherit
            };
            state.ws.adj[e.slot as usize] = AdjEntry {
                origin: e.origin,
                len: e.len(),
                class,
                node: e.node,
            };
        }
    }
    state.ws.in_cur[x as usize] = ic;
    let mut oc = baseline.out_off[x as usize];
    let out_hi = baseline.out_off[x as usize + 1];
    while oc < out_hi {
        let e = baseline.log[baseline.out_dat[oc as usize] as usize];
        if e.gen() > g {
            break;
        }
        oc += 1;
        state.ws.sent[net.reverse_slot(e.slot) as usize] = e.origin != NONE;
    }
    state.ws.out_cur[x as usize] = oc;
    // Origins keep their seeded self-route (constant through the race);
    // everyone else selects by re-scanning the reconstructed table. The
    // `(NONE, 0, 0)` last-export sentinel is safe: it only ever coincides
    // with a no-route export phase, which emits nothing an AS that never
    // exported could need to emit (all its sent flags are false).
    let b = match baseline.snap.best(x) {
        Some(b) if b.slot == NONE && b.origin != NONE => b,
        _ => {
            let tier1 = policy.tier1_shortest_path && net.is_tier1(xi);
            rescan(net, state, xi, tier1).unwrap_or(NO_ROUTE)
        }
    };
    state.set_best(x, b);
    let mut le = (NONE, 0u16, 0u8);
    for ei in baseline.exp_off[x as usize]..baseline.exp_off[x as usize + 1] {
        let e = baseline.exp_dat[ei as usize];
        if e.gen() > g {
            break;
        }
        le = e.triple();
    }
    state.set_last_export(x, le);
}

/// Re-runs the race with `injections` added, simulating only the
/// contamination cone against the baseline's recorded schedule. See the
/// module docs for the bit-identity argument.
///
/// `filters` and `policy` must be the ones the baseline was built with
/// (`policy` is asserted; `filters` is the caller's responsibility).
///
/// # Panics
///
/// Panics if `injections` is empty or contains an announcer that already
/// originates (among the injections or in the baseline), if any index is
/// out of range, if `policy` differs from the baseline's, or if the
/// baseline was built for a differently-sized network.
pub fn propagate_delta<'r, 't, O: Observer>(
    net: &'r SimNet<'t>,
    baseline: &'r Baseline,
    injections: &[Announcement],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    dws: &'r mut DeltaWorkspace,
    obs: &mut O,
) -> DeltaResult<'r, 't> {
    assert!(!injections.is_empty(), "at least one injection required");
    assert_eq!(
        *policy, baseline.policy,
        "delta policy must match the baseline's"
    );
    assert_eq!(
        (baseline.snap.num_ases(), baseline.snap.num_slots()),
        (net.num_ases(), net.num_slots()),
        "baseline was built for a different network"
    );
    dws.begin(baseline);
    let mut stats = ConvergenceStats::default();
    let mut q = std::mem::take(&mut dws.queues);
    let mut sc = std::mem::take(&mut dws.scratch);
    {
        let mut state = DeltaState {
            snap: &baseline.snap,
            ws: &mut *dws,
            arena_base: baseline.snap.arena.len() as u32,
        };
        for a in injections {
            let o = a.announcer;
            assert!(o.usize() < net.num_ases(), "origin {o} out of range");
            if !state.in_cone(o.raw()) {
                // Race state at generation 0: empty tables (an announcer
                // that is a baseline origin keeps its seeded route and
                // trips the duplicate check in `seed_announcement`).
                recruit(net, baseline, policy, &mut state, o.raw(), 0);
            }
            seed_announcement(net, &mut state, &mut q, a);
        }
        replay(
            net, baseline, filters, policy, &mut state, &mut q, &mut sc, &mut stats, obs,
        );
    }
    dws.queues = q;
    dws.scratch = sc;
    obs.on_converged(&stats);
    DeltaResult {
        net,
        baseline,
        dws: &*dws,
        stats,
    }
}

/// The replay loop: the race's export/delivery waves, with out-of-cone
/// work elided against the baseline schedule. Per generation the loop
/// touches only cone members — their scheduled entries are reached
/// through per-AS cursors into the baseline's CSR indices, so the cost is
/// O(cone activity), independent of the size of the rest of the log.
#[allow(clippy::too_many_arguments)]
fn replay<O: Observer>(
    net: &SimNet<'_>,
    baseline: &Baseline,
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    state: &mut DeltaState<'_>,
    q: &mut Queues,
    sc: &mut ReplayScratch,
    stats: &mut ConvergenceStats,
    obs: &mut O,
) {
    let mut generation = 0u32;
    loop {
        // ---- Export phase: live exports from dirty cone members. ----
        sc.live.clear();
        for di in 0..q.dirty.len() {
            let x = q.dirty[di];
            let lo = sc.live.len() as u32;
            export_from(net, state, x, &mut |islot, m| sc.live.push((islot, m)));
            state.ws.live_lo[x as usize] = lo;
            state.ws.live_hi[x as usize] = sc.live.len() as u32;
            state.ws.live_tag[x as usize] =
                ((state.ws.epoch as u64) << 32) | (generation + 1) as u64;
        }
        q.dirty.clear();

        if sc.live.is_empty() && generation >= baseline.last_gen {
            break;
        }
        generation += 1;
        if generation > policy.max_generations {
            stats.truncated = true;
            break;
        }
        stats.generations = generation;
        obs.on_generation_start(generation);

        sc.consumed.clear();
        sc.consumed.resize(sc.live.len(), false);
        sc.recruits.clear();
        let live_tag = ((state.ws.epoch as u64) << 32) | generation as u64;

        // ---- Classification: per cone member, merge-join this
        // generation's scheduled exports against its live ones (both
        // ascending by sender-side slot). A scheduled message either is
        // reproduced exactly (the schedule stands) or is invalidated
        // (tombstoned; its receiver's stream deviates, so the receiver is
        // recruited). Live messages with no scheduled counterpart recruit
        // their receivers likewise. Members recruited *this* generation
        // are not senders here: their generation-`g` exports were
        // computed from identical state, so their schedule stands.
        let senders = state.ws.touched.len();
        for ti in 0..senders {
            let s = state.ws.touched[ti];
            let mut cur = state.ws.out_cur[s as usize];
            let end = baseline.out_off[s as usize + 1];
            let (mut li, lhi) = if state.ws.live_tag[s as usize] == live_tag {
                (state.ws.live_lo[s as usize], state.ws.live_hi[s as usize])
            } else {
                (0, 0)
            };
            while cur < end {
                let idx = baseline.out_dat[cur as usize] as usize;
                let e = baseline.log[idx];
                if e.gen() != generation {
                    break;
                }
                cur += 1;
                let islot = net.reverse_slot(e.slot);
                while li < lhi && sc.live[li as usize].0 < islot {
                    li += 1;
                }
                if li < lhi
                    && sc.live[li as usize].0 == islot
                    && state.msg_matches(&sc.live[li as usize].1, e)
                {
                    sc.consumed[li as usize] = true;
                    li += 1;
                } else {
                    state.ws.tomb_stamp[idx] = state.ws.epoch;
                    let to = net.owner_of_slot(e.slot).raw();
                    if !state.in_cone(to) {
                        sc.recruits.push(to);
                    }
                }
            }
            state.ws.out_cur[s as usize] = cur;
        }
        for (li, &(_, m)) in sc.live.iter().enumerate() {
            if !sc.consumed[li] && !state.in_cone(m.to) {
                sc.recruits.push(m.to);
            }
        }
        sc.recruits.sort_unstable();
        sc.recruits.dedup();
        for ri in 0..sc.recruits.len() {
            let x = sc.recruits[ri];
            if !state.in_cone(x) {
                recruit(net, baseline, policy, state, x, generation);
            }
        }

        // ---- Delivery phase: each cone member's scheduled messages
        // still standing (out-of-cone receivers process theirs
        // virtually), then live messages replacing or extending the
        // schedule. Members recruited this generation receive their
        // scheduled generation-`g` messages here too.
        for ti in 0..state.ws.touched.len() {
            let x = state.ws.touched[ti];
            loop {
                let cur = state.ws.in_cur[x as usize];
                if cur >= baseline.in_off[x as usize + 1] {
                    break;
                }
                let e = baseline.log[cur as usize];
                if e.gen() != generation {
                    break;
                }
                state.ws.in_cur[x as usize] = cur + 1;
                if state.ws.tomb_stamp[cur as usize] != state.ws.epoch {
                    deliver_one(
                        net,
                        filters,
                        policy,
                        state,
                        q,
                        generation,
                        e.msg(x),
                        stats,
                        obs,
                    );
                }
            }
        }
        for li in 0..sc.live.len() {
            if !sc.consumed[li] {
                let m = sc.live[li].1;
                deliver_one(net, filters, policy, state, q, generation, m, stats, obs);
            }
        }
    }
}

/// Delivers one message into the cone: the same mechanics and accounting
/// as the full engine's delivery loop.
#[allow(clippy::too_many_arguments)]
fn deliver_one<O: Observer>(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    state: &mut DeltaState<'_>,
    q: &mut Queues,
    generation: u32,
    msg: Msg,
    stats: &mut ConvergenceStats,
    obs: &mut O,
) {
    stats.messages += 1;
    let r = AsIndex::new(msg.to);
    let entry = net.slot_entry(r, msg.slot);
    let (from, rel) = (entry.index, entry.rel);
    let decision = deliver(net, filters, policy, state, q, generation, msg, rel, from);
    match decision {
        Decision::NewBest => stats.accepted += 1,
        Decision::RejectedLoop => stats.loop_rejected += 1,
        Decision::RejectedOrigin => stats.filter_rejected += 1,
        Decision::RejectedStub => stats.stub_rejected += 1,
        Decision::Withdrawn => stats.withdrawals += 1,
        Decision::Stored => {}
    }
    obs.on_message(MessageEvent {
        generation,
        from,
        to: r,
        origin: AsIndex::new(msg.origin),
        len: msg.len,
        decision,
    });
}

/// The converged result of one delta run, borrowing the workspace (zero
/// materialization cost).
///
/// [`DeltaResult::choice`] is O(1) per AS; [`DeltaResult::touched`]
/// iterates only the cone — for hijack sweeps the polluted set is a
/// subset of it, so counting pollution is O(cone), not O(n).
/// [`DeltaResult::to_propagation`] materializes a full [`Propagation`]
/// (O(n)) when an owned result is needed.
#[derive(Debug)]
pub struct DeltaResult<'r, 't> {
    net: &'r SimNet<'t>,
    baseline: &'r Baseline,
    dws: &'r DeltaWorkspace,
    stats: ConvergenceStats,
}

impl DeltaResult<'_, '_> {
    /// The selection of `ix` after re-convergence: the cone's if this run
    /// recruited `ix`, the baseline's otherwise.
    pub fn choice(&self, ix: AsIndex) -> Option<Choice> {
        let i = ix.usize();
        if self.dws.best_stamp[i] == self.dws.epoch {
            let b = self.dws.best[i];
            if b.origin == NONE {
                return None;
            }
            Some(Choice {
                origin: AsIndex::new(b.origin),
                learned_from: if b.slot == NONE {
                    None
                } else {
                    Some(self.net.slot_entry(ix, b.slot).index)
                },
                len: b.len,
                class: PrefClass::from_u8(b.class),
            })
        } else {
            self.baseline.base_choice(self.net, ix)
        }
    }

    /// The cone: ASes whose state this run simulated live (a superset of
    /// the ASes whose final selection differs from the baseline). Every
    /// AS not yielded kept its baseline selection exactly.
    pub fn touched(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.dws.touched.iter().map(|&ix| AsIndex::new(ix))
    }

    /// Convergence counters of the *delta* run only: messages delivered
    /// into the cone, and the race generations the replay stepped through
    /// (not comparable to a from-scratch run's message counts).
    pub fn stats(&self) -> ConvergenceStats {
        self.stats
    }

    /// The baseline this run re-converged from.
    pub fn baseline(&self) -> &Baseline {
        self.baseline
    }

    /// Materializes the full per-AS selection map (O(n)), carrying this
    /// delta run's stats.
    pub fn to_propagation(&self) -> Propagation {
        let choices = (0..self.net.num_ases())
            .map(|i| self.choice(AsIndex::new(i as u32)))
            .collect();
        Propagation::new(choices, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::generation::propagate_announcements;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*, Topology};

    fn diamond() -> Topology {
        topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (2, 3, PeerToPeer),
            (1, 5, ProviderToCustomer),
        ])
    }

    fn assert_delta_matches_full(
        net: &SimNet<'_>,
        target: AsIndex,
        injection: Announcement,
        policy: &PolicyConfig,
    ) {
        let ctx = FilterContext::none();
        let mut ws = Workspace::new();
        let baseline = Baseline::build(net, &[Announcement::honest(target)], &ctx, policy, &mut ws);
        let mut dws = DeltaWorkspace::new();
        let delta = propagate_delta(
            net,
            &baseline,
            &[injection],
            &ctx,
            policy,
            &mut dws,
            &mut NullObserver,
        );
        let full = propagate_announcements(
            net,
            &[Announcement::honest(target), injection],
            &ctx,
            policy,
            &mut ws,
            &mut NullObserver,
        );
        for i in 0..net.num_ases() {
            let ix = AsIndex::new(i as u32);
            assert_eq!(delta.choice(ix), full.choice(ix), "divergence at {ix}");
        }
        let p = delta.to_propagation();
        assert_eq!(p.choices(), full.choices());
    }

    #[test]
    fn delta_matches_full_on_diamond() {
        let topo = diamond();
        let net = SimNet::new(&topo);
        let t = topo.index_of(AsId::new(4)).unwrap();
        let a = topo.index_of(AsId::new(5)).unwrap();
        for policy in [PolicyConfig::paper(), PolicyConfig::strict_gao_rexford()] {
            assert_delta_matches_full(&net, t, Announcement::honest(a), &policy);
            assert_delta_matches_full(&net, t, Announcement::forged(a, t), &policy);
        }
    }

    #[test]
    fn empty_baseline_is_from_scratch() {
        let topo = diamond();
        let net = SimNet::new(&topo);
        let a = topo.index_of(AsId::new(5)).unwrap();
        let policy = PolicyConfig::paper();
        let baseline = Baseline::empty(&net, &policy);
        assert_eq!(baseline.propagation(&net).reached_count(), 0);
        let mut dws = DeltaWorkspace::new();
        let delta = propagate_delta(
            &net,
            &baseline,
            &[Announcement::honest(a)],
            &FilterContext::none(),
            &policy,
            &mut dws,
            &mut NullObserver,
        );
        let full = propagate_announcements(
            &net,
            &[Announcement::honest(a)],
            &FilterContext::none(),
            &policy,
            &mut Workspace::new(),
            &mut NullObserver,
        );
        assert_eq!(delta.to_propagation().choices(), full.choices());
        // From an empty baseline every routed AS joins the cone.
        assert_eq!(delta.touched().count(), full.reached_count());
        // And the stats ARE comparable here: nothing was elided.
        assert_eq!(delta.stats(), full.stats());
    }

    #[test]
    fn untouched_ases_keep_baseline_choices() {
        let topo = diamond();
        let net = SimNet::new(&topo);
        let t = topo.index_of(AsId::new(4)).unwrap();
        let a = topo.index_of(AsId::new(5)).unwrap();
        let ctx = FilterContext::none();
        let policy = PolicyConfig::paper();
        let mut ws = Workspace::new();
        let baseline = Baseline::build(&net, &[Announcement::honest(t)], &ctx, &policy, &mut ws);
        let mut dws = DeltaWorkspace::new();
        let delta = propagate_delta(
            &net,
            &baseline,
            &[Announcement::honest(a)],
            &ctx,
            &policy,
            &mut dws,
            &mut NullObserver,
        );
        let touched: Vec<AsIndex> = delta.touched().collect();
        for i in 0..net.num_ases() {
            let ix = AsIndex::new(i as u32);
            if !touched.contains(&ix) {
                assert_eq!(delta.choice(ix), baseline.propagation(&net).choice(ix));
            }
        }
    }

    /// Satellite: epoch wrap-around for the overlay workspace, mirroring
    /// the `Workspace` wrap test — stamps must clear at the wrap and runs
    /// across it must match a fresh overlay workspace.
    #[test]
    fn delta_workspace_epoch_wraparound() {
        let topo = diamond();
        let net = SimNet::new(&topo);
        let t = topo.index_of(AsId::new(4)).unwrap();
        let a = topo.index_of(AsId::new(5)).unwrap();
        let ctx = FilterContext::none();
        let policy = PolicyConfig::paper();
        let mut ws = Workspace::new();
        let baseline = Baseline::build(&net, &[Announcement::honest(t)], &ctx, &policy, &mut ws);
        let inject = [Announcement::honest(a)];

        let mut dws = DeltaWorkspace::new();
        // Prime the arrays, then force the counter to the wrap edge.
        let first = propagate_delta(
            &net,
            &baseline,
            &inject,
            &ctx,
            &policy,
            &mut dws,
            &mut NullObserver,
        )
        .to_propagation();
        dws.epoch = u32::MAX - 1;
        let at_max = propagate_delta(
            &net,
            &baseline,
            &inject,
            &ctx,
            &policy,
            &mut dws,
            &mut NullObserver,
        )
        .to_propagation();
        assert_eq!(dws.epoch, u32::MAX);
        let wrapped = propagate_delta(
            &net,
            &baseline,
            &inject,
            &ctx,
            &policy,
            &mut dws,
            &mut NullObserver,
        )
        .to_propagation();
        assert_eq!(dws.epoch, 1, "wrap must land on cleared epoch 1");
        assert!(dws.best_stamp.iter().all(|&e| e <= 1));
        assert!(dws.adj_stamp.iter().all(|&e| e <= 1));
        assert!(dws.sent_stamp.iter().all(|&e| e <= 1));
        assert!(dws.last_export_stamp.iter().all(|&e| e <= 1));
        assert!(dws.dirty_tag.iter().all(|&t| (t >> 32) <= 1));

        let fresh = propagate_delta(
            &net,
            &baseline,
            &inject,
            &ctx,
            &policy,
            &mut DeltaWorkspace::new(),
            &mut NullObserver,
        )
        .to_propagation();
        assert_eq!(at_max.choices(), fresh.choices());
        assert_eq!(wrapped.choices(), first.choices());
        assert_eq!(wrapped.stats(), first.stats());
    }

    /// Satellite: pins `heap_bytes()` on a fixed 5-AS topology — the
    /// packed element sizes, the closed-form footprint of an empty
    /// baseline, and that a built baseline accounts every vector at its
    /// packed element size.
    #[test]
    fn heap_bytes_pinned_on_five_as_topology() {
        use std::mem::size_of;
        assert_eq!(size_of::<PackedReplay>(), 16);
        assert_eq!(size_of::<ExportEntry>(), 8);
        let topo = diamond();
        let net = SimNet::new(&topo);
        assert_eq!((net.num_ases(), net.num_slots()), (5, 12));
        let policy = PolicyConfig::paper();
        let empty = Baseline::empty(&net, &policy);
        // Packed snapshot: 12 bytes/slot (adj word + node) + one 64-slot
        // sent bitmask word + 24 bytes/AS (best word, best link, last
        // export), then three (n + 1)-entry CSR offset arrays. No frozen
        // per-AS result rides along — choices reconstruct from the
        // snapshot.
        let snap_bytes = 12 * 12 + 8 + 5 * 24;
        let expected = snap_bytes + 3 * 6 * 4;
        assert_eq!(empty.heap_bytes(), expected);
        let t = topo.index_of(AsId::new(4)).unwrap();
        let mut ws = Workspace::new();
        let built = Baseline::build(
            &net,
            &[Announcement::honest(t)],
            &FilterContext::none(),
            &policy,
            &mut ws,
        );
        assert!(!built.log.is_empty());
        let schedule = built.log.capacity() * 16
            + built.out_dat.capacity() * 4
            + built.exp_dat.capacity() * 8
            + (built.in_off.capacity() + built.out_off.capacity() + built.exp_off.capacity()) * 4;
        assert_eq!(built.heap_bytes(), built.snap.heap_bytes() + schedule);
    }

    #[test]
    #[should_panic(expected = "duplicate origin")]
    fn injecting_a_baseline_origin_panics() {
        let topo = diamond();
        let net = SimNet::new(&topo);
        let t = topo.index_of(AsId::new(4)).unwrap();
        let policy = PolicyConfig::paper();
        let mut ws = Workspace::new();
        let baseline = Baseline::build(
            &net,
            &[Announcement::honest(t)],
            &FilterContext::none(),
            &policy,
            &mut ws,
        );
        let mut dws = DeltaWorkspace::new();
        let _ = propagate_delta(
            &net,
            &baseline,
            &[Announcement::honest(t)],
            &FilterContext::none(),
            &policy,
            &mut dws,
            &mut NullObserver,
        );
    }

    #[test]
    #[should_panic(expected = "match the baseline")]
    fn policy_mismatch_panics() {
        let topo = diamond();
        let net = SimNet::new(&topo);
        let t = topo.index_of(AsId::new(4)).unwrap();
        let a = topo.index_of(AsId::new(5)).unwrap();
        let mut ws = Workspace::new();
        let baseline = Baseline::build(
            &net,
            &[Announcement::honest(t)],
            &FilterContext::none(),
            &PolicyConfig::paper(),
            &mut ws,
        );
        let mut dws = DeltaWorkspace::new();
        let _ = propagate_delta(
            &net,
            &baseline,
            &[Announcement::honest(a)],
            &FilterContext::none(),
            &PolicyConfig::strict_gao_rexford(),
            &mut dws,
            &mut NullObserver,
        );
    }
}
