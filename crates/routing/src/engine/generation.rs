//! The generation-stepped message-passing engine.
//!
//! This is the paper's simulator (§III): "BGP announcements are propagated
//! to neighboring ASes in step-wise fashion… Generation after generation of
//! message propagation continues until convergence is reached."
//!
//! # Model
//!
//! Every AS keeps a per-neighbor Adj-RIB-In with standard BGP replacement
//! semantics: a new announcement from a neighbor replaces that neighbor's
//! previous one; an announcement that fails the loop check or a filter
//! *removes* the previous entry (it is unusable, per RFC 4271 decision
//! processing); and when an AS's new best route is no longer exportable to
//! a neighbor it previously announced to, it sends a withdrawal. After any
//! Adj-RIB-In change the AS re-selects and, if its best changed,
//! re-exports in the next generation. These replacement/withdrawal rules
//! are what make the converged state the *stable* routing solution rather
//! than an artifact of message ordering — see `engine::stable` for the
//! closed-form cross-check.
//!
//! * Preference: customer > peer > provider `LOCAL_PREF`, then shorter AS
//!   path, then lowest neighbor slot (a deterministic stand-in for the
//!   paper's keep-first rule — equal-preference candidates always arrive in
//!   the same generation, so only intra-generation order matters).
//! * Tier-1 ASes compare path length first when
//!   [`PolicyConfig::tier1_shortest_path`] is set.
//! * Export follows the valley-free matrix in [`crate::policy::may_export`].
//! * Sibling groups behave as one AS for preference and export: routes
//!   cross sibling links keeping their external preference class.
//! * Loop prevention is per-ASN, as in real BGP: an AS rejects any
//!   announcement whose AS path already contains itself. (Organizations may
//!   legitimately carry both sibling and provider links between their own
//!   ASes, so group-level rejection would break real topologies.)

use bgpsim_topology::{AsIndex, Relationship};

use crate::filter::FilterContext;
use crate::net::SimNet;
use crate::observer::{Decision, MessageEvent, Observer};
use crate::policy::{may_export, standard_key, tier1_key, PolicyConfig, PrefClass};
use crate::route::{Choice, ConvergenceStats, Propagation};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct AdjEntry {
    origin: u32,
    len: u16,
    class: u8,
    node: u32,
}

#[derive(Debug, Clone, Copy)]
struct Best {
    /// `NONE` when the AS currently has no route.
    origin: u32,
    /// Receiver-side slot the route was learned on (`NONE` if self-originated).
    slot: u32,
    len: u16,
    class: u8,
    node: u32,
    key: u64,
}

const NO_ROUTE: Best = Best {
    origin: NONE,
    slot: NONE,
    len: 0,
    class: 0,
    node: NONE,
    key: 0,
};

#[derive(Debug, Clone, Copy)]
struct Msg {
    to: u32,
    /// Receiver-side slot identifying the sender.
    slot: u32,
    /// `NONE` encodes a withdrawal.
    origin: u32,
    len: u16,
    class: u8,
    node: u32,
}

#[derive(Debug, Clone, Copy)]
struct PathNode {
    asn: u32,
    parent: u32,
}

/// Reusable scratch state for [`propagate`].
///
/// A workspace amortizes all allocation across simulations: per-AS and
/// per-edge tables are invalidated by epoch stamps instead of clearing, so
/// back-to-back propagations on the same [`SimNet`] avoid memsetting the
/// large arrays. Create one per thread and reuse it for every simulation in
/// a sweep.
#[derive(Debug, Default)]
pub struct Workspace {
    epoch: u32,
    adj: Vec<AdjEntry>,
    adj_epoch: Vec<u32>,
    /// Sender-side record of whether an announcement is outstanding on a
    /// directed edge (for withdrawal generation).
    sent_epoch: Vec<u32>,
    best: Vec<Best>,
    best_epoch: Vec<u32>,
    /// Last exported (origin, len, class) per AS, to suppress no-op exports.
    last_export: Vec<(u32, u16, u8)>,
    last_export_epoch: Vec<u32>,
    /// ASes whose best changed and must export next wave.
    dirty: Vec<u32>,
    /// `(epoch << 32) | wave` tag deduplicating the dirty queue per wave.
    dirty_tag: Vec<u64>,
    arena: Vec<PathNode>,
    cur: Vec<Msg>,
    next: Vec<Msg>,
}

impl Workspace {
    /// Creates an empty workspace; arrays are sized on first use.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    fn begin(&mut self, net: &SimNet<'_>) {
        let n = net.num_ases();
        let slots = net.num_slots();
        if self.best.len() < n {
            self.best.resize(n, NO_ROUTE);
            self.best_epoch.resize(n, 0);
            self.last_export.resize(n, (NONE, 0, 0));
            self.last_export_epoch.resize(n, 0);
            self.dirty_tag.resize(n, 0);
        }
        if self.adj.len() < slots {
            self.adj.resize(
                slots,
                AdjEntry {
                    origin: NONE,
                    len: 0,
                    class: 0,
                    node: NONE,
                },
            );
            self.adj_epoch.resize(slots, 0);
            self.sent_epoch.resize(slots, 0);
        }
        // Epoch 0 marks "never used"; on wrap, clear all stamps.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.adj_epoch.fill(0);
            self.sent_epoch.fill(0);
            self.best_epoch.fill(0);
            self.last_export_epoch.fill(0);
            self.dirty_tag.fill(0);
            self.epoch = 1;
        }
        self.arena.clear();
        self.cur.clear();
        self.next.clear();
        self.dirty.clear();
    }

    fn path_contains(&self, mut node: u32, asn: u32) -> bool {
        while node != NONE {
            let pn = self.arena[node as usize];
            if pn.asn == asn {
                return true;
            }
            node = pn.parent;
        }
        false
    }

    fn mark_dirty(&mut self, ix: u32, wave: u32) {
        let tag = ((self.epoch as u64) << 32) | wave as u64;
        if self.dirty_tag[ix as usize] != tag {
            self.dirty_tag[ix as usize] = tag;
            self.dirty.push(ix);
        }
    }
}

#[inline]
fn key_for(tier1_len_first: bool, class: PrefClass, len: u16, slot: u32) -> u64 {
    if tier1_len_first {
        tier1_key(class, len, slot)
    } else {
        standard_key(class, len, slot)
    }
}

/// One initial announcement of the simulated prefix.
///
/// The honest case has `claimed_origin == announcer` (the AS originates its
/// own prefix). A *forged-origin* announcement — the classic
/// origin-validation evasion, where the attacker prepends the victim's ASN
/// so the route appears to originate legitimately — has
/// `claimed_origin != announcer`: the announced AS path starts as
/// `[announcer, claimed_origin]`, path length 1. Loop detection still sees
/// the claimed origin on the path, so the real origin itself always rejects
/// the forgery, exactly as in real BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Announcement {
    /// The AS injecting the announcement.
    pub announcer: AsIndex,
    /// The origin the announcement claims.
    pub claimed_origin: AsIndex,
}

impl Announcement {
    /// An honest origination by `origin`.
    pub fn honest(origin: AsIndex) -> Announcement {
        Announcement {
            announcer: origin,
            claimed_origin: origin,
        }
    }

    /// A forged-origin announcement: `announcer` claims `victim`'s ASN as
    /// the origin of the path.
    pub fn forged(announcer: AsIndex, victim: AsIndex) -> Announcement {
        Announcement {
            announcer,
            claimed_origin: victim,
        }
    }

    /// Whether the announcement misrepresents its origin.
    pub fn is_forged(&self) -> bool {
        self.announcer != self.claimed_origin
    }
}

/// Runs one propagation to convergence and returns every AS's selection.
///
/// `origins` all announce the same prefix in generation 0; for a hijack
/// simulation pass `[target, attacker]` and a [`FilterContext`] authorizing
/// the target. The result is deterministic: it does not depend on thread
/// scheduling or map iteration order.
///
/// # Panics
///
/// Panics if `origins` is empty, contains duplicates, or contains an index
/// out of range for `net`.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
/// use bgpsim_routing::{propagate, FilterContext, NullObserver, PolicyConfig, SimNet, Workspace};
///
/// let topo = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
/// let net = SimNet::new(&topo);
/// let origin = topo.index_of(AsId::new(2)).unwrap();
/// let result = propagate(
///     &net,
///     &[origin],
///     &FilterContext::none(),
///     &PolicyConfig::paper(),
///     &mut Workspace::new(),
///     &mut NullObserver,
/// );
/// assert_eq!(result.reached_count(), 2);
/// ```
pub fn propagate<O: Observer>(
    net: &SimNet<'_>,
    origins: &[AsIndex],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    obs: &mut O,
) -> Propagation {
    let announcements: Vec<Announcement> =
        origins.iter().map(|&o| Announcement::honest(o)).collect();
    propagate_announcements(net, &announcements, filters, policy, ws, obs)
}

/// Like [`propagate`], but with full control over each initial
/// [`Announcement`], enabling forged-origin hijacks.
///
/// For a forged announcement the injecting AS's own selection reports the
/// *claimed* origin (that is the point of the forgery); use
/// [`Propagation::path_to_origin`] terminating at the announcer to decide
/// who was actually captured (see `bgpsim_hijack`).
///
/// # Panics
///
/// Panics if `announcements` is empty, contains duplicate announcers, or
/// references ASes out of range for `net`.
pub fn propagate_announcements<O: Observer>(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    obs: &mut O,
) -> Propagation {
    assert!(!announcements.is_empty(), "at least one origin required");
    ws.begin(net);
    let epoch = ws.epoch;
    let mut stats = ConvergenceStats::default();

    for a in announcements {
        let o = a.announcer;
        assert!(o.usize() < net.num_ases(), "origin {o} out of range");
        assert!(
            a.claimed_origin.usize() < net.num_ases(),
            "claimed origin out of range"
        );
        assert_ne!(ws.best_epoch[o.usize()], epoch, "duplicate origin {o}");
        let (node, len) = if a.is_forged() {
            // The forged path already carries the victim's ASN behind the
            // announcer, so downstream loop checks (and the victim itself)
            // see it.
            let node = ws.arena.len() as u32;
            ws.arena.push(PathNode {
                asn: a.claimed_origin.raw(),
                parent: NONE,
            });
            (node, 1)
        } else {
            (NONE, 0)
        };
        ws.best[o.usize()] = Best {
            origin: a.claimed_origin.raw(),
            slot: NONE,
            len,
            class: PrefClass::Origin.as_u8(),
            node,
            key: u64::MAX,
        };
        ws.best_epoch[o.usize()] = epoch;
        ws.mark_dirty(o.raw(), 0);
    }

    let mut generation = 0u32;
    loop {
        // ---- Export phase: every AS whose best changed re-announces. ----
        for di in 0..ws.dirty.len() {
            let x = ws.dirty[di];
            let xi = AsIndex::new(x);
            let b = ws.best[x as usize];
            let snapshot = (b.origin, b.len, b.class);
            if ws.last_export_epoch[x as usize] == epoch
                && ws.last_export[x as usize] == snapshot
            {
                continue;
            }
            ws.last_export[x as usize] = snapshot;
            ws.last_export_epoch[x as usize] = epoch;
            let has_route = b.origin != NONE;
            let class = PrefClass::from_u8(b.class);
            // The path node for external exports appends this AS's sibling
            // group; created lazily, once per export phase.
            let mut out_node = NONE;
            let base = net.slots_of(xi).start;
            for (j, nb) in net.topology().neighbors(xi).iter().enumerate() {
                let slot_here = base + j as u32;
                if has_route && may_export(class, nb.rel) {
                    if out_node == NONE {
                        out_node = ws.arena.len() as u32;
                        ws.arena.push(PathNode {
                            asn: x,
                            parent: b.node,
                        });
                    }
                    let node = out_node;
                    ws.sent_epoch[slot_here as usize] = epoch;
                    ws.next.push(Msg {
                        to: nb.index.raw(),
                        slot: net.reverse_slot(slot_here),
                        origin: b.origin,
                        len: b.len + 1,
                        class: b.class,
                        node,
                    });
                } else if ws.sent_epoch[slot_here as usize] == epoch {
                    // Previously announced, now ineligible: withdraw.
                    ws.sent_epoch[slot_here as usize] = 0;
                    ws.next.push(Msg {
                        to: nb.index.raw(),
                        slot: net.reverse_slot(slot_here),
                        origin: NONE,
                        len: 0,
                        class: 0,
                        node: NONE,
                    });
                }
            }
        }
        ws.dirty.clear();

        if ws.next.is_empty() {
            break;
        }
        generation += 1;
        if generation > policy.max_generations {
            stats.truncated = true;
            break;
        }
        stats.generations = generation;
        obs.on_generation_start(generation);
        std::mem::swap(&mut ws.cur, &mut ws.next);

        // ---- Delivery phase. ----
        for mi in 0..ws.cur.len() {
            let msg = ws.cur[mi];
            stats.messages += 1;
            let r = AsIndex::new(msg.to);
            let entry = net.slot_entry(r, msg.slot);
            let (from, rel) = (entry.index, entry.rel);

            let decision = deliver(net, filters, policy, ws, epoch, generation, msg, rel, from);
            match decision {
                Decision::NewBest => stats.accepted += 1,
                Decision::RejectedLoop => stats.loop_rejected += 1,
                Decision::RejectedOrigin => stats.filter_rejected += 1,
                Decision::RejectedStub => stats.stub_rejected += 1,
                Decision::Withdrawn => stats.withdrawals += 1,
                Decision::Stored => {}
            }
            obs.on_message(MessageEvent {
                generation,
                from,
                to: r,
                origin: AsIndex::new(msg.origin),
                len: msg.len,
                decision,
            });
        }
        ws.cur.clear();
    }

    let choices: Vec<Option<Choice>> = (0..net.num_ases())
        .map(|i| {
            if ws.best_epoch[i] != epoch {
                return None;
            }
            let b = ws.best[i];
            if b.origin == NONE {
                return None;
            }
            Some(Choice {
                origin: AsIndex::new(b.origin),
                learned_from: if b.slot == NONE {
                    None
                } else {
                    Some(net.slot_entry(AsIndex::new(i as u32), b.slot).index)
                },
                len: b.len,
                class: PrefClass::from_u8(b.class),
            })
        })
        .collect();
    Propagation::new(choices, stats)
}

/// Applies filters, the loop check, Adj-RIB-In replacement/removal and
/// route re-selection for one delivered message. Returns the decision.
#[allow(clippy::too_many_arguments)]
fn deliver(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    epoch: u32,
    generation: u32,
    msg: Msg,
    rel: Relationship,
    from: AsIndex,
) -> Decision {
    let r = AsIndex::new(msg.to);
    let tier1 = policy.tier1_shortest_path && net.is_tier1(r);

    // An unusable or withdrawn announcement removes the stored entry.
    let unusable = if msg.origin == NONE {
        Some(Decision::Withdrawn)
    } else if filters.rejects_origin(r, AsIndex::new(msg.origin)) {
        Some(Decision::RejectedOrigin)
    } else if filters.stub_defense
        && matches!(rel, Relationship::Customer | Relationship::Peer)
        && net.is_stub(from)
        && filters.authorized_origin.is_some_and(|auth| auth != from)
    {
        // A stub only ever originates, and its neighbors (providers and
        // peers alike) know its prefixes; if it is not this prefix's
        // authorized origin, its announcement is bogus by definition. This
        // matches the paper's optimistic case, where "attacks now
        // originate only from the transit ASes".
        Some(Decision::RejectedStub)
    } else if ws.path_contains(msg.node, r.raw()) {
        Some(Decision::RejectedLoop)
    } else {
        None
    };
    if let Some(decision) = unusable {
        let had_entry = ws.adj_epoch[msg.slot as usize] == epoch;
        ws.adj_epoch[msg.slot as usize] = 0;
        if had_entry && ws.best_epoch[r.usize()] == epoch && ws.best[r.usize()].slot == msg.slot
        {
            // The removed entry was the best route: re-select.
            let new_best = rescan(net, ws, r, tier1, epoch).unwrap_or(NO_ROUTE);
            ws.best[r.usize()] = new_best;
            ws.mark_dirty(r.raw(), generation);
        }
        return decision;
    }

    let class = match PrefClass::from_sender_rel(rel) {
        Some(c) => c,
        None => PrefClass::from_u8(msg.class), // sibling: inherit
    };
    ws.adj[msg.slot as usize] = AdjEntry {
        origin: msg.origin,
        len: msg.len,
        class: class.as_u8(),
        node: msg.node,
    };
    ws.adj_epoch[msg.slot as usize] = epoch;

    let had = ws.best_epoch[r.usize()] == epoch && ws.best[r.usize()].origin != NONE;
    if had && ws.best[r.usize()].slot == NONE {
        // The receiver originates this prefix; its own route wins.
        return Decision::Stored;
    }
    let ckey = key_for(tier1, class, msg.len, msg.slot);
    let cand = Best {
        origin: msg.origin,
        slot: msg.slot,
        len: msg.len,
        class: class.as_u8(),
        node: msg.node,
        key: ckey,
    };
    let decision = if !had {
        ws.best[r.usize()] = cand;
        ws.best_epoch[r.usize()] = epoch;
        Decision::NewBest
    } else {
        let old = ws.best[r.usize()];
        if old.slot == msg.slot {
            // Implicit replacement of the current best's entry.
            let new_best = if ckey >= old.key {
                cand
            } else {
                rescan(net, ws, r, tier1, epoch).expect("entry was just stored")
            };
            let changed = (old.origin, old.len, old.class)
                != (new_best.origin, new_best.len, new_best.class);
            ws.best[r.usize()] = new_best;
            if changed {
                Decision::NewBest
            } else {
                Decision::Stored
            }
        } else if ckey > old.key {
            ws.best[r.usize()] = cand;
            Decision::NewBest
        } else {
            Decision::Stored
        }
    };
    if decision == Decision::NewBest {
        ws.mark_dirty(r.raw(), generation);
    }
    decision
}

/// Re-selects the best entry of `r` by scanning its Adj-RIB-In.
fn rescan(
    net: &SimNet<'_>,
    ws: &Workspace,
    r: AsIndex,
    tier1: bool,
    epoch: u32,
) -> Option<Best> {
    let mut best: Option<Best> = None;
    for slot in net.slots_of(r) {
        if ws.adj_epoch[slot as usize] != epoch {
            continue;
        }
        let e = ws.adj[slot as usize];
        let key = key_for(tier1, PrefClass::from_u8(e.class), e.len, slot);
        if best.is_none_or(|b| key > b.key) {
            best = Some(Best {
                origin: e.origin,
                slot,
                len: e.len,
                class: e.class,
                node: e.node,
                key,
            });
        }
    }
    best
}
