//! The generation-stepped message-passing engine.
//!
//! This is the paper's simulator (§III): "BGP announcements are propagated
//! to neighboring ASes in step-wise fashion… Generation after generation of
//! message propagation continues until convergence is reached."
//!
//! # Model
//!
//! Every AS keeps a per-neighbor Adj-RIB-In with standard BGP replacement
//! semantics: a new announcement from a neighbor replaces that neighbor's
//! previous one; an announcement that fails the loop check or a filter
//! *removes* the previous entry (it is unusable, per RFC 4271 decision
//! processing); and when an AS's new best route is no longer exportable to
//! a neighbor it previously announced to, it sends a withdrawal. After any
//! Adj-RIB-In change the AS re-selects and, if its best changed,
//! re-exports in the next generation. These replacement/withdrawal rules
//! are what make the converged state the *stable* routing solution rather
//! than an artifact of message ordering — see `engine::stable` for the
//! closed-form cross-check.
//!
//! * Preference: customer > peer > provider `LOCAL_PREF`, then shorter AS
//!   path, then lowest neighbor slot (a deterministic stand-in for the
//!   paper's keep-first rule — equal-preference candidates always arrive in
//!   the same generation, so only intra-generation order matters).
//! * Tier-1 ASes compare path length first when
//!   [`PolicyConfig::tier1_shortest_path`] is set.
//! * Export follows the valley-free matrix in [`crate::policy::may_export`].
//! * Sibling groups behave as one AS for preference and export: routes
//!   cross sibling links keeping their external preference class.
//! * Loop prevention is per-ASN, as in real BGP: an AS rejects any
//!   announcement whose AS path already contains itself. (Organizations may
//!   legitimately carry both sibling and provider links between their own
//!   ASes, so group-level rejection would break real topologies.)
//!
//! # One engine, two backing stores
//!
//! The wave loop, delivery and re-selection logic are written once, generic
//! over [`RibState`] — an abstract view of the engine's mutable tables.
//! [`Workspace`] backs a from-scratch propagation; `engine::delta` layers a
//! copy-on-write overlay over a frozen [`RibSnapshot`] to re-converge
//! incrementally from a previously converged state. Because both run the
//! *same* mechanics, their converged results are identical by construction
//! wherever the stable solution is unique (and property tests enforce the
//! bit-level agreement).

use bgpsim_topology::{AsIndex, Relationship};

use crate::filter::FilterContext;
use crate::net::SimNet;
use crate::observer::{Decision, MessageEvent, Observer};
use crate::policy::{may_export, standard_key, tier1_key, PolicyConfig, PrefClass};
use crate::route::{Choice, ConvergenceStats, Propagation};

pub(crate) const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AdjEntry {
    pub(crate) origin: u32,
    pub(crate) len: u16,
    pub(crate) class: u8,
    pub(crate) node: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Best {
    /// `NONE` when the AS currently has no route.
    pub(crate) origin: u32,
    /// Receiver-side slot the route was learned on (`NONE` if self-originated).
    pub(crate) slot: u32,
    pub(crate) len: u16,
    pub(crate) class: u8,
    pub(crate) node: u32,
    pub(crate) key: u64,
}

pub(crate) const NO_ROUTE: Best = Best {
    origin: NONE,
    slot: NONE,
    len: 0,
    class: 0,
    node: NONE,
    key: 0,
};

#[derive(Debug, Clone, Copy)]
pub(crate) struct Msg {
    pub(crate) to: u32,
    /// Receiver-side slot identifying the sender.
    pub(crate) slot: u32,
    /// `NONE` encodes a withdrawal.
    pub(crate) origin: u32,
    pub(crate) len: u16,
    pub(crate) class: u8,
    pub(crate) node: u32,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct PathNode {
    pub(crate) asn: u32,
    pub(crate) parent: u32,
}

/// The engine's mutable tables, abstracted so the same wave loop can run
/// over a plain [`Workspace`] or over a delta overlay (`engine::delta`).
///
/// Presence semantics: `best` / `last_export` / `adj` return `None` when
/// nothing has been recorded for this run (for an overlay: neither in the
/// overlay nor in the baseline). A recorded best of [`NO_ROUTE`] (origin
/// `NONE`) is `Some` — "selected nothing after a withdrawal" is distinct
/// from "never selected".
pub(crate) trait RibState {
    /// The Adj-RIB-In entry stored at receiver-side `slot`, if any.
    fn adj(&self, slot: u32) -> Option<AdjEntry>;
    /// Stores an Adj-RIB-In entry at `slot`.
    fn set_adj(&mut self, slot: u32, e: AdjEntry);
    /// Removes the entry at `slot`, returning whether one was present.
    fn clear_adj(&mut self, slot: u32) -> bool;
    /// The recorded selection of AS `ix`, if any.
    fn best(&self, ix: u32) -> Option<Best>;
    /// Records the selection of AS `ix`.
    fn set_best(&mut self, ix: u32, b: Best);
    /// Whether an announcement is outstanding on sender-side `slot`.
    fn sent(&self, slot: u32) -> bool;
    /// Sets/clears the outstanding-announcement flag on sender-side `slot`.
    fn set_sent(&mut self, slot: u32, on: bool);
    /// The last exported `(origin, len, class)` of AS `ix`, if any.
    fn last_export(&self, ix: u32) -> Option<(u32, u16, u8)>;
    /// Records the last exported triple of AS `ix`.
    fn set_last_export(&mut self, ix: u32, snap: (u32, u16, u8));
    /// Resolves an AS-path arena node.
    fn node(&self, node: u32) -> PathNode;
    /// Appends an AS-path arena node, returning its index.
    fn push_node(&mut self, pn: PathNode) -> u32;
    /// Marks `ix` for re-export in wave `wave`; `true` if newly marked
    /// this wave (the caller then queues it).
    fn try_mark_dirty(&mut self, ix: u32, wave: u32) -> bool;
}

/// Walks an AS-path chain checking for `asn` (per-ASN loop prevention).
fn path_contains<S: RibState>(state: &S, mut node: u32, asn: u32) -> bool {
    while node != NONE {
        let pn = state.node(node);
        if pn.asn == asn {
            return true;
        }
        node = pn.parent;
    }
    false
}

/// The engine's message queues, owned separately from the [`RibState`] so
/// the wave loop can hold `&mut` to both at once. Reused across runs to
/// amortize allocation.
#[derive(Debug, Default)]
pub(crate) struct Queues {
    /// ASes whose best changed and must export next wave.
    pub(crate) dirty: Vec<u32>,
    pub(crate) cur: Vec<Msg>,
    pub(crate) next: Vec<Msg>,
}

impl Queues {
    fn clear(&mut self) {
        self.dirty.clear();
        self.cur.clear();
        self.next.clear();
    }
}

/// Reusable scratch state for [`propagate`].
///
/// A workspace amortizes all allocation across simulations: per-AS and
/// per-edge tables are invalidated by epoch stamps instead of clearing, so
/// back-to-back propagations on the same [`SimNet`] avoid memsetting the
/// large arrays. Create one per thread and reuse it for every simulation in
/// a sweep.
#[derive(Debug, Default)]
pub struct Workspace {
    epoch: u32,
    adj: Vec<AdjEntry>,
    adj_epoch: Vec<u32>,
    /// Sender-side record of whether an announcement is outstanding on a
    /// directed edge (for withdrawal generation).
    sent_epoch: Vec<u32>,
    best: Vec<Best>,
    best_epoch: Vec<u32>,
    /// Last exported (origin, len, class) per AS, to suppress no-op exports.
    last_export: Vec<(u32, u16, u8)>,
    last_export_epoch: Vec<u32>,
    /// `(epoch << 32) | wave` tag deduplicating the dirty queue per wave.
    dirty_tag: Vec<u64>,
    arena: Vec<PathNode>,
    queues: Queues,
}

impl Workspace {
    /// Creates an empty workspace; arrays are sized on first use.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    fn begin(&mut self, net: &SimNet<'_>) {
        let n = net.num_ases();
        let slots = net.num_slots();
        if self.best.len() < n {
            self.best.resize(n, NO_ROUTE);
            self.best_epoch.resize(n, 0);
            self.last_export.resize(n, (NONE, 0, 0));
            self.last_export_epoch.resize(n, 0);
            self.dirty_tag.resize(n, 0);
        }
        if self.adj.len() < slots {
            self.adj.resize(
                slots,
                AdjEntry {
                    origin: NONE,
                    len: 0,
                    class: 0,
                    node: NONE,
                },
            );
            self.adj_epoch.resize(slots, 0);
            self.sent_epoch.resize(slots, 0);
        }
        // Epoch 0 marks "never used"; on wrap, clear all stamps.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.adj_epoch.fill(0);
            self.sent_epoch.fill(0);
            self.best_epoch.fill(0);
            self.last_export_epoch.fill(0);
            self.dirty_tag.fill(0);
            self.epoch = 1;
        }
        self.arena.clear();
        self.queues.clear();
    }

    /// Freezes the converged state of the propagation that just ran in this
    /// workspace. Must be called before the next `begin` (the snapshot
    /// reads the current epoch's stamps). Array lengths are taken from
    /// `net`, not from the (possibly larger, reused) workspace arrays.
    pub(crate) fn snapshot(&self, net: &SimNet<'_>) -> RibSnapshot {
        let n = net.num_ases();
        let slots = net.num_slots();
        let mut sent_bits = vec![0u64; slots.div_ceil(64)];
        for s in 0..slots {
            if self.sent_epoch[s] == self.epoch {
                sent_bits[s / 64] |= 1 << (s % 64);
            }
        }
        RibSnapshot {
            adj_word: (0..slots)
                .map(|s| {
                    if self.adj_epoch[s] == self.epoch {
                        let e = self.adj[s];
                        pack_triple(e.origin, e.len, e.class)
                    } else {
                        ADJ_ABSENT
                    }
                })
                .collect(),
            adj_node: (0..slots)
                .map(|s| {
                    if self.adj_epoch[s] == self.epoch {
                        self.adj[s].node
                    } else {
                        NONE
                    }
                })
                .collect(),
            sent_bits,
            best_word: (0..n)
                .map(|i| {
                    if self.best_epoch[i] == self.epoch {
                        let b = self.best[i];
                        pack_triple(b.origin, b.len, b.class) | best_flags(&b)
                    } else {
                        0
                    }
                })
                .collect(),
            best_link: (0..n)
                .map(|i| {
                    if self.best_epoch[i] == self.epoch {
                        let b = self.best[i];
                        u64::from(b.slot) | (u64::from(b.node) << 32)
                    } else {
                        0
                    }
                })
                .collect(),
            last_export_word: (0..n)
                .map(|i| {
                    if self.last_export_epoch[i] == self.epoch {
                        let (o, l, c) = self.last_export[i];
                        pack_triple(o, l, c) | EXPORT_PRESENT
                    } else {
                        0
                    }
                })
                .collect(),
            arena: self.arena.clone(),
        }
    }
}

impl RibState for Workspace {
    #[inline]
    fn adj(&self, slot: u32) -> Option<AdjEntry> {
        (self.adj_epoch[slot as usize] == self.epoch).then(|| self.adj[slot as usize])
    }

    #[inline]
    fn set_adj(&mut self, slot: u32, e: AdjEntry) {
        self.adj[slot as usize] = e;
        self.adj_epoch[slot as usize] = self.epoch;
    }

    #[inline]
    fn clear_adj(&mut self, slot: u32) -> bool {
        let had = self.adj_epoch[slot as usize] == self.epoch;
        self.adj_epoch[slot as usize] = 0;
        had
    }

    #[inline]
    fn best(&self, ix: u32) -> Option<Best> {
        (self.best_epoch[ix as usize] == self.epoch).then(|| self.best[ix as usize])
    }

    #[inline]
    fn set_best(&mut self, ix: u32, b: Best) {
        self.best[ix as usize] = b;
        self.best_epoch[ix as usize] = self.epoch;
    }

    #[inline]
    fn sent(&self, slot: u32) -> bool {
        self.sent_epoch[slot as usize] == self.epoch
    }

    #[inline]
    fn set_sent(&mut self, slot: u32, on: bool) {
        self.sent_epoch[slot as usize] = if on { self.epoch } else { 0 };
    }

    #[inline]
    fn last_export(&self, ix: u32) -> Option<(u32, u16, u8)> {
        (self.last_export_epoch[ix as usize] == self.epoch).then(|| self.last_export[ix as usize])
    }

    #[inline]
    fn set_last_export(&mut self, ix: u32, snap: (u32, u16, u8)) {
        self.last_export[ix as usize] = snap;
        self.last_export_epoch[ix as usize] = self.epoch;
    }

    #[inline]
    fn node(&self, node: u32) -> PathNode {
        self.arena[node as usize]
    }

    #[inline]
    fn push_node(&mut self, pn: PathNode) -> u32 {
        let i = self.arena.len() as u32;
        self.arena.push(pn);
        i
    }

    #[inline]
    fn try_mark_dirty(&mut self, ix: u32, wave: u32) -> bool {
        let tag = ((self.epoch as u64) << 32) | wave as u64;
        if self.dirty_tag[ix as usize] != tag {
            self.dirty_tag[ix as usize] = tag;
            true
        } else {
            false
        }
    }
}

/// One recorded delivery of a race run: the message, the generation it was
/// delivered in, and whether its processing *removed* the receiver's
/// Adj-RIB-In entry (withdrawal or filter/loop rejection) rather than
/// storing it. Enough to replay the receiver's table timeline without
/// re-running filters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LogDelivery {
    pub(crate) gen: u32,
    pub(crate) msg: Msg,
    pub(crate) removed: bool,
}

/// One recorded export phase of a race run: AS `asn` exported (or
/// withdrew) with best-route triple `triple`, producing the messages
/// delivered in generation `gen`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LogExport {
    pub(crate) gen: u32,
    pub(crate) asn: u32,
    pub(crate) triple: (u32, u16, u8),
}

/// The full message schedule of one propagation, recorded during
/// [`run_waves`]. `engine::delta` replays it to re-converge a baseline
/// with extra announcements on the *same* generation timeline as a
/// from-scratch race, which is what makes delta results bit-identical.
#[derive(Debug, Clone, Default)]
pub(crate) struct RaceLog {
    /// Every delivery, in delivery order (so grouped by ascending `gen`).
    pub(crate) deliveries: Vec<LogDelivery>,
    /// Every non-suppressed export phase, in order of ascending `gen`.
    pub(crate) exports: Vec<LogExport>,
}

/// Packed `origin | len << 32 | class << 48` word shared by the snapshot's
/// adjacency, selection and last-export tables. An `origin` of [`NONE`]
/// still packs losslessly (it occupies exactly the low 32 bits), so the
/// withdrawal-selected [`NO_ROUTE`] round-trips.
#[inline]
fn pack_triple(origin: u32, len: u16, class: u8) -> u64 {
    u64::from(origin) | (u64::from(len) << 32) | (u64::from(class) << 48)
}

/// Absent adjacency sentinel: entries always carry a real origin (unusable
/// announcements *remove* entries), so `origin == NONE` in the packed word
/// means "no entry stored".
const ADJ_ABSENT: u64 = NONE as u64;

/// `best_word` flag bits (byte 56..64): presence plus a 2-bit tag naming
/// how to reconstitute the selection key on read.
const BEST_PRESENT: u64 = 1 << 56;
const KEY_SHIFT: u32 = 57;
/// Key tags: `NO_ROUTE`'s literal 0, a seeded origin's `u64::MAX`, or a
/// recomputation through [`standard_key`] / [`tier1_key`].
const KEY_ZERO: u64 = 0;
const KEY_SEEDED: u64 = 1;
const KEY_STANDARD: u64 = 2;
const KEY_TIER1: u64 = 3;

const EXPORT_PRESENT: u64 = 1 << 56;

/// Frozen converged engine state — the backing store for incremental
/// re-convergence (`engine::delta`).
///
/// The layout is struct-of-arrays with sentinel-keyed packed words (the
/// race engine's packed-key playbook) instead of the obvious
/// `Vec<Option<AdjEntry>>` / `Vec<Option<Best>>`: at paper scale the
/// `Option` tags and padding alone cost hundreds of megabytes across a
/// sweep's baselines. Presence semantics are preserved exactly — including
/// the three-way distinction between "never selected" (`None`), "selected
/// nothing after a withdrawal" (`Some(NO_ROUTE)`) and a real selection —
/// via explicit present bits where the origin sentinel is not enough.
/// Selection keys are not stored at all; a 2-bit tag says whether to
/// rebuild them with [`standard_key`] or [`tier1_key`] (or use the two
/// literal sentinels), which costs a few ALU ops on the rare fall-through
/// read in exchange for 8 bytes per AS.
#[derive(Debug, Clone)]
pub(crate) struct RibSnapshot {
    /// Per-slot `origin | len << 32 | class << 48` ([`ADJ_ABSENT`] when no
    /// entry is stored).
    adj_word: Vec<u64>,
    /// Per-slot AS-path arena node of the stored entry (valid only where
    /// `adj_word` is present).
    adj_node: Vec<u32>,
    /// Outstanding-announcement flags, one bit per slot.
    sent_bits: Vec<u64>,
    /// Per-AS `origin | len << 32 | class << 48 | flags << 56` (present
    /// bit plus key tag in the flags byte).
    best_word: Vec<u64>,
    /// Per-AS `slot | node << 32` of the selection (valid only where
    /// present).
    best_link: Vec<u64>,
    /// Per-AS packed last-export triple with [`EXPORT_PRESENT`].
    last_export_word: Vec<u64>,
    pub(crate) arena: Vec<PathNode>,
}

impl RibSnapshot {
    /// A snapshot of the converged state of *zero* announcements: every
    /// table empty. Re-converging from it is a from-scratch propagation.
    pub(crate) fn empty(net: &SimNet<'_>) -> RibSnapshot {
        RibSnapshot {
            adj_word: vec![ADJ_ABSENT; net.num_slots()],
            adj_node: vec![NONE; net.num_slots()],
            sent_bits: vec![0; net.num_slots().div_ceil(64)],
            best_word: vec![0; net.num_ases()],
            best_link: vec![0; net.num_ases()],
            last_export_word: vec![0; net.num_ases()],
            arena: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn adj(&self, slot: u32) -> Option<AdjEntry> {
        let w = self.adj_word[slot as usize];
        (w as u32 != NONE).then(|| AdjEntry {
            origin: w as u32,
            len: (w >> 32) as u16,
            class: (w >> 48) as u8,
            node: self.adj_node[slot as usize],
        })
    }

    #[inline]
    pub(crate) fn sent(&self, slot: u32) -> bool {
        (self.sent_bits[(slot / 64) as usize] >> (slot % 64)) & 1 != 0
    }

    #[inline]
    pub(crate) fn best(&self, ix: u32) -> Option<Best> {
        let w = self.best_word[ix as usize];
        if w & BEST_PRESENT == 0 {
            return None;
        }
        let (len, class) = ((w >> 32) as u16, (w >> 48) as u8);
        let link = self.best_link[ix as usize];
        let slot = link as u32;
        let key = match w >> KEY_SHIFT {
            KEY_ZERO => 0,
            KEY_SEEDED => u64::MAX,
            KEY_STANDARD => standard_key(PrefClass::from_u8(class), len, slot),
            _ => tier1_key(PrefClass::from_u8(class), len, slot),
        };
        Some(Best {
            origin: w as u32,
            slot,
            len,
            class,
            node: (link >> 32) as u32,
            key,
        })
    }

    #[inline]
    pub(crate) fn last_export(&self, ix: u32) -> Option<(u32, u16, u8)> {
        let w = self.last_export_word[ix as usize];
        (w & EXPORT_PRESENT != 0).then_some((w as u32, (w >> 32) as u16, (w >> 48) as u8))
    }

    /// Number of AS rows (diagnostics and size checks).
    pub(crate) fn num_ases(&self) -> usize {
        self.best_word.len()
    }

    /// Number of slot rows.
    pub(crate) fn num_slots(&self) -> usize {
        self.adj_word.len()
    }

    /// Resident heap footprint of the snapshot's tables, in bytes.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.adj_word.capacity() * 8
            + self.adj_node.capacity() * 4
            + self.sent_bits.capacity() * 8
            + self.best_word.capacity() * 8
            + self.best_link.capacity() * 8
            + self.last_export_word.capacity() * 8
            + self.arena.capacity() * std::mem::size_of::<PathNode>()
    }
}

/// The flags byte of a packed selection: present bit plus the tag that
/// reconstitutes `b.key` on read. The tag is *derived* (by comparing the
/// stored key against each reconstruction) rather than threaded from the
/// policy, so `snapshot` needs no policy handle and a key that several
/// tags reproduce picks any of them soundly.
fn best_flags(b: &Best) -> u64 {
    let kind = if b.key == 0 {
        KEY_ZERO
    } else if b.key == u64::MAX {
        KEY_SEEDED
    } else if b.key == standard_key(PrefClass::from_u8(b.class), b.len, b.slot) {
        KEY_STANDARD
    } else {
        assert_eq!(
            b.key,
            tier1_key(PrefClass::from_u8(b.class), b.len, b.slot),
            "selection key must be reconstructible from (class, len, slot)"
        );
        KEY_TIER1
    };
    BEST_PRESENT | (kind << KEY_SHIFT)
}

#[inline]
pub(crate) fn key_for(tier1_len_first: bool, class: PrefClass, len: u16, slot: u32) -> u64 {
    if tier1_len_first {
        tier1_key(class, len, slot)
    } else {
        standard_key(class, len, slot)
    }
}

/// One initial announcement of the simulated prefix.
///
/// The honest case has `claimed_origin == announcer` (the AS originates its
/// own prefix). A *forged-origin* announcement — the classic
/// origin-validation evasion, where the attacker prepends the victim's ASN
/// so the route appears to originate legitimately — has
/// `claimed_origin != announcer`: the announced AS path starts as
/// `[announcer, claimed_origin]`, path length 1. Loop detection still sees
/// the claimed origin on the path, so the real origin itself always rejects
/// the forgery, exactly as in real BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Announcement {
    /// The AS injecting the announcement.
    pub announcer: AsIndex,
    /// The origin the announcement claims.
    pub claimed_origin: AsIndex,
}

impl Announcement {
    /// An honest origination by `origin`.
    pub fn honest(origin: AsIndex) -> Announcement {
        Announcement {
            announcer: origin,
            claimed_origin: origin,
        }
    }

    /// A forged-origin announcement: `announcer` claims `victim`'s ASN as
    /// the origin of the path.
    pub fn forged(announcer: AsIndex, victim: AsIndex) -> Announcement {
        Announcement {
            announcer,
            claimed_origin: victim,
        }
    }

    /// Whether the announcement misrepresents its origin.
    pub fn is_forged(&self) -> bool {
        self.announcer != self.claimed_origin
    }
}

/// Seeds one announcement into the state and queues its origin for the
/// first export wave. Shared by from-scratch and delta propagation.
///
/// # Panics
///
/// Panics if the announcer or claimed origin is out of range, or if the
/// announcer already self-originates (duplicate announcer, or — for a
/// delta run — an announcer that already originates in the baseline).
pub(crate) fn seed_announcement<S: RibState>(
    net: &SimNet<'_>,
    state: &mut S,
    q: &mut Queues,
    a: &Announcement,
) {
    let o = a.announcer;
    assert!(o.usize() < net.num_ases(), "origin {o} out of range");
    assert!(
        a.claimed_origin.usize() < net.num_ases(),
        "claimed origin out of range"
    );
    assert!(
        !matches!(state.best(o.raw()), Some(b) if b.slot == NONE && b.origin != NONE),
        "duplicate origin {o}"
    );
    let (node, len) = if a.is_forged() {
        // The forged path already carries the victim's ASN behind the
        // announcer, so downstream loop checks (and the victim itself)
        // see it.
        let node = state.push_node(PathNode {
            asn: a.claimed_origin.raw(),
            parent: NONE,
        });
        (node, 1)
    } else {
        (NONE, 0)
    };
    state.set_best(
        o.raw(),
        Best {
            origin: a.claimed_origin.raw(),
            slot: NONE,
            len,
            class: PrefClass::Origin.as_u8(),
            node,
            key: u64::MAX,
        },
    );
    if state.try_mark_dirty(o.raw(), 0) {
        q.dirty.push(o.raw());
    }
}

/// Runs one propagation to convergence and returns every AS's selection.
///
/// `origins` all announce the same prefix in generation 0; for a hijack
/// simulation pass `[target, attacker]` and a [`FilterContext`] authorizing
/// the target. The result is deterministic: it does not depend on thread
/// scheduling or map iteration order.
///
/// # Panics
///
/// Panics if `origins` is empty, contains duplicates, or contains an index
/// out of range for `net`.
///
/// # Examples
///
/// ```
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
/// use bgpsim_routing::{propagate, FilterContext, NullObserver, PolicyConfig, SimNet, Workspace};
///
/// let topo = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
/// let net = SimNet::new(&topo);
/// let origin = topo.index_of(AsId::new(2)).unwrap();
/// let result = propagate(
///     &net,
///     &[origin],
///     &FilterContext::none(),
///     &PolicyConfig::paper(),
///     &mut Workspace::new(),
///     &mut NullObserver,
/// );
/// assert_eq!(result.reached_count(), 2);
/// ```
pub fn propagate<O: Observer>(
    net: &SimNet<'_>,
    origins: &[AsIndex],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    obs: &mut O,
) -> Propagation {
    let announcements: Vec<Announcement> =
        origins.iter().map(|&o| Announcement::honest(o)).collect();
    propagate_announcements(net, &announcements, filters, policy, ws, obs)
}

/// Like [`propagate`], but with full control over each initial
/// [`Announcement`], enabling forged-origin hijacks.
///
/// For a forged announcement the injecting AS's own selection reports the
/// *claimed* origin (that is the point of the forgery); use
/// [`Propagation::path_to_origin`] terminating at the announcer to decide
/// who was actually captured (see `bgpsim_hijack`).
///
/// # Panics
///
/// Panics if `announcements` is empty, contains duplicate announcers, or
/// references ASes out of range for `net`.
pub fn propagate_announcements<O: Observer>(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    obs: &mut O,
) -> Propagation {
    propagate_recorded(net, announcements, filters, policy, ws, obs, None)
}

/// [`propagate_announcements`] with an optional [`RaceLog`] recorder —
/// the entry point `engine::delta` uses to capture a replayable baseline.
pub(crate) fn propagate_recorded<O: Observer>(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    obs: &mut O,
    log: Option<&mut RaceLog>,
) -> Propagation {
    assert!(!announcements.is_empty(), "at least one origin required");
    ws.begin(net);
    let mut stats = ConvergenceStats::default();
    let mut q = std::mem::take(&mut ws.queues);
    for a in announcements {
        seed_announcement(net, ws, &mut q, a);
    }
    run_waves(net, filters, policy, ws, &mut q, &mut stats, obs, log);
    ws.queues = q;
    obs.on_converged(&stats);

    let epoch = ws.epoch;
    let choices: Vec<Option<Choice>> = (0..net.num_ases())
        .map(|i| {
            if ws.best_epoch[i] != epoch {
                return None;
            }
            let b = ws.best[i];
            if b.origin == NONE {
                return None;
            }
            Some(Choice {
                origin: AsIndex::new(b.origin),
                learned_from: if b.slot == NONE {
                    None
                } else {
                    Some(net.slot_entry(AsIndex::new(i as u32), b.slot).index)
                },
                len: b.len,
                class: PrefClass::from_u8(b.class),
            })
        })
        .collect();
    Propagation::new(choices, stats)
}

/// Runs the export phase of one dirty AS: suppression check, last-export
/// memo, per-neighbor announce/withdraw. Messages go to `sink` as
/// `(sender_side_slot, msg)`. Returns the exported best-route triple, or
/// `None` if the phase was suppressed (best unchanged since last export).
/// Shared verbatim by [`run_waves`] and the delta replay loop.
pub(crate) fn export_from<S: RibState>(
    net: &SimNet<'_>,
    state: &mut S,
    x: u32,
    sink: &mut impl FnMut(u32, Msg),
) -> Option<(u32, u16, u8)> {
    let xi = AsIndex::new(x);
    let b = state.best(x).expect("dirty AS has a recorded selection");
    let snapshot = (b.origin, b.len, b.class);
    if state.last_export(x) == Some(snapshot) {
        return None;
    }
    state.set_last_export(x, snapshot);
    let has_route = b.origin != NONE;
    let class = PrefClass::from_u8(b.class);
    // The path node for external exports appends this AS's sibling
    // group; created lazily, once per export phase.
    let mut out_node = NONE;
    let base = net.slots_of(xi).start;
    for (j, nb) in net.topology().neighbors(xi).iter().enumerate() {
        let slot_here = base + j as u32;
        if has_route && may_export(class, nb.rel) {
            if out_node == NONE {
                out_node = state.push_node(PathNode {
                    asn: x,
                    parent: b.node,
                });
            }
            state.set_sent(slot_here, true);
            sink(
                slot_here,
                Msg {
                    to: nb.index.raw(),
                    slot: net.reverse_slot(slot_here),
                    origin: b.origin,
                    len: b.len + 1,
                    class: b.class,
                    node: out_node,
                },
            );
        } else if state.sent(slot_here) {
            // Previously announced, now ineligible: withdraw.
            state.set_sent(slot_here, false);
            sink(
                slot_here,
                Msg {
                    to: nb.index.raw(),
                    slot: net.reverse_slot(slot_here),
                    origin: NONE,
                    len: 0,
                    class: 0,
                    node: NONE,
                },
            );
        }
    }
    Some(snapshot)
}

/// Runs export/delivery waves until the message queues drain (or the
/// generation cap trips). The single source of truth for propagation
/// mechanics — both from-scratch and delta runs call exactly this (the
/// delta replay loop reuses [`export_from`] and [`deliver`] directly).
///
/// When `log` is provided, every export phase and delivery is recorded so
/// the run can later serve as a replayable baseline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_waves<S: RibState, O: Observer>(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    state: &mut S,
    q: &mut Queues,
    stats: &mut ConvergenceStats,
    obs: &mut O,
    mut log: Option<&mut RaceLog>,
) {
    let mut generation = 0u32;
    loop {
        // ---- Export phase: every AS whose best changed re-announces. ----
        for di in 0..q.dirty.len() {
            let x = q.dirty[di];
            let triple = export_from(net, state, x, &mut |_, m| q.next.push(m));
            if let (Some(triple), Some(l)) = (triple, log.as_deref_mut()) {
                // Messages pushed here are delivered in generation + 1.
                l.exports.push(LogExport {
                    gen: generation + 1,
                    asn: x,
                    triple,
                });
            }
        }
        q.dirty.clear();

        if q.next.is_empty() {
            break;
        }
        generation += 1;
        if generation > policy.max_generations {
            stats.truncated = true;
            break;
        }
        stats.generations = generation;
        obs.on_generation_start(generation);
        std::mem::swap(&mut q.cur, &mut q.next);

        // ---- Delivery phase. ----
        for mi in 0..q.cur.len() {
            let msg = q.cur[mi];
            stats.messages += 1;
            let r = AsIndex::new(msg.to);
            let entry = net.slot_entry(r, msg.slot);
            let (from, rel) = (entry.index, entry.rel);

            let decision = deliver(net, filters, policy, state, q, generation, msg, rel, from);
            if let Some(l) = log.as_deref_mut() {
                l.deliveries.push(LogDelivery {
                    gen: generation,
                    msg,
                    removed: matches!(
                        decision,
                        Decision::Withdrawn
                            | Decision::RejectedLoop
                            | Decision::RejectedOrigin
                            | Decision::RejectedStub
                    ),
                });
            }
            match decision {
                Decision::NewBest => stats.accepted += 1,
                Decision::RejectedLoop => stats.loop_rejected += 1,
                Decision::RejectedOrigin => stats.filter_rejected += 1,
                Decision::RejectedStub => stats.stub_rejected += 1,
                Decision::Withdrawn => stats.withdrawals += 1,
                Decision::Stored => {}
            }
            obs.on_message(MessageEvent {
                generation,
                from,
                to: r,
                origin: AsIndex::new(msg.origin),
                len: msg.len,
                decision,
            });
        }
        q.cur.clear();
    }
}

/// Applies filters, the loop check, Adj-RIB-In replacement/removal and
/// route re-selection for one delivered message. Returns the decision.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver<S: RibState>(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    state: &mut S,
    q: &mut Queues,
    generation: u32,
    msg: Msg,
    rel: Relationship,
    from: AsIndex,
) -> Decision {
    let r = AsIndex::new(msg.to);
    let tier1 = policy.tier1_shortest_path && net.is_tier1(r);

    // An unusable or withdrawn announcement removes the stored entry.
    let unusable = if msg.origin == NONE {
        Some(Decision::Withdrawn)
    } else if filters.rejects_origin(r, AsIndex::new(msg.origin)) {
        Some(Decision::RejectedOrigin)
    } else if filters.stub_defense
        && rel != Relationship::Sibling
        && filters.authorized_origin.is_some_and(|auth| {
            // A stub only ever originates, and its providers and peers
            // know its prefixes; if it is not this prefix's authorized
            // origin, any announcement it sends — and any route *claiming*
            // it as origin — is bogus by definition. The origin match is
            // what keeps a stub's hijack from being laundered through a
            // transit sibling: the route crosses the internal sibling link
            // unfiltered but is dropped on every edge leaving the
            // organization. Together these match the paper's optimistic
            // case, where "attacks now originate only from the transit
            // ASes".
            (net.is_stub(from) && auth != from)
                || (net.is_stub(AsIndex::new(msg.origin)) && auth.raw() != msg.origin)
        })
    {
        Some(Decision::RejectedStub)
    } else if path_contains(state, msg.node, r.raw()) {
        Some(Decision::RejectedLoop)
    } else {
        None
    };
    if let Some(decision) = unusable {
        let had_entry = state.clear_adj(msg.slot);
        if had_entry && state.best(r.raw()).is_some_and(|b| b.slot == msg.slot) {
            // The removed entry was the best route: re-select.
            let new_best = rescan(net, state, r, tier1).unwrap_or(NO_ROUTE);
            state.set_best(r.raw(), new_best);
            if state.try_mark_dirty(r.raw(), generation) {
                q.dirty.push(r.raw());
            }
        }
        return decision;
    }

    let class = match PrefClass::from_sender_rel(rel) {
        Some(c) => c,
        None => PrefClass::from_u8(msg.class), // sibling: inherit
    };
    state.set_adj(
        msg.slot,
        AdjEntry {
            origin: msg.origin,
            len: msg.len,
            class: class.as_u8(),
            node: msg.node,
        },
    );

    let cur_best = state.best(r.raw());
    let had = cur_best.is_some_and(|b| b.origin != NONE);
    if had && cur_best.expect("had implies recorded").slot == NONE {
        // The receiver originates this prefix; its own route wins.
        return Decision::Stored;
    }
    let ckey = key_for(tier1, class, msg.len, msg.slot);
    let cand = Best {
        origin: msg.origin,
        slot: msg.slot,
        len: msg.len,
        class: class.as_u8(),
        node: msg.node,
        key: ckey,
    };
    let decision = if !had {
        state.set_best(r.raw(), cand);
        Decision::NewBest
    } else {
        let old = cur_best.expect("had implies recorded");
        if old.slot == msg.slot {
            // Implicit replacement of the current best's entry.
            let new_best = if ckey >= old.key {
                cand
            } else {
                rescan(net, state, r, tier1).expect("entry was just stored")
            };
            let changed =
                (old.origin, old.len, old.class) != (new_best.origin, new_best.len, new_best.class);
            state.set_best(r.raw(), new_best);
            if changed {
                Decision::NewBest
            } else {
                Decision::Stored
            }
        } else if ckey > old.key {
            state.set_best(r.raw(), cand);
            Decision::NewBest
        } else {
            Decision::Stored
        }
    };
    if decision == Decision::NewBest && state.try_mark_dirty(r.raw(), generation) {
        q.dirty.push(r.raw());
    }
    decision
}

/// Re-selects the best entry of `r` by scanning its Adj-RIB-In.
pub(crate) fn rescan<S: RibState>(
    net: &SimNet<'_>,
    state: &S,
    r: AsIndex,
    tier1: bool,
) -> Option<Best> {
    let mut best: Option<Best> = None;
    for slot in net.slots_of(r) {
        let Some(e) = state.adj(slot) else { continue };
        let key = key_for(tier1, PrefClass::from_u8(e.class), e.len, slot);
        if best.is_none_or(|b| key > b.key) {
            best = Some(Best {
                origin: e.origin,
                slot,
                len: e.len,
                class: e.class,
                node: e.node,
                key,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};

    /// Satellite: epoch wrap-around. A workspace whose epoch counter sits
    /// just below `u32::MAX` must survive the wrap: the wrap clears every
    /// stamp array (otherwise stale entries from epoch `k` would read as
    /// valid once the counter cycles back to `k`), and propagations across
    /// the wrap must match a fresh workspace bit for bit.
    #[test]
    fn epoch_wraparound_clears_stamps() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (2, 3, PeerToPeer),
        ]);
        let net = SimNet::new(&topo);
        let o = topo.index_of(AsId::new(4)).unwrap();
        let a = topo.index_of(AsId::new(3)).unwrap();
        let policy = PolicyConfig::paper();
        let ctx = FilterContext::none();

        let mut ws = Workspace::new();
        // Prime the arrays at a normal epoch, then push the counter to the
        // edge so the next begin() lands on u32::MAX and the one after
        // wraps to 0 (which begin() must remap to a cleared epoch 1).
        let first = propagate(&net, &[o], &ctx, &policy, &mut ws, &mut NullObserver);
        ws.epoch = u32::MAX - 1;
        let at_max = propagate(&net, &[o, a], &ctx, &policy, &mut ws, &mut NullObserver);
        assert_eq!(ws.epoch, u32::MAX);
        let wrapped = propagate(&net, &[o], &ctx, &policy, &mut ws, &mut NullObserver);
        assert_eq!(ws.epoch, 1, "wrap must land on cleared epoch 1");

        // Every stamp array was cleared at the wrap, so the only valid
        // stamps afterwards belong to the post-wrap run.
        assert!(ws.best_epoch.iter().all(|&e| e <= 1));
        assert!(ws.adj_epoch.iter().all(|&e| e <= 1));
        assert!(ws.sent_epoch.iter().all(|&e| e <= 1));
        assert!(ws.last_export_epoch.iter().all(|&e| e <= 1));
        assert!(ws.dirty_tag.iter().all(|&t| (t >> 32) <= 1));

        // Results across the wrap match fresh workspaces exactly.
        let fresh_dual = propagate(
            &net,
            &[o, a],
            &ctx,
            &policy,
            &mut Workspace::new(),
            &mut NullObserver,
        );
        assert_eq!(at_max.choices(), fresh_dual.choices());
        assert_eq!(at_max.stats(), fresh_dual.stats());
        assert_eq!(wrapped.choices(), first.choices());
        assert_eq!(wrapped.stats(), first.stats());
    }

    /// The snapshot freezes exactly the converged state: bests mirror the
    /// returned choices, and a workspace reused afterwards does not
    /// disturb the frozen copy.
    #[test]
    fn snapshot_mirrors_converged_state() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (1, 3, ProviderToCustomer)]);
        let net = SimNet::new(&topo);
        let o = topo.index_of(AsId::new(3)).unwrap();
        let mut ws = Workspace::new();
        let p = propagate(
            &net,
            &[o],
            &FilterContext::none(),
            &PolicyConfig::paper(),
            &mut ws,
            &mut NullObserver,
        );
        let snap = ws.snapshot(&net);
        assert_eq!(snap.num_ases(), net.num_ases());
        assert_eq!(snap.num_slots(), net.num_slots());
        for i in 0..net.num_ases() {
            let ix = AsIndex::new(i as u32);
            match (p.choice(ix), snap.best(i as u32)) {
                (Some(c), Some(b)) => {
                    assert_eq!(c.origin.raw(), b.origin);
                    assert_eq!(c.len, b.len);
                    assert_eq!(c.class.as_u8(), b.class);
                }
                (None, b) => assert!(b.is_none() || b.expect("checked").origin == NONE),
                (Some(_), None) => panic!("choice without snapshot best at {ix}"),
            }
        }
    }

    /// The packed snapshot must round-trip every engine table bit for bit:
    /// adjacency entries, sent flags, selections *including the
    /// reconstituted key*, and last-export memos — under both the standard
    /// and the tier-1 key encodings, and for a forged seed (the
    /// `u64::MAX` key tag).
    #[test]
    fn packed_snapshot_round_trips_engine_state() {
        let topo = topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
            (4, 5, ProviderToCustomer),
        ]);
        let net = SimNet::new(&topo);
        let o = topo.index_of(AsId::new(5)).unwrap();
        let a = topo.index_of(AsId::new(3)).unwrap();
        for policy in [PolicyConfig::paper(), PolicyConfig::strict_gao_rexford()] {
            let mut ws = Workspace::new();
            let announcements = [Announcement::honest(o), Announcement::forged(a, o)];
            propagate_announcements(
                &net,
                &announcements,
                &FilterContext::none(),
                &policy,
                &mut ws,
                &mut NullObserver,
            );
            let snap = ws.snapshot(&net);
            for i in 0..net.num_ases() as u32 {
                assert_eq!(snap.best(i), RibState::best(&ws, i), "best {i}");
                assert_eq!(
                    snap.last_export(i),
                    RibState::last_export(&ws, i),
                    "last_export {i}"
                );
            }
            for s in 0..net.num_slots() as u32 {
                assert_eq!(snap.adj(s), RibState::adj(&ws, s), "adj {s}");
                assert_eq!(snap.sent(s), RibState::sent(&ws, s), "sent {s}");
            }
            assert!(snap.heap_bytes() > 0);
        }
    }
}
