//! Closed-form two-origin race solver for the paper policy.
//!
//! `engine::stable` computes the stable solution in one label-setting pass,
//! but only under strict Gao-Rexford preference: the tier-1 shortest-path
//! override ([`PolicyConfig::tier1_shortest_path`]) breaks the monotonicity
//! that pass relies on — a tier-1 AS may prefer a short *provider-class*
//! route over a longer customer route, so `(class, len)` priorities no
//! longer settle in decreasing order everywhere. The break is confined to
//! the handful of tier-1 nodes, though, which suggests a fixed-point
//! decomposition:
//!
//! 1. **Freeze** every tier-1 AS's current selection (initially: none).
//! 2. **One conditioned label-setting pass** over all other ASes. With
//!    tier-1 selections held constant, every remaining relaxation strictly
//!    degrades `(class asc-by-pref, len)` — receiver class never exceeds
//!    sender class (valley-free export plus sibling class inheritance) and
//!    length always grows — so a bucket queue over `(class, len)` settles
//!    each AS exactly once, with the standard slot tie-break.
//! 3. **Re-derive** every tier-1 selection length-first ([`tier1_key`])
//!    from its neighbors' routes in the pass (Jacobi style: all tier-1s
//!    re-select simultaneously from the same pass).
//! 4. Repeat from 2 until the tier-1 selections stop changing.
//!
//! On a fixed point the combined assignment is self-consistent, i.e. a
//! stable routing solution, and the empty initialization makes the
//! iteration track the generation engine's synchronous race (tier-1s hear
//! nothing before anyone else does). Where the stable solution is unique —
//! the delta engine's analysis shows multistability under this policy
//! requires routes laundered through sibling links — every fixed point is
//! *the* race outcome; the `race_equivalence` proptests pin bit-identical
//! [`Propagation`] choices against the generation engine under both
//! policies. Multistable corners can oscillate instead of converging, so
//! the iteration carries a bounded round cap and reports non-convergence
//! by returning `None`; callers (see `bgpsim_hijack::Simulator`) then fall
//! back to the generation engine, which is always correct.
//!
//! Unlike `engine::stable`, the pass needs per-ASN loop checks: frozen
//! tier-1 routes carry paths from the previous round (whose ASNs are not
//! settled in this pass), and forged-origin seeds carry the victim's ASN,
//! so "receiver already settled" no longer implies "receiver not on the
//! path". Paths live in a per-pass arena exactly like the generation
//! engine's.
//!
//! Under strict Gao-Rexford the tier-1 variable set is empty, the first
//! pass is unconditioned, and the solver converges in one round — it is
//! then `engine::stable` plus loop checks (which never fire, since every
//! path ASN is already settled when its export arrives).

use bgpsim_topology::{AsIndex, Relationship};

use crate::engine::generation::{Announcement, PathNode, NONE};
use crate::filter::FilterContext;
use crate::net::{SimNet, RACE_LEAF_BIT};
use crate::observer::Observer;
use crate::policy::{standard_key, tier1_key, PolicyConfig, PrefClass};
use crate::route::{Choice, ConvergenceStats, Propagation};

/// Default cap on fixed-point rounds before [`solve_race`] gives up.
///
/// The tier-1 clique is tiny and densely meshed, so real topologies
/// converge in a handful of rounds (typically 2–4); a run that needs more
/// is almost certainly oscillating between stable states.
pub const DEFAULT_MAX_ROUNDS: u32 = 16;

/// Length capacity of the bucket queue (`4 * STRIDE` buckets in total).
///
/// Keeping it a small constant keeps every bucket header hot in L1 —
/// sizing it by AS count, as path lengths in principle require, spreads
/// the headers over hundreds of kilobytes for lengths that never occur
/// (real AS paths stay in the low tens). A pass that would need a longer
/// path aborts the solve instead ([`RaceWorkspace::overflow`]), making the
/// caller fall back to the generation engine, which is always correct.
const STRIDE: usize = 64;

/// Per-AS pass state, one 24-byte record so a relax visit touches a
/// single cache line: the comparison key up front (every way a candidate
/// can be rejected — receiver settled, receiver a pre-settled tier-1,
/// offer no better — is served by one load), the label payload behind
/// it.
///
/// * Settling sets [`SETTLED_BIT`] in `key`: every live offer loses the
///   comparison (real keys keep the bit clear), and the class / len / slot
///   fields stay decodable for exports and materialization. The bucket
///   drain detects duplicate entries on the same bit.
/// * Pre-settled tier-1s instead hold the all-ones sentinel: offers lose
///   the same comparison, and the relax loop recognizes the sentinel to
///   divert the offer into the tier-1 candidacy tally (see `relax_from`).
#[derive(Debug, Clone, Copy, Default)]
struct Stamp {
    /// [`standard_key`] of the current label, [`SETTLED_BIT`] included
    /// once settled; `u64::MAX` for pre-settled tier-1s; garbage unless
    /// `labeled` is current.
    key: u64,
    /// Epoch when `key` (and the label fields below) was last written.
    labeled: u32,
    /// Epoch mark: "may appear on an in-flight path while unsettled" —
    /// set for ASNs carried by frozen tier-1 paths (the tier-1 itself
    /// included) and forged-origin seeds. Every other path hop is settled
    /// when it is appended, so a receiver that fails both this and the key
    /// test cannot be on the offered path and the loop walk is skipped
    /// (see `relax_from`).
    dirty: u32,
    /// Origin AS of the current label.
    origin: u32,
    /// Arena node of the route's path as received (not including self).
    node: u32,
    /// Sender the route was learned from (`NONE` for self-originated
    /// seeds), recorded so materialization needs no slot lookup.
    from: u32,
}

/// ORed into a key when its AS can no longer be relabeled: at settle
/// time, and from birth for origin seeds (an origin never abandons its
/// own announcement — a sibling re-exporting it would otherwise win the
/// slot tie-break at equal class and length). Real keys keep the bit
/// clear, so one comparison rejects both "offer no better" and "receiver
/// settled", while the bit sits above the class field and leaves the
/// `key_*` decoders unaffected. Distinct from the all-ones tier-1
/// sentinel: bits 50–62 of a settled key are always zero.
const SETTLED_BIT: u64 = 1 << 63;

/// The class field of a [`standard_key`].
#[inline]
fn key_class(key: u64) -> u8 {
    (key >> 48) as u8
}

/// The length field of a [`standard_key`].
#[inline]
fn key_len(key: u64) -> u16 {
    !((key >> 32) as u16)
}

/// One tier-1 AS's frozen selection between rounds. The fixed-point test
/// compares these for equality, so the path is materialized (arena nodes
/// do not survive a pass).
#[derive(Debug, Clone, PartialEq, Eq)]
struct FrozenChoice {
    origin: u32,
    /// Receiver-side slot the route was learned on.
    slot: u32,
    len: u16,
    class: u8,
    /// AS path as received, nearest hop first (the sender, then the
    /// sender's own path).
    path: Vec<u32>,
}

/// Reusable scratch state for [`solve_race`]; create one per thread.
///
/// Epoch-stamped like [`crate::Workspace`]: per-AS arrays are invalidated
/// by bumping a counter once per *pass* (several passes per solve), so
/// back-to-back solves never memset the big arrays. Epoch 0 means "never
/// used"; on wrap the stamps are cleared and the counter restarts at 1.
#[derive(Debug, Default)]
pub struct RaceWorkspace {
    epoch: u32,
    /// Per-AS pass state (tier-1s are pre-settled each pass).
    stamp: Vec<Stamp>,
    /// Path arena, cleared each pass.
    arena: Vec<PathNode>,
    /// Bucket queue: `class * STRIDE + len`, all empty between passes
    /// (every pushed bucket is drained and cleared by the pass loop).
    buckets: Vec<Vec<u32>>,
    /// Set when a pass met a path longer than the bucket queue can order
    /// ([`STRIDE`]); the solve returns `None`.
    overflow: bool,
    /// Per-AS index into `frozen`, `NONE` unless the AS is a variable
    /// tier-1 of the current run.
    t1_index: Vec<u32>,
    /// Variable tier-1 members of the current run (tier-1s that are not
    /// announcers); cleared by the next `begin`.
    t1_nodes: Vec<u32>,
    frozen: Vec<Option<FrozenChoice>>,
    next: Vec<Option<FrozenChoice>>,
    /// Per variable tier-1: best candidacy offered during the current pass
    /// as `(tier1_key, origin, arena node)`, tallied by the relax loop
    /// itself — `derive_tier1` only materializes winners. A zero key means
    /// no offer.
    t1_best: Vec<(u64, u32, u32)>,
    /// Non-leaf ASes settled by the current pass's bucket drain, in settle
    /// order; `finalize_leaves` replays their exports into leaf receivers
    /// once, after the fixed point lands.
    settled: Vec<u32>,
}

impl RaceWorkspace {
    /// Creates an empty workspace; arrays are sized on first use.
    pub fn new() -> RaceWorkspace {
        RaceWorkspace::default()
    }

    fn begin(&mut self, net: &SimNet<'_>) {
        let n = net.num_ases();
        if self.stamp.len() < n {
            self.stamp.resize(n, Stamp::default());
            self.t1_index.resize(n, NONE);
        }
        // Undo the previous run's tier-1 registrations (self-healing even
        // if that run bailed out early).
        for &t in &self.t1_nodes {
            self.t1_index[t as usize] = NONE;
        }
        self.t1_nodes.clear();
        self.frozen.clear();
        self.next.clear();
        self.t1_best.clear();
        self.overflow = false;
        if self.buckets.is_empty() {
            self.buckets.resize_with(4 * STRIDE, Vec::new);
        }
    }

    /// Starts a pass: bumps the label/settled epoch and clears the arena.
    fn begin_pass(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(Stamp::default());
            self.epoch = 1;
        }
        self.arena.clear();
        self.settled.clear();
    }
}

/// Walks an arena path chain checking for `asn`.
fn path_contains(arena: &[PathNode], mut node: u32, asn: u32) -> bool {
    while node != NONE {
        let pn = arena[node as usize];
        if pn.asn == asn {
            return true;
        }
        node = pn.parent;
    }
    false
}

/// Mirrors `generation::deliver`'s defensive-stub predicate: on non-sibling
/// edges, unauthorized stub senders and routes claiming an unauthorized
/// stub origin are both dropped.
#[inline]
fn stub_rejects(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    rel_at_receiver: Relationship,
    sender: AsIndex,
    origin: AsIndex,
) -> bool {
    filters.stub_defense
        && rel_at_receiver != Relationship::Sibling
        && filters.authorized_origin.is_some_and(|auth| {
            (net.is_stub(sender) && auth != sender) || (net.is_stub(origin) && auth != origin)
        })
}

/// Computes the stable race outcome of `announcements` under `policy`,
/// or `None` if the tier-1 fixed point did not settle within `max_rounds`
/// rounds (multistable corner — fall back to the generation engine).
///
/// Selections, tie-breaks and filter semantics match
/// [`crate::propagate_announcements`] bit for bit wherever the solver
/// converges (the `race_equivalence` suite pins this under both policies,
/// forged origins included); only the [`ConvergenceStats`] differ — no
/// messages flow, so `accepted` reports routed ASes and `generations`
/// reports fixed-point rounds.
///
/// # Panics
///
/// Panics if `announcements` is empty, contains duplicate announcers, or
/// references ASes out of range for `net`.
pub fn solve_race(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    max_rounds: u32,
    ws: &mut RaceWorkspace,
) -> Option<Propagation> {
    assert!(!announcements.is_empty(), "at least one origin required");
    let n = net.num_ases();
    for a in announcements {
        assert!(
            a.announcer.usize() < n && a.claimed_origin.usize() < n,
            "announcement references an AS out of range"
        );
    }
    ws.begin(net);

    // The variable set: tier-1s whose selection the fixed point iterates
    // on. Announcers are excluded — an origin's own route always wins, so
    // its selection is a constant of the race.
    if policy.tier1_shortest_path {
        for &t in net.tier1_members() {
            if announcements.iter().any(|a| a.announcer == t) {
                continue;
            }
            ws.t1_index[t.usize()] = ws.t1_nodes.len() as u32;
            ws.t1_nodes.push(t.raw());
            ws.frozen.push(None);
            ws.next.push(None);
            ws.t1_best.push((0, NONE, NONE));
        }
    }

    // Monomorphize the pass on whether filters can fire at all: the
    // undefended sweeps (the fig. 2–4 workload) run inert contexts, and
    // the per-edge predicates are pure overhead there.
    let filtered = !filters.is_inert();
    let mut rounds = 0u32;
    loop {
        if rounds >= max_rounds {
            return None;
        }
        rounds += 1;
        if filtered {
            run_pass::<true>(net, announcements, filters, ws);
        } else {
            run_pass::<false>(net, announcements, filters, ws);
        }
        if ws.overflow {
            return None;
        }
        derive_tier1(ws);
        if ws.next == ws.frozen {
            break;
        }
        std::mem::swap(&mut ws.frozen, &mut ws.next);
    }

    if filtered {
        finalize_leaves::<true>(net, announcements, filters, ws);
    } else {
        finalize_leaves::<false>(net, announcements, filters, ws);
    }

    // Converged: materialize choices from the final pass labels, with the
    // tier-1 variables taken from their (confirmed) frozen selections.
    let epoch = ws.epoch;
    let mut accepted = 0u64;
    let choices: Vec<Option<Choice>> = (0..n)
        .map(|i| {
            // The sender behind a receiver-side slot is that slot's
            // neighbor — the low half of the packed adjacency entry.
            let sender_at = |slot: u32| {
                AsIndex::new(net.race_adj()[slot as usize] as u32 & !RACE_LEAF_BIT as u32)
            };
            let choice = if ws.t1_index[i] != NONE {
                ws.frozen[ws.t1_index[i] as usize].as_ref().map(|f| Choice {
                    origin: AsIndex::new(f.origin),
                    learned_from: Some(sender_at(f.slot)),
                    len: f.len,
                    class: PrefClass::from_u8(f.class),
                })
            } else if ws.stamp[i].labeled == epoch {
                // The pass fully drained, so the key carries
                // [`SETTLED_BIT`]; the decoders ignore it.
                let st = ws.stamp[i];
                Some(Choice {
                    origin: AsIndex::new(st.origin),
                    learned_from: if st.from == NONE {
                        None
                    } else {
                        Some(AsIndex::new(st.from))
                    },
                    len: key_len(st.key),
                    class: PrefClass::from_u8(key_class(st.key)),
                })
            } else {
                None
            };
            accepted += u64::from(choice.is_some());
            choice
        })
        .collect();
    Some(Propagation::new(
        choices,
        ConvergenceStats {
            accepted,
            generations: rounds,
            ..ConvergenceStats::default()
        },
    ))
}

/// [`solve_race`] reporting the final counters through
/// [`Observer::on_converged`] when it succeeds (telemetry must not count a
/// run that the caller is about to redo in the generation engine).
pub fn solve_race_observed<O: Observer>(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    max_rounds: u32,
    ws: &mut RaceWorkspace,
    obs: &mut O,
) -> Option<Propagation> {
    let p = solve_race(net, announcements, filters, policy, max_rounds, ws)?;
    obs.on_converged(&p.stats());
    Some(p)
}

/// One conditioned label-setting pass: origins seed, frozen tier-1
/// selections inject, then the bucket queue settles everyone else in
/// strictly degrading `(class, len)` order.
fn run_pass<const FILTERED: bool>(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    ws: &mut RaceWorkspace,
) {
    ws.begin_pass();
    let RaceWorkspace {
        epoch,
        stamp,
        arena,
        buckets,
        overflow,
        t1_index,
        t1_nodes,
        frozen,
        t1_best,
        settled,
        ..
    } = ws;
    let epoch = *epoch;
    t1_best.fill((0, NONE, NONE));
    // Highest populated length bucket per class, -1 when empty.
    let mut hi = [-1i64; 4];

    // Pre-settle every variable tier-1 with the sentinel before anything
    // exports: offers into them lose the key comparison and are diverted
    // into the candidacy tally instead (materialization reads tier-1 state
    // from `frozen`, never from here). Field updates only — `dirty` marks
    // must survive across this loop.
    for &t in t1_nodes.iter() {
        stamp[t as usize].key = u64::MAX;
        stamp[t as usize].labeled = epoch;
    }

    // Origins settle at birth — [`SETTLED_BIT`] from the start, and they
    // export directly instead of through the bucket queue (whose drain
    // would read the set bit as "already drained"). Seed every origin
    // before relaxing any: an earlier origin's export must not mislabel a
    // later one.
    for a in announcements {
        let o = a.announcer.raw() as usize;
        assert!(
            stamp[o].labeled != epoch,
            "duplicate origin {}",
            a.announcer
        );
        let (node, len) = if a.is_forged() {
            let node = arena.len() as u32;
            arena.push(PathNode {
                asn: a.claimed_origin.raw(),
                parent: NONE,
            });
            stamp[a.claimed_origin.usize()].dirty = epoch;
            (node, 1)
        } else {
            (NONE, 0)
        };
        stamp[o].origin = a.claimed_origin.raw();
        stamp[o].node = node;
        stamp[o].from = NONE;
        stamp[o].key = standard_key(PrefClass::Origin, len, NONE) | SETTLED_BIT;
        stamp[o].labeled = epoch;
    }
    for a in announcements {
        let o = a.announcer.raw() as usize;
        let xkey = stamp[o].key & !SETTLED_BIT;
        relax_from::<FILTERED>(
            net,
            filters,
            epoch,
            stamp,
            arena,
            buckets,
            overflow,
            t1_index,
            t1_best,
            &mut hi,
            xkey,
            a.announcer.raw(),
        );
    }

    // Inject the frozen tier-1 selections: export the routed ones.
    for (k, &t) in t1_nodes.iter().enumerate() {
        let Some(f) = &frozen[k] else { continue };
        let mut node = NONE;
        for &asn in f.path.iter().rev() {
            let next = arena.len() as u32;
            arena.push(PathNode { asn, parent: node });
            stamp[asn as usize].dirty = epoch;
            node = next;
        }
        stamp[t as usize].origin = f.origin;
        stamp[t as usize].node = node;
        // The tier-1's own hop now rides on in-flight paths, so candidacy
        // loop checks against it must walk the arena.
        stamp[t as usize].dirty = epoch;
        relax_from::<FILTERED>(
            net,
            filters,
            epoch,
            stamp,
            arena,
            buckets,
            overflow,
            t1_index,
            t1_best,
            &mut hi,
            standard_key(PrefClass::from_u8(f.class), f.len, f.slot),
            t,
        );
    }

    // Drain buckets best-first. Pushes from a settling AS always land in a
    // strictly worse bucket (receiver class never exceeds sender class,
    // length grows), so every bucket's candidates are final when its turn
    // comes and the processed bucket can be cleared in place.
    for c in (0..4usize).rev() {
        let mut l = 0i64;
        while l <= hi[c] {
            let b = c * STRIDE + l as usize;
            let mut queue = std::mem::take(&mut buckets[b]);
            for &x in &queue {
                let key = stamp[x as usize].key;
                // The settled bit makes a duplicate entry fail this
                // stale-entry check too.
                if key & SETTLED_BIT != 0
                    || (key_class(key) as usize, i64::from(key_len(key))) != (c, l)
                {
                    continue; // the improved label pops elsewhere
                }
                stamp[x as usize].key = key | SETTLED_BIT;
                settled.push(x);
                relax_from::<FILTERED>(
                    net, filters, epoch, stamp, arena, buckets, overflow, t1_index, t1_best,
                    &mut hi, key, x,
                );
            }
            queue.clear();
            buckets[b] = queue;
            l += 1;
        }
    }
}

/// Exports `x`'s current label to every eligible neighbor, improving their
/// labels under [`standard_key`]. Filter and loop semantics mirror
/// `generation::deliver`, restructured for the hot path:
///
/// - Neighbor lists are sorted customers / peers / providers / siblings
///   ([`Topology::class_bounds`]), and [`may_export`] depends only on the
///   receiver's class, so the export rule becomes a choice of segments —
///   everyone for customer/origin-class routes, the customer and sibling
///   segments otherwise — with no per-edge relationship test.
/// - The key comparison runs before the filter and loop predicates; all
///   are pure, so only the evaluation order changes, and most candidates
///   die on the one-load comparison.
/// - The loop check walks the arena only for receivers stamped `dirty`
///   this pass. Every other path hop was settled when it was appended, and
///   the receiver just passed the not-settled test, so it cannot be on the
///   path. Under strict Gao-Rexford nothing is dirty and the walks vanish
///   entirely.
#[allow(clippy::too_many_arguments)]
fn relax_from<const FILTERED: bool>(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    epoch: u32,
    stamp: &mut [Stamp],
    arena: &mut Vec<PathNode>,
    buckets: &mut [Vec<u32>],
    overflow: &mut bool,
    t1_index: &[u32],
    t1_best: &mut [(u64, u32, u32)],
    hi: &mut [i64; 4],
    xkey: u64,
    x: u32,
) {
    let xi = AsIndex::new(x);
    let lab = stamp[x as usize];
    let export_class = PrefClass::from_u8(key_class(xkey));
    let origin = AsIndex::new(lab.origin);
    // The exported path appends `x`; created lazily, once per settle.
    let mut out_node = NONE;
    let range = net.slots_of(xi);
    let cuts = net.race_cuts(x as usize);
    let adj = net.race_adj();
    let rcv_len = key_len(xkey) + 1;
    if rcv_len as usize >= STRIDE {
        // Beyond the bucket queue's length capacity; abandon the solve
        // (the caller re-runs in the generation engine).
        *overflow = true;
        return;
    }

    // One relationship class per segment, so everything derived from it —
    // receiver class, bucket, stub predicate, the class/len fields of the
    // key — hoists out of the per-edge loop. No echo suppression is
    // needed: the route's sender is either settled (it exported at settle
    // time, strictly before `x`) or a tier-1 whose candidacy loop check
    // sees itself on the offered path.
    let mut relax_segment =
        |lo: u32, end: u32, rcv_class: PrefClass, rel_at_receiver: Relationship| {
            if lo == end {
                return;
            }
            if FILTERED && stub_rejects(net, filters, rel_at_receiver, xi, origin) {
                return; // sender- and origin-based: constant over the segment
            }
            let c = rcv_class.as_u8() as usize;
            // Peer-/provider-class routes export only to customers and
            // siblings, so a leaf receiver ([`SimNet::race_leaf`]) of such
            // a route re-exports nothing and influences nothing inside a
            // pass; such receivers are skipped here and labeled once from
            // their senders' final routes after the fixed point lands.
            // Leaves appear only in these two segments: providers have a
            // customer and sibling-segment receivers have a sibling.
            let queue_free = c <= PrefClass::Peer.as_u8() as usize;
            // [`standard_key`] with the slot field zeroed (`!u32::MAX`);
            // each edge ORs its inverted tie slot back in.
            let kbase = standard_key(rcv_class, rcv_len, u32::MAX);
            let bucket_idx = c * STRIDE + rcv_len as usize;
            let mut pushed = false;
            for &packed in &adj[lo as usize..end as usize] {
                if queue_free && packed & RACE_LEAF_BIT != 0 {
                    continue; // labeled after convergence (`finalize_leaves`)
                }
                let r = (packed as u32 & !RACE_LEAF_BIT as u32) as usize;
                let st = stamp[r];
                let rcv_slot = (packed >> 32) as u32;
                let key = kbase | u64::from(!rcv_slot);
                // One comparison rejects settled receivers too (their key
                // carries [`SETTLED_BIT`] or the tier-1 sentinel).
                if st.labeled == epoch && key <= st.key {
                    if st.key == u64::MAX {
                        // Variable tier-1: tally the candidacy under the
                        // length-first tier-1 order instead. Filter and
                        // loop semantics match the label path below.
                        if FILTERED && filters.rejects_origin(AsIndex::new(r as u32), origin) {
                            continue;
                        }
                        if st.dirty == epoch && path_contains(arena, lab.node, r as u32) {
                            continue;
                        }
                        let tkey = tier1_key(rcv_class, rcv_len, rcv_slot);
                        let k = t1_index[r] as usize;
                        if tkey > t1_best[k].0 {
                            if out_node == NONE {
                                out_node = arena.len() as u32;
                                arena.push(PathNode {
                                    asn: x,
                                    parent: lab.node,
                                });
                            }
                            t1_best[k] = (tkey, lab.origin, out_node);
                        }
                    }
                    continue;
                }
                if FILTERED && filters.rejects_origin(AsIndex::new(r as u32), origin) {
                    continue;
                }
                // Per-ASN loop check over x's own path (r != x, so the
                // exported path containing r reduces to this).
                if st.dirty == epoch && path_contains(arena, lab.node, r as u32) {
                    continue;
                }
                if out_node == NONE {
                    out_node = arena.len() as u32;
                    arena.push(PathNode {
                        asn: x,
                        parent: lab.node,
                    });
                }
                stamp[r] = Stamp {
                    key,
                    labeled: epoch,
                    dirty: st.dirty,
                    origin: lab.origin,
                    node: out_node,
                    from: x,
                };
                buckets[bucket_idx].push(r as u32);
                pushed = true;
            }
            if pushed {
                hi[c] = hi[c].max(i64::from(rcv_len));
            }
        };

    // Customers see their provider's export; providers see their
    // customer's; peers see a peer's; siblings inherit the sender's class.
    // Valley-free export reaches peers and providers only for
    // customer/origin-class routes ([`may_export`]).
    relax_segment(
        range.start,
        cuts[0],
        PrefClass::Provider,
        Relationship::Provider,
    );
    if matches!(export_class, PrefClass::Customer | PrefClass::Origin) {
        relax_segment(cuts[0], cuts[1], PrefClass::Peer, Relationship::Peer);
        relax_segment(
            cuts[1],
            cuts[2],
            PrefClass::Customer,
            Relationship::Customer,
        );
    }
    relax_segment(cuts[2], range.end, export_class, Relationship::Sibling);
}

/// Labels every leaf by replaying the final pass's exports into leaf
/// receivers, once, after the fixed point lands. Passes skip leaf
/// receivers (see `relax_from`): a leaf's label influences nothing inside
/// a pass — it exports nothing and is never a variable tier-1 — so
/// recomputing it every pass is wasted work. The senders are exactly the
/// ASes that exported during the final pass (origin seeds, routed frozen
/// tier-1s, and the drained settle list, whose stamps all still hold
/// their final routes), and selection, tie-break, filter and loop
/// semantics mirror the offers `relax_from` suppressed.
fn finalize_leaves<const FILTERED: bool>(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    filters: &FilterContext<'_>,
    ws: &mut RaceWorkspace,
) {
    let RaceWorkspace {
        epoch,
        stamp,
        arena,
        t1_nodes,
        frozen,
        settled,
        ..
    } = ws;
    let epoch = *epoch;
    for a in announcements {
        let o = a.announcer.raw();
        let xkey = stamp[o as usize].key & !SETTLED_BIT;
        relax_leaves::<FILTERED>(net, filters, epoch, stamp, arena, xkey, o);
    }
    for (k, &t) in t1_nodes.iter().enumerate() {
        let Some(f) = &frozen[k] else { continue };
        let xkey = standard_key(PrefClass::from_u8(f.class), f.len, f.slot);
        relax_leaves::<FILTERED>(net, filters, epoch, stamp, arena, xkey, t);
    }
    for &x in settled.iter() {
        let xkey = stamp[x as usize].key & !SETTLED_BIT;
        relax_leaves::<FILTERED>(net, filters, epoch, stamp, arena, xkey, x);
    }
}

/// `relax_from`, reduced to the offers it suppressed: exports `x`'s final
/// route to the leaf receivers among its customers and peers (the only
/// segments where leaves occur — a provider has a customer, and
/// sibling-segment receivers have siblings). The sweep walks
/// [`SimNet::leaf_adj`], so only leaf receivers are ever visited.
/// Max-key selection needs no settle order, so there is no queue:
/// labels improve in place.
fn relax_leaves<const FILTERED: bool>(
    net: &SimNet<'_>,
    filters: &FilterContext<'_>,
    epoch: u32,
    stamp: &mut [Stamp],
    arena: &[PathNode],
    xkey: u64,
    x: u32,
) {
    let cuts = net.leaf_cuts(x as usize);
    if cuts[0] == cuts[2] {
        return; // no leaf neighbors at all
    }
    let xi = AsIndex::new(x);
    let lab = stamp[x as usize];
    let export_class = PrefClass::from_u8(key_class(xkey));
    let origin = AsIndex::new(lab.origin);
    let adj = net.leaf_adj();
    let rcv_len = key_len(xkey) + 1;

    let mut relax_segment = |lo: u32, end: u32, rcv_class: PrefClass, rel: Relationship| {
        if lo == end {
            return;
        }
        if FILTERED && stub_rejects(net, filters, rel, xi, origin) {
            return;
        }
        let kbase = standard_key(rcv_class, rcv_len, u32::MAX);
        for &packed in &adj[lo as usize..end as usize] {
            let r = (packed as u32 & !RACE_LEAF_BIT as u32) as usize;
            let st = stamp[r];
            let key = kbase | u64::from(!((packed >> 32) as u32));
            // Announcer leaves sit settled and reject every offer here.
            if st.labeled == epoch && key <= st.key {
                continue;
            }
            if FILTERED && filters.rejects_origin(AsIndex::new(r as u32), origin) {
                continue;
            }
            if st.dirty == epoch && path_contains(arena, lab.node, r as u32) {
                continue;
            }
            stamp[r] = Stamp {
                key,
                labeled: epoch,
                dirty: st.dirty,
                origin: lab.origin,
                node: NONE, // a leaf's path is never read
                from: x,
            };
        }
    };
    relax_segment(
        cuts[0],
        cuts[1],
        PrefClass::Provider,
        Relationship::Provider,
    );
    if matches!(export_class, PrefClass::Customer | PrefClass::Origin) {
        relax_segment(cuts[1], cuts[2], PrefClass::Peer, Relationship::Peer);
    }
}

/// Materializes every variable tier-1's next selection from the
/// candidacy tally the pass built ([`RaceWorkspace::t1_best`]), writing
/// into `ws.next`. All tier-1s re-select from the same pass (Jacobi
/// style); the winning offer's arena path is copied out because arena
/// nodes do not survive a pass.
fn derive_tier1(ws: &mut RaceWorkspace) {
    let RaceWorkspace {
        arena,
        next,
        t1_best,
        ..
    } = ws;
    for (k, &(tkey, origin, node)) in t1_best.iter().enumerate() {
        // Recycle last round's path allocation for this slot, if any.
        let recycled = next[k].take().map(|mut c| {
            c.path.clear();
            c.path
        });
        if tkey == 0 {
            continue; // no eligible offer this pass
        }
        let mut path = recycled.unwrap_or_default();
        let mut n = node;
        while n != NONE {
            let pn = arena[n as usize];
            path.push(pn.asn);
            n = pn.parent;
        }
        next[k] = Some(FrozenChoice {
            origin,
            slot: !(tkey as u32),
            len: !((tkey >> 34) as u16),
            class: ((tkey >> 32) & 3) as u8,
            path,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::generation::propagate_announcements;
    use crate::observer::NullObserver;
    use crate::Workspace;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*, Topology};

    fn ix(topo: &Topology, n: u32) -> AsIndex {
        topo.index_of(AsId::new(n)).unwrap()
    }

    /// Two tier-1s peering over customer cones — the tier-1 override is
    /// active and the solver must match the generation engine exactly.
    fn topo() -> Topology {
        topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 9, ProviderToCustomer),
            (2, 8, ProviderToCustomer),
            (1, 5, ProviderToCustomer),
            (2, 6, ProviderToCustomer),
            (5, 7, ProviderToCustomer),
        ])
    }

    fn assert_matches_generation(topo: &Topology, announcements: &[Announcement]) {
        let net = SimNet::new(topo);
        let policy = PolicyConfig::paper();
        let ctx = FilterContext::none();
        let expected = propagate_announcements(
            &net,
            announcements,
            &ctx,
            &policy,
            &mut Workspace::new(),
            &mut NullObserver,
        );
        let got = solve_race(
            &net,
            announcements,
            &ctx,
            &policy,
            DEFAULT_MAX_ROUNDS,
            &mut RaceWorkspace::new(),
        )
        .expect("fixed point must converge on this topology");
        assert_eq!(got.choices(), expected.choices());
    }

    #[test]
    fn two_origin_race_matches_generation_engine() {
        let t = topo();
        assert_matches_generation(
            &t,
            &[
                Announcement::honest(ix(&t, 9)),
                Announcement::honest(ix(&t, 8)),
            ],
        );
    }

    #[test]
    fn forged_origin_matches_generation_engine() {
        let t = topo();
        assert_matches_generation(
            &t,
            &[
                Announcement::honest(ix(&t, 9)),
                Announcement::forged(ix(&t, 8), ix(&t, 9)),
            ],
        );
    }

    #[test]
    fn tier1_announcer_is_a_fixed_seed() {
        let t = topo();
        assert_matches_generation(
            &t,
            &[
                Announcement::honest(ix(&t, 9)),
                Announcement::honest(ix(&t, 2)),
            ],
        );
    }

    #[test]
    fn zero_round_cap_reports_non_convergence() {
        let t = topo();
        let net = SimNet::new(&t);
        let result = solve_race(
            &net,
            &[Announcement::honest(ix(&t, 9))],
            &FilterContext::none(),
            &PolicyConfig::paper(),
            0,
            &mut RaceWorkspace::new(),
        );
        assert!(result.is_none(), "a zero cap must force the fallback path");
    }

    #[test]
    fn strict_gao_rexford_converges_in_one_round() {
        let t = topo();
        let net = SimNet::new(&t);
        let p = solve_race(
            &net,
            &[
                Announcement::honest(ix(&t, 9)),
                Announcement::honest(ix(&t, 8)),
            ],
            &FilterContext::none(),
            &PolicyConfig::strict_gao_rexford(),
            DEFAULT_MAX_ROUNDS,
            &mut RaceWorkspace::new(),
        )
        .expect("no tier-1 variables: one pass settles everything");
        assert_eq!(p.stats().generations, 1, "one fixed-point round");
        let expected = crate::engine::stable::solve(
            &net,
            &[ix(&t, 9), ix(&t, 8)],
            &FilterContext::none(),
            &PolicyConfig::strict_gao_rexford(),
        );
        assert_eq!(p.choices(), expected.choices());
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let t = topo();
        let net = SimNet::new(&t);
        let policy = PolicyConfig::paper();
        let ctx = FilterContext::none();
        let mut ws = RaceWorkspace::new();
        let announcements = [
            Announcement::honest(ix(&t, 9)),
            Announcement::honest(ix(&t, 8)),
        ];
        let first = solve_race(
            &net,
            &announcements,
            &ctx,
            &policy,
            DEFAULT_MAX_ROUNDS,
            &mut ws,
        )
        .expect("converges");
        // Interleave a different solve, then repeat the first.
        let other = [
            Announcement::honest(ix(&t, 7)),
            Announcement::forged(ix(&t, 6), ix(&t, 7)),
        ];
        solve_race(&net, &other, &ctx, &policy, DEFAULT_MAX_ROUNDS, &mut ws).expect("converges");
        let again = solve_race(
            &net,
            &announcements,
            &ctx,
            &policy,
            DEFAULT_MAX_ROUNDS,
            &mut ws,
        )
        .expect("converges");
        assert_eq!(first.choices(), again.choices());
        assert_eq!(first.stats(), again.stats());
    }

    /// Epoch wrap-around: stamps are cleared at the wrap so stale labels
    /// from the old cycle can never leak into post-wrap passes.
    #[test]
    fn epoch_wraparound_clears_stamps() {
        let t = topo();
        let net = SimNet::new(&t);
        let policy = PolicyConfig::paper();
        let ctx = FilterContext::none();
        let announcements = [
            Announcement::honest(ix(&t, 9)),
            Announcement::honest(ix(&t, 8)),
        ];
        let mut ws = RaceWorkspace::new();
        let first = solve_race(
            &net,
            &announcements,
            &ctx,
            &policy,
            DEFAULT_MAX_ROUNDS,
            &mut ws,
        )
        .expect("converges");
        ws.epoch = u32::MAX - 1;
        let wrapped = solve_race(
            &net,
            &announcements,
            &ctx,
            &policy,
            DEFAULT_MAX_ROUNDS,
            &mut ws,
        )
        .expect("converges");
        assert!(ws.epoch < u32::MAX - 1, "the pass counter wrapped");
        assert!(ws
            .stamp
            .iter()
            .all(|s| s.labeled <= ws.epoch && s.dirty <= ws.epoch));
        assert_eq!(first.choices(), wrapped.choices());
    }

    #[test]
    #[should_panic(expected = "duplicate origin")]
    fn duplicate_announcer_panics() {
        let t = topo();
        let net = SimNet::new(&t);
        let _ = solve_race(
            &net,
            &[
                Announcement::honest(ix(&t, 9)),
                Announcement::forged(ix(&t, 9), ix(&t, 8)),
            ],
            &FilterContext::none(),
            &PolicyConfig::paper(),
            DEFAULT_MAX_ROUNDS,
            &mut RaceWorkspace::new(),
        );
    }
}
