//! Direct computation of the stable routing solution (strict Gao-Rexford).
//!
//! Under strict Gao-Rexford preference (no tier-1 shortest-path override)
//! route preference strictly decreases along every export edge: customer
//! and origin routes degrade to customer routes going up, to peer routes
//! sideways and to provider routes going down, and path length grows by
//! one on every hop. That monotonicity makes the stable solution computable
//! by a single label-setting (Dijkstra-style) pass over `(class, length)`
//! priorities — no message passing, no convergence loop.
//!
//! This solver serves three roles:
//!
//! 1. A fast path for bulk sweeps that use strict Gao-Rexford policy.
//! 2. An independent oracle: property tests assert it agrees exactly with
//!    the generation engine (`engine::generation`) on random topologies.
//! 3. An ablation subject (`bench/ablate_engines`): the paper's tier-1
//!    shortest-path refinement is precisely what this solver *cannot*
//!    express, which quantifies that policy's effect.
//!
//! # Panics
//!
//! [`solve`] panics if called with a [`PolicyConfig`] whose
//! `tier1_shortest_path` is set — tier-1 length-first preference breaks the
//! monotonicity the algorithm relies on. Use the generation engine there.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bgpsim_topology::{AsIndex, Relationship};

use crate::filter::FilterContext;
use crate::net::SimNet;
use crate::observer::Observer;
use crate::policy::{may_export, standard_key, PolicyConfig, PrefClass};
use crate::route::{Choice, ConvergenceStats, Propagation};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Label {
    key: u64,
    origin: u32,
    slot: u32,
    len: u16,
    class: u8,
}

/// Computes the stable routing solution for simultaneous announcements of
/// one prefix by `origins`, under strict Gao-Rexford preference.
///
/// Selections, tie-breaks and filter semantics match
/// [`crate::engine::generation::propagate`] exactly (that equivalence is
/// enforced by property tests); only the `ConvergenceStats` differ —
/// this algorithm has no generations or messages, so the stats report the
/// number of settled ASes as `accepted` and leave message counters at zero.
///
/// # Panics
///
/// Panics if `origins` is empty or duplicated, or if
/// `policy.tier1_shortest_path` is set.
pub fn solve(
    net: &SimNet<'_>,
    origins: &[AsIndex],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
) -> Propagation {
    assert!(
        !policy.tier1_shortest_path,
        "the stable solver supports strict Gao-Rexford policy only"
    );
    assert!(!origins.is_empty(), "at least one origin required");
    let n = net.num_ases();
    let mut label: Vec<Option<Label>> = vec![None; n];
    let mut settled = vec![false; n];
    // Max-heap on (class, shorter-len, lower-index) priority. The index
    // component only makes pop order deterministic; correctness needs just
    // class-then-length order.
    let mut heap: BinaryHeap<(u8, Reverse<u16>, Reverse<u32>)> = BinaryHeap::new();

    for &o in origins {
        assert!(o.usize() < n, "origin {o} out of range");
        assert!(label[o.usize()].is_none(), "duplicate origin {o}");
        label[o.usize()] = Some(Label {
            key: u64::MAX,
            origin: o.raw(),
            slot: NONE,
            len: 0,
            class: PrefClass::Origin.as_u8(),
        });
        heap.push((PrefClass::Origin.as_u8(), Reverse(0), Reverse(o.raw())));
    }

    let mut settled_count = 0u64;
    while let Some((class, Reverse(len), Reverse(x))) = heap.pop() {
        let xi = AsIndex::new(x);
        if settled[x as usize] {
            continue;
        }
        let lab = label[x as usize].expect("heap entries have labels");
        if (lab.class, lab.len) != (class, len) {
            continue; // stale heap entry
        }
        settled[x as usize] = true;
        settled_count += 1;

        // Relax: export x's best to every eligible neighbor.
        let export_class = PrefClass::from_u8(lab.class);
        let base = net.slots_of(xi).start;
        for (j, nb) in net.topology().neighbors(xi).iter().enumerate() {
            let slot_here = base + j as u32;
            if slot_here == lab.slot {
                continue; // no echo to the route's sender
            }
            if !may_export(export_class, nb.rel) {
                continue;
            }
            let r = nb.index;
            if settled[r.usize()] {
                continue;
            }
            let origin = AsIndex::new(lab.origin);
            if filters.rejects_origin(r, origin) {
                continue;
            }
            let rel_at_receiver = nb.rel.reversed();
            if filters.stub_defense
                && rel_at_receiver != Relationship::Sibling
                && filters.authorized_origin.is_some_and(|auth| {
                    // Mirrors `generation::deliver` exactly: unauthorized
                    // stub senders AND routes claiming an unauthorized stub
                    // origin are dropped on every non-sibling edge, so a
                    // hijack cannot be laundered out of the organization
                    // through a transit sibling.
                    (net.is_stub(xi) && auth != xi) || (net.is_stub(origin) && auth != origin)
                })
            {
                continue;
            }
            let rcv_class = match PrefClass::from_sender_rel(rel_at_receiver) {
                Some(c) => c,
                None => export_class, // sibling inherits
            };
            let rcv_slot = net.reverse_slot(slot_here);
            let rcv_len = lab.len + 1;
            let key = standard_key(rcv_class, rcv_len, rcv_slot);
            let better = label[r.usize()].is_none_or(|cur| key > cur.key);
            if better {
                label[r.usize()] = Some(Label {
                    key,
                    origin: lab.origin,
                    slot: rcv_slot,
                    len: rcv_len,
                    class: rcv_class.as_u8(),
                });
                heap.push((rcv_class.as_u8(), Reverse(rcv_len), Reverse(r.raw())));
            }
        }
    }

    let choices: Vec<Option<Choice>> = label
        .iter()
        .enumerate()
        .map(|(i, l)| {
            l.map(|l| Choice {
                origin: AsIndex::new(l.origin),
                learned_from: if l.slot == NONE {
                    None
                } else {
                    Some(net.slot_entry(AsIndex::new(i as u32), l.slot).index)
                },
                len: l.len,
                class: PrefClass::from_u8(l.class),
            })
        })
        .collect();
    Propagation::new(
        choices,
        ConvergenceStats {
            accepted: settled_count,
            ..ConvergenceStats::default()
        },
    )
}

/// [`solve`], reporting the final counters to `obs` via
/// [`Observer::on_converged`] — the closed-form counterpart of the
/// message-passing engines' convergence hook, so telemetry collectors see
/// stable-solver dispatches too. The solver delivers no messages and runs
/// no generations; only `accepted` (settled ASes) is nonzero.
///
/// # Panics
///
/// As [`solve`].
pub fn solve_observed<O: Observer>(
    net: &SimNet<'_>,
    origins: &[AsIndex],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
    obs: &mut O,
) -> Propagation {
    let p = solve(net, origins, filters, policy);
    obs.on_converged(&p.stats());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};

    #[test]
    #[should_panic(expected = "strict Gao-Rexford")]
    fn rejects_tier1_policy() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
        let net = SimNet::new(&topo);
        let o = topo.index_of(AsId::new(2)).unwrap();
        let _ = solve(&net, &[o], &FilterContext::none(), &PolicyConfig::paper());
    }

    #[test]
    fn single_origin_reaches_everyone_in_a_tree() {
        let topo = topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (3, 4, ProviderToCustomer),
        ]);
        let net = SimNet::new(&topo);
        let o = topo.index_of(AsId::new(4)).unwrap();
        let p = solve(
            &net,
            &[o],
            &FilterContext::none(),
            &PolicyConfig::strict_gao_rexford(),
        );
        assert_eq!(p.reached_count(), 4);
        let c1 = p.choice(topo.index_of(AsId::new(2)).unwrap()).unwrap();
        assert_eq!(c1.origin, o);
        assert_eq!(c1.len, 3); // 4 → 3 → 1 → 2
    }
}
