//! Propagation engines.
//!
//! Two independent implementations of the same routing semantics:
//!
//! * [`generation`] — the paper's step-wise message-passing simulator, with
//!   full observability (per-generation message events) and support for the
//!   tier-1 shortest-path rule.
//! * [`stable`] — a closed-form label-setting solver for strict
//!   Gao-Rexford policy, used as a fast path and as an independent oracle
//!   in property tests.
//!
//! Plus one accelerator built on the first: [`delta`] re-converges a
//! frozen, already-converged state after injecting additional
//! announcements, running only the perturbed frontier through the *same*
//! message-passing mechanics (shared via the `RibState` seam inside
//! [`generation`]).

pub mod delta;
pub mod generation;
pub mod stable;

pub use delta::{propagate_delta, Baseline, DeltaResult, DeltaWorkspace};
pub use generation::{propagate, propagate_announcements, Announcement, Workspace};
pub use stable::solve;
