//! Propagation engines.
//!
//! Two independent implementations of the same routing semantics:
//!
//! * [`generation`] — the paper's step-wise message-passing simulator, with
//!   full observability (per-generation message events) and support for the
//!   tier-1 shortest-path rule.
//! * [`stable`] — a closed-form label-setting solver for strict
//!   Gao-Rexford policy, used as a fast path and as an independent oracle
//!   in property tests.
//!
//! Plus two accelerators built on them: [`delta`] re-converges a frozen,
//! already-converged state after injecting additional announcements,
//! running only the perturbed frontier through the *same* message-passing
//! mechanics (shared via the `RibState` seam inside [`generation`]); and
//! [`race`] extends the closed-form approach to the paper policy
//! (tier-1 shortest-path) by wrapping the label-setting pass in a small
//! fixed-point over the tier-1 clique's selections, falling back to
//! [`generation`] when that fixed point does not settle.

pub mod delta;
pub mod generation;
pub mod race;
pub mod stable;

pub use delta::{propagate_delta, Baseline, DeltaResult, DeltaWorkspace};
pub use generation::{propagate, propagate_announcements, Announcement, Workspace};
pub use race::{solve_race, solve_race_observed, RaceWorkspace, DEFAULT_MAX_ROUNDS};
pub use stable::solve;
