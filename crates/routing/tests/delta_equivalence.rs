//! Property tests pinning baseline + delta re-convergence to full
//! two-origin propagation, bit for bit.
//!
//! The delta engine (`engine::delta`) freezes the converged honest state
//! and re-converges it with the attacker's announcement injected. Its
//! contract is *bit-identical* results: for every AS the re-converged
//! `Choice` (origin, learned_from, len, class) equals the one a
//! from-scratch run of the combined announcement set produces — and
//! therefore so does every quantity derived from choices, in particular
//! the polluted set (`captured_by`). These tests enforce that on random
//! DAG-structured topologies across the attack shapes of §IV:
//!
//! * origin hijacks (honest competition for the same prefix),
//! * sub-prefix hijacks (no competition: empty baseline),
//! * forged-origin hijacks (the attacker prepends the victim's ASN),
//!
//! each under no filters, origin validation at random validators, and
//! validators + defensive stub filtering — for both the paper policy and
//! strict Gao-Rexford. Workspaces (full and delta) are shared across all
//! scenarios of a case, so state leakage between runs would also fail.

use proptest::prelude::*;

use bgpsim_routing::{
    propagate_announcements, propagate_delta, Announcement, AsSet, Baseline, DeltaWorkspace,
    FilterContext, NullObserver, PolicyConfig, SimNet, Workspace,
};
use bgpsim_topology::{AsId, AsIndex, LinkKind, Topology, TopologyBuilder};

/// A random topology recipe, identical in shape to the one in
/// `equivalence.rs`: provider links oriented small→large index keep the
/// provider hierarchy acyclic, as Gao-Rexford stability requires.
#[derive(Debug, Clone)]
struct Recipe {
    n: u32,
    p2c: Vec<(u32, u32)>,
    p2p: Vec<(u32, u32)>,
    s2s: Vec<(u32, u32)>,
    target: u32,
    attacker: u32,
    validators: Vec<u32>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (4u32..24).prop_flat_map(|n| {
        let pair = (0..n, 0..n);
        (
            proptest::collection::vec(pair.clone(), 3..40),
            proptest::collection::vec(pair.clone(), 0..12),
            proptest::collection::vec(pair, 0..4),
            0..n,
            0..n,
            proptest::collection::vec(0..n, 0..6),
        )
            .prop_map(
                move |(p2c, p2p, s2s, target, attacker, validators)| Recipe {
                    n,
                    p2c,
                    p2p,
                    s2s,
                    target,
                    attacker,
                    validators,
                },
            )
    })
}

fn build(recipe: &Recipe) -> Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..recipe.n {
        b.add_as(AsId::new(i + 1));
    }
    for &(x, y) in &recipe.p2c {
        if x != y {
            let (p, c) = if x < y { (x, y) } else { (y, x) };
            let _ = b.add_link(
                AsId::new(p + 1),
                AsId::new(c + 1),
                LinkKind::ProviderToCustomer,
            );
        }
    }
    for &(x, y) in &recipe.p2p {
        if x != y {
            let _ = b.add_link(AsId::new(x + 1), AsId::new(y + 1), LinkKind::PeerToPeer);
        }
    }
    for &(x, y) in &recipe.s2s {
        if x != y {
            let _ = b.add_link(
                AsId::new(x + 1),
                AsId::new(y + 1),
                LinkKind::SiblingToSibling,
            );
        }
    }
    b.build().expect("non-empty")
}

/// Asserts one delta run against its from-scratch oracle: every choice
/// identical, and (as an explicit, if redundant, check) the polluted sets
/// identical both through the materialized propagation and through the
/// O(touched) view.
#[allow(clippy::too_many_arguments)]
fn assert_delta_matches(
    net: &SimNet<'_>,
    baseline: &Baseline,
    base_announcements: &[Announcement],
    injection: Announcement,
    ctx: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    dws: &mut DeltaWorkspace,
    label: &str,
) -> Result<(), TestCaseError> {
    let delta = propagate_delta(
        net,
        baseline,
        &[injection],
        ctx,
        policy,
        dws,
        &mut NullObserver,
    );
    let mut combined = base_announcements.to_vec();
    combined.push(injection);
    let full = propagate_announcements(net, &combined, ctx, policy, ws, &mut NullObserver);
    for i in 0..net.num_ases() {
        let ix = AsIndex::new(i as u32);
        prop_assert_eq!(
            delta.choice(ix),
            full.choice(ix),
            "[{}] choice divergence at index {}",
            label,
            i
        );
    }
    let materialized = delta.to_propagation();
    prop_assert_eq!(
        materialized.choices(),
        full.choices(),
        "[{}] materialized choices diverge",
        label
    );
    // Polluted set (attacker's captures): identical because choices are —
    // asserted directly so the contract is pinned even if captured_by's
    // derivation changes.
    let attacker = injection.announcer;
    prop_assert_eq!(
        materialized.captured_by(attacker).collect::<Vec<_>>(),
        full.captured_by(attacker).collect::<Vec<_>>(),
        "[{}] polluted set diverges",
        label
    );
    // Touched completeness: an AS the delta run never touched must hold its
    // baseline choice (`choice()` falls through, so if full disagreed the
    // loop above already failed — this pins the fall-through itself).
    let touched: Vec<AsIndex> = delta.touched().collect();
    for i in 0..net.num_ases() {
        let ix = AsIndex::new(i as u32);
        if !touched.contains(&ix) {
            prop_assert_eq!(
                delta.choice(ix),
                baseline.propagation(net).choice(ix),
                "[{}] untouched AS {} lost its baseline choice",
                label,
                i
            );
        }
    }
    // Replay determinism: a second run of the same injection over the
    // reused workspace must reproduce the packed replay bit for bit.
    let again = propagate_delta(
        net,
        baseline,
        &[injection],
        ctx,
        policy,
        dws,
        &mut NullObserver,
    )
    .to_propagation();
    prop_assert_eq!(
        again.choices(),
        materialized.choices(),
        "[{}] repeated replay diverges",
        label
    );
    Ok(())
}

/// Runs the full scenario matrix for one recipe; shared by the property
/// test and any future pinned regressions.
fn assert_delta_equivalence(recipe: &Recipe) -> Result<(), TestCaseError> {
    let topo = build(recipe);
    let net = SimNet::new(&topo);
    let target = AsIndex::new(recipe.target);
    let attacker = AsIndex::new(recipe.attacker);
    if target == attacker {
        return Ok(());
    }
    let validators = AsSet::from_members(&topo, recipe.validators.iter().map(|&v| AsIndex::new(v)));
    let contexts = [
        ("none", FilterContext::none()),
        (
            "validators",
            FilterContext::origin_validation(target, &validators),
        ),
        (
            "validators+stub",
            FilterContext {
                authorized_origin: Some(target),
                validators: Some(&validators),
                stub_defense: true,
            },
        ),
    ];
    // One workspace pair across ALL scenarios: reuse must not leak state.
    let mut ws = Workspace::new();
    let mut dws = DeltaWorkspace::new();
    for policy in [PolicyConfig::paper(), PolicyConfig::strict_gao_rexford()] {
        for (ctx_name, ctx) in &contexts {
            let honest = [Announcement::honest(target)];
            let baseline = Baseline::build(&net, &honest, ctx, &policy, &mut ws);
            // The packed layout accounts its own storage: a recorded
            // schedule can only add to the empty footprint for the same
            // network.
            prop_assert!(baseline.heap_bytes() >= Baseline::empty(&net, &policy).heap_bytes());
            // Origin hijack: attacker competes for the target's prefix.
            assert_delta_matches(
                &net,
                &baseline,
                &honest,
                Announcement::honest(attacker),
                ctx,
                &policy,
                &mut ws,
                &mut dws,
                &format!("origin/{ctx_name}"),
            )?;
            // Forged-origin hijack: attacker claims the target's ASN.
            assert_delta_matches(
                &net,
                &baseline,
                &honest,
                Announcement::forged(attacker, target),
                ctx,
                &policy,
                &mut ws,
                &mut dws,
                &format!("forged/{ctx_name}"),
            )?;
            // Sub-prefix hijack: the bogus more-specific prefix has no
            // honest competition — empty baseline, from-scratch oracle.
            let empty = Baseline::empty(&net, &policy);
            assert_delta_matches(
                &net,
                &empty,
                &[],
                Announcement::honest(attacker),
                ctx,
                &policy,
                &mut ws,
                &mut dws,
                &format!("subprefix/{ctx_name}"),
            )?;
        }
    }
    Ok(())
}

/// Pinned regression: the topology that broke the first (snapshot-only)
/// delta design. AS 12's honest best is a customer-class route laundered
/// through sibling 4, which a provider-class attacker route can never
/// dislodge *after* convergence — but in the simultaneous race AS 12
/// adopts the attacker at generation 1, before the sibling route exists,
/// and tier-1 AS 4 (shortest-path-first) follows it. The paper policy
/// admits both stable states; only schedule replay picks the raced one.
#[test]
fn pinned_regression_sibling_laundered_multistability() {
    let recipe = Recipe {
        n: 13,
        p2c: vec![
            (3, 12),
            (7, 7),
            (8, 0),
            (0, 12),
            (8, 7),
            (7, 9),
            (12, 9),
            (8, 6),
            (8, 2),
            (10, 5),
            (2, 3),
            (12, 9),
            (8, 10),
            (3, 9),
            (10, 11),
            (1, 6),
            (7, 1),
            (9, 12),
            (2, 6),
            (6, 4),
            (9, 9),
            (2, 7),
            (1, 7),
            (7, 6),
            (1, 12),
            (1, 11),
            (5, 2),
            (6, 3),
            (0, 9),
            (7, 11),
            (0, 9),
            (5, 7),
            (7, 0),
        ],
        p2p: vec![(9, 2), (9, 0)],
        s2s: vec![(12, 4), (1, 10)],
        target: 11,
        attacker: 0,
        validators: vec![],
    };
    assert_delta_equivalence(&recipe).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Baseline + delta re-convergence is bit-identical to full
    /// propagation across attack kinds, filter contexts and policies.
    #[test]
    fn delta_matches_full_propagation(recipe in arb_recipe()) {
        assert_delta_equivalence(&recipe)?;
    }
}
