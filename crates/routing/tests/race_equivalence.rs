//! Property tests pinning the race solver (`engine::race`) to the
//! generation engine, bit for bit.
//!
//! The race solver's contract is conditional: *whenever it converges*
//! (returns `Some`), every `Choice` (origin, learned_from, len, class)
//! equals the one a from-scratch generation run of the same announcement
//! set produces — and therefore so does every derived quantity, in
//! particular the polluted set (`captured_by`). On `None` the caller falls
//! back to the generation engine, so divergence is impossible by
//! construction there; the tests additionally record that convergence is
//! the overwhelmingly common case (strict Gao-Rexford must *always*
//! converge, in exactly one round).
//!
//! The matrix mirrors `delta_equivalence.rs`: random DAG-structured
//! topologies × {origin, forged-origin, sub-prefix} × {no filters, origin
//! validation, validators + defensive stub filters} × both policies, with
//! one shared `RaceWorkspace` across all scenarios of a case so state
//! leakage between runs would also fail. The sibling-laundered
//! multistability seed from the delta suite is pinned here too — it is the
//! known stress case for the tier-1 fixed point (the paper policy admits
//! two stable states there, and only the raced one is correct).

use proptest::prelude::*;

use bgpsim_routing::{
    propagate_announcements, solve_race, Announcement, AsSet, FilterContext, NullObserver,
    PolicyConfig, RaceWorkspace, SimNet, Workspace, DEFAULT_MAX_ROUNDS,
};
use bgpsim_topology::{AsId, AsIndex, LinkKind, Topology, TopologyBuilder};

/// A random topology recipe, identical in shape to the one in
/// `delta_equivalence.rs`: provider links oriented small→large index keep
/// the provider hierarchy acyclic, as Gao-Rexford stability requires.
#[derive(Debug, Clone)]
struct Recipe {
    n: u32,
    p2c: Vec<(u32, u32)>,
    p2p: Vec<(u32, u32)>,
    s2s: Vec<(u32, u32)>,
    target: u32,
    attacker: u32,
    validators: Vec<u32>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (4u32..24).prop_flat_map(|n| {
        let pair = (0..n, 0..n);
        (
            proptest::collection::vec(pair.clone(), 3..40),
            proptest::collection::vec(pair.clone(), 0..12),
            proptest::collection::vec(pair, 0..4),
            0..n,
            0..n,
            proptest::collection::vec(0..n, 0..6),
        )
            .prop_map(
                move |(p2c, p2p, s2s, target, attacker, validators)| Recipe {
                    n,
                    p2c,
                    p2p,
                    s2s,
                    target,
                    attacker,
                    validators,
                },
            )
    })
}

fn build(recipe: &Recipe) -> Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..recipe.n {
        b.add_as(AsId::new(i + 1));
    }
    for &(x, y) in &recipe.p2c {
        if x != y {
            let (p, c) = if x < y { (x, y) } else { (y, x) };
            let _ = b.add_link(
                AsId::new(p + 1),
                AsId::new(c + 1),
                LinkKind::ProviderToCustomer,
            );
        }
    }
    for &(x, y) in &recipe.p2p {
        if x != y {
            let _ = b.add_link(AsId::new(x + 1), AsId::new(y + 1), LinkKind::PeerToPeer);
        }
    }
    for &(x, y) in &recipe.s2s {
        if x != y {
            let _ = b.add_link(
                AsId::new(x + 1),
                AsId::new(y + 1),
                LinkKind::SiblingToSibling,
            );
        }
    }
    b.build().expect("non-empty")
}

/// Asserts one race solve against its from-scratch oracle. Returns whether
/// the solver converged (`false` means the caller-side fallback applies
/// and there is nothing to compare).
#[allow(clippy::too_many_arguments)]
fn assert_race_matches(
    net: &SimNet<'_>,
    announcements: &[Announcement],
    ctx: &FilterContext<'_>,
    policy: &PolicyConfig,
    ws: &mut Workspace,
    rws: &mut RaceWorkspace,
    label: &str,
) -> Result<bool, TestCaseError> {
    let Some(raced) = solve_race(net, announcements, ctx, policy, DEFAULT_MAX_ROUNDS, rws) else {
        prop_assert!(
            policy.tier1_shortest_path,
            "[{}] strict Gao-Rexford has no tier-1 variables and must converge",
            label
        );
        return Ok(false);
    };
    let full = propagate_announcements(net, announcements, ctx, policy, ws, &mut NullObserver);
    prop_assert_eq!(
        raced.choices(),
        full.choices(),
        "[{}] race choices diverge from the generation engine",
        label
    );
    // Polluted set: identical because choices are — asserted directly so
    // the sweep-facing contract is pinned even if captured_by's derivation
    // changes.
    if let Some(last) = announcements.last() {
        prop_assert_eq!(
            raced.captured_by(last.announcer).collect::<Vec<_>>(),
            full.captured_by(last.announcer).collect::<Vec<_>>(),
            "[{}] polluted set diverges",
            label
        );
    }
    if !policy.tier1_shortest_path {
        prop_assert_eq!(
            raced.stats().generations,
            1,
            "[{}] strict Gao-Rexford must settle in one fixed-point round",
            label
        );
    }
    // Packed-stamp determinism: re-solving over the reused workspace must
    // reproduce the same fixed point bit for bit.
    let again = solve_race(net, announcements, ctx, policy, DEFAULT_MAX_ROUNDS, rws);
    prop_assert_eq!(
        again.as_ref().map(|p| p.choices()),
        Some(raced.choices()),
        "[{}] repeated race solve diverges",
        label
    );
    Ok(true)
}

/// Runs the full scenario matrix for one recipe; shared by the property
/// test and the pinned regressions. Returns `(solves, converged)`.
fn assert_race_equivalence(recipe: &Recipe) -> Result<(u32, u32), TestCaseError> {
    let topo = build(recipe);
    let net = SimNet::new(&topo);
    let target = AsIndex::new(recipe.target);
    let attacker = AsIndex::new(recipe.attacker);
    if target == attacker {
        return Ok((0, 0));
    }
    let validators = AsSet::from_members(&topo, recipe.validators.iter().map(|&v| AsIndex::new(v)));
    let contexts = [
        ("none", FilterContext::none()),
        (
            "validators",
            FilterContext::origin_validation(target, &validators),
        ),
        (
            "validators+stub",
            FilterContext {
                authorized_origin: Some(target),
                validators: Some(&validators),
                stub_defense: true,
            },
        ),
    ];
    // One workspace pair across ALL scenarios: reuse must not leak state.
    let mut ws = Workspace::new();
    let mut rws = RaceWorkspace::new();
    let mut solves = 0;
    let mut converged = 0;
    for policy in [PolicyConfig::paper(), PolicyConfig::strict_gao_rexford()] {
        for (ctx_name, ctx) in &contexts {
            let scenarios = [
                (
                    "origin",
                    vec![Announcement::honest(target), Announcement::honest(attacker)],
                ),
                (
                    "forged",
                    vec![
                        Announcement::honest(target),
                        Announcement::forged(attacker, target),
                    ],
                ),
                // Sub-prefix hijack: the bogus more-specific prefix has no
                // honest competition — a one-origin "race".
                ("subprefix", vec![Announcement::honest(attacker)]),
            ];
            for (kind, announcements) in &scenarios {
                solves += 1;
                converged += u32::from(assert_race_matches(
                    &net,
                    announcements,
                    ctx,
                    &policy,
                    &mut ws,
                    &mut rws,
                    &format!("{kind}/{ctx_name}"),
                )?);
            }
        }
    }
    Ok((solves, converged))
}

/// Pinned regression: the sibling-laundered multistability topology from
/// the delta suite. AS 12's honest best is a customer-class route
/// laundered through sibling 4; the paper policy admits two stable states
/// and only the raced one (AS 12 adopting the attacker at generation 1,
/// tier-1 AS 4 following) is correct. The race solver must either converge
/// to exactly that state or return `None` and defer to the generation
/// engine — never converge to the wrong fixed point.
#[test]
fn pinned_regression_sibling_laundered_multistability() {
    let recipe = Recipe {
        n: 13,
        p2c: vec![
            (3, 12),
            (7, 7),
            (8, 0),
            (0, 12),
            (8, 7),
            (7, 9),
            (12, 9),
            (8, 6),
            (8, 2),
            (10, 5),
            (2, 3),
            (12, 9),
            (8, 10),
            (3, 9),
            (10, 11),
            (1, 6),
            (7, 1),
            (9, 12),
            (2, 6),
            (6, 4),
            (9, 9),
            (2, 7),
            (1, 7),
            (7, 6),
            (1, 12),
            (1, 11),
            (5, 2),
            (6, 3),
            (0, 9),
            (7, 11),
            (0, 9),
            (5, 7),
            (7, 0),
        ],
        p2p: vec![(9, 2), (9, 0)],
        s2s: vec![(12, 4), (1, 10)],
        target: 11,
        attacker: 0,
        validators: vec![],
    };
    assert_race_equivalence(&recipe).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wherever the race solver converges, its outcome is bit-identical to
    /// the generation engine across attack kinds, filter contexts and
    /// policies; strict Gao-Rexford always converges in one round.
    #[test]
    fn race_matches_generation_engine(recipe in arb_recipe()) {
        let (solves, converged) = assert_race_equivalence(&recipe)?;
        // Half the matrix is strict Gao-Rexford and must have converged;
        // an always-None solver would be vacuously "equivalent".
        if solves > 0 {
            prop_assert!(converged >= solves / 2, "{converged}/{solves} converged");
        }
    }
}
