//! Property tests pinning the two engines to each other and to the
//! valley-free invariants.
//!
//! The message-passing engine (`engine::generation`) and the label-setting
//! solver (`engine::stable`) implement the same semantics by entirely
//! different algorithms; under strict Gao-Rexford policy they must agree
//! exactly, AS by AS. Random DAG-structured topologies (guaranteed by
//! drawing provider links from higher to lower fresh indices) exercise
//! multi-homing, peering, siblings, dual origins and filters.

use proptest::prelude::*;

use bgpsim_routing::{
    propagate, solve, AsSet, FilterContext, NullObserver, PolicyConfig, PrefClass, SimNet,
    Workspace,
};
use bgpsim_topology::{AsId, AsIndex, LinkKind, Topology, TopologyBuilder};

/// A random topology recipe: `n` ASes; provider links always point from a
/// lower-index AS to a higher-index AS (so the p2c graph is acyclic, as the
/// Gao-Rexford stability theorem requires); peer and sibling links are
/// unconstrained.
#[derive(Debug, Clone)]
struct Recipe {
    n: u32,
    p2c: Vec<(u32, u32)>,
    p2p: Vec<(u32, u32)>,
    s2s: Vec<(u32, u32)>,
    origin_a: u32,
    origin_b: u32,
    validators: Vec<u32>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (4u32..24).prop_flat_map(|n| {
        let pair = (0..n, 0..n);
        (
            proptest::collection::vec(pair.clone(), 3..40),
            proptest::collection::vec(pair.clone(), 0..12),
            proptest::collection::vec(pair, 0..4),
            0..n,
            0..n,
            proptest::collection::vec(0..n, 0..6),
        )
            .prop_map(
                move |(p2c, p2p, s2s, origin_a, origin_b, validators)| Recipe {
                    n,
                    p2c,
                    p2p,
                    s2s,
                    origin_a,
                    origin_b,
                    validators,
                },
            )
    })
}

fn build(recipe: &Recipe) -> Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..recipe.n {
        b.add_as(AsId::new(i + 1));
    }
    for &(x, y) in &recipe.p2c {
        if x != y {
            // Orient provider → customer from smaller to larger index:
            // guarantees an acyclic provider hierarchy.
            let (p, c) = if x < y { (x, y) } else { (y, x) };
            let _ = b.add_link(
                AsId::new(p + 1),
                AsId::new(c + 1),
                LinkKind::ProviderToCustomer,
            );
        }
    }
    for &(x, y) in &recipe.p2p {
        if x != y {
            let _ = b.add_link(AsId::new(x + 1), AsId::new(y + 1), LinkKind::PeerToPeer);
        }
    }
    for &(x, y) in &recipe.s2s {
        if x != y {
            let _ = b.add_link(
                AsId::new(x + 1),
                AsId::new(y + 1),
                LinkKind::SiblingToSibling,
            );
        }
    }
    b.build().expect("non-empty")
}

/// Runs the full engine-agreement check (all three filter contexts) for
/// one recipe; shared by the property test and the pinned regressions.
fn assert_engines_agree(recipe: &Recipe) -> Result<(), TestCaseError> {
    let topo = build(recipe);
    let net = SimNet::new(&topo);
    let policy = PolicyConfig::strict_gao_rexford();
    let a = AsIndex::new(recipe.origin_a);
    let b = AsIndex::new(recipe.origin_b);
    let mut origins = vec![a];
    if b != a {
        origins.push(b);
    }
    let validators = AsSet::from_members(&topo, recipe.validators.iter().map(|&v| AsIndex::new(v)));
    let contexts = [
        FilterContext::none(),
        FilterContext::origin_validation(a, &validators),
        FilterContext {
            authorized_origin: Some(a),
            validators: Some(&validators),
            stub_defense: true,
        },
    ];
    let mut ws = Workspace::new();
    for ctx in &contexts {
        let dynamic = propagate(&net, &origins, ctx, &policy, &mut ws, &mut NullObserver);
        prop_assert!(
            !dynamic.stats().truncated,
            "no convergence on a GR topology"
        );
        let closed = solve(&net, &origins, ctx, &policy);
        for ix in topo.indices() {
            prop_assert_eq!(
                dynamic.choice(ix),
                closed.choice(ix),
                "divergence at {} (ctx stub_defense={})",
                topo.id_of(ix),
                ctx.stub_defense
            );
        }
    }
    Ok(())
}

/// The checked-in regression from `equivalence.proptest-regressions`,
/// pinned explicitly: a sibling chain 11–13–16–1 closed into a cycle by
/// the provider edge 1→11, with the origin below the chain at 14. The
/// shrunk value is kept verbatim so the case survives RNG changes.
#[test]
fn pinned_regression_sibling_chain_cycle() {
    let recipe = Recipe {
        n: 19,
        p2c: vec![(11, 14), (1, 11), (0, 0)],
        p2p: vec![],
        s2s: vec![(11, 13), (13, 16), (1, 16)],
        origin_a: 2,
        origin_b: 14,
        validators: vec![],
    };
    assert_engines_agree(&recipe).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The message-passing engine and the stable solver agree exactly
    /// under strict Gao-Rexford policy — single origin, dual origin, with
    /// and without filters.
    #[test]
    fn engines_agree_under_strict_gao_rexford(recipe in arb_recipe()) {
        assert_engines_agree(&recipe)?;
    }

    /// Every selected route is valley-free: once a path goes over a peer
    /// link or down a provider→customer link, it never goes up or across
    /// again. Verified by walking `learned_from` chains.
    #[test]
    fn selected_routes_are_valley_free(recipe in arb_recipe()) {
        let topo = build(&recipe);
        let net = SimNet::new(&topo);
        let a = AsIndex::new(recipe.origin_a);
        let b = AsIndex::new(recipe.origin_b);
        let mut origins = vec![a];
        if b != a {
            origins.push(b);
        }
        for policy in [PolicyConfig::paper(), PolicyConfig::strict_gao_rexford()] {
            let p = propagate(
                &net,
                &origins,
                &FilterContext::none(),
                &policy,
                &mut Workspace::new(),
                &mut NullObserver,
            );
            for ix in topo.indices() {
                let Some(choice) = p.choice(ix) else { continue };
                // Walk to the origin collecting the relationship sequence
                // (receiver's view of each hop's sender).
                let mut rels = Vec::new();
                let mut cur = ix;
                let mut guard = 0;
                let mut at = p.choice(cur);
                while let Some(c) = at {
                    let Some(from) = c.learned_from else { break };
                    let rel = topo
                        .neighbors(cur)
                        .iter()
                        .find(|nb| nb.index == from)
                        .expect("learned_from is a neighbor")
                        .rel;
                    rels.push(rel);
                    cur = from;
                    at = p.choice(cur);
                    guard += 1;
                    prop_assert!(guard <= topo.num_ases(), "learned_from cycle");
                }
                prop_assert_eq!(cur, choice.origin, "chain must end at the origin");
                // Valley-free check on the reversed sequence (origin → ix):
                // phase 1: climb customer→provider; then ≤ 1 peer hop;
                // then descend provider→customer. Siblings are transparent.
                use bgpsim_topology::Relationship as R;
                let mut phase = 0; // 0 = climbing, 1 = after peer, 2 = descending
                for rel in rels.iter().rev() {
                    // `rel` is the *receiver's* view of the sender at each
                    // hop, walking origin → ix: Customer means the route
                    // went customer→provider (up).
                    match (*rel, phase) {
                        (R::Sibling, _) => {}
                        (R::Customer, 0) => {}
                        (R::Peer, 0) => phase = 1,
                        (R::Provider, _) => phase = 2,
                        (R::Customer, _) => {
                            return Err(TestCaseError::fail(format!(
                                "valley: route climbs after peer/descend at {}",
                                topo.id_of(ix)
                            )));
                        }
                        (R::Peer, _) => {
                            return Err(TestCaseError::fail(format!(
                                "valley: second peer crossing at {}",
                                topo.id_of(ix)
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Deterministic replay: two fresh runs of the same scenario are
    /// identical, including convergence statistics.
    #[test]
    fn propagation_is_deterministic(recipe in arb_recipe()) {
        let topo = build(&recipe);
        let net = SimNet::new(&topo);
        let origins = [AsIndex::new(recipe.origin_a)];
        let run = |ws: &mut Workspace| {
            propagate(
                &net,
                &origins,
                &FilterContext::none(),
                &PolicyConfig::paper(),
                ws,
                &mut NullObserver,
            )
        };
        let a = run(&mut Workspace::new());
        let mut shared = Workspace::new();
        let b = run(&mut shared);
        let c = run(&mut shared); // workspace reuse must not leak state
        prop_assert_eq!(a.choices(), b.choices());
        prop_assert_eq!(b.choices(), c.choices());
        prop_assert_eq!(a.stats(), c.stats());
    }

    /// A validator AS is never polluted, and with universal deployment the
    /// attacker pollutes nobody.
    #[test]
    fn validators_are_immune(recipe in arb_recipe()) {
        let topo = build(&recipe);
        let net = SimNet::new(&topo);
        let t = AsIndex::new(recipe.origin_a);
        let a = AsIndex::new(recipe.origin_b);
        if t == a {
            return Ok(());
        }
        let validators = AsSet::from_members(
            &topo,
            recipe.validators.iter().map(|&v| AsIndex::new(v)),
        );
        let ctx = FilterContext::origin_validation(t, &validators);
        let p = propagate(
            &net,
            &[t, a],
            &ctx,
            &PolicyConfig::paper(),
            &mut Workspace::new(),
            &mut NullObserver,
        );
        for v in validators.iter() {
            if v == a {
                continue; // the attacker "pollutes" itself by definition
            }
            let polluted = matches!(p.choice(v), Some(c) if c.origin == a);
            prop_assert!(!polluted, "validator {} polluted", topo.id_of(v));
        }
        // Universal deployment: nobody is polluted.
        let everyone = AsSet::from_members(&topo, topo.indices());
        let ctx = FilterContext::origin_validation(t, &everyone);
        let p = propagate(
            &net,
            &[t, a],
            &ctx,
            &PolicyConfig::paper(),
            &mut Workspace::new(),
            &mut NullObserver,
        );
        prop_assert_eq!(p.captured_count(a), 0);
    }

    /// The origin's own selection is always itself, in both engines, and
    /// path lengths are consistent with `learned_from` chains.
    #[test]
    fn origins_and_lengths_are_consistent(recipe in arb_recipe()) {
        let topo = build(&recipe);
        let net = SimNet::new(&topo);
        let o = AsIndex::new(recipe.origin_a);
        let p = propagate(
            &net,
            &[o],
            &FilterContext::none(),
            &PolicyConfig::paper(),
            &mut Workspace::new(),
            &mut NullObserver,
        );
        let c = p.choice(o).expect("origin routes to itself");
        prop_assert_eq!(c.origin, o);
        prop_assert_eq!(c.len, 0);
        prop_assert_eq!(c.class, PrefClass::Origin);
        for ix in topo.indices() {
            let Some(c) = p.choice(ix) else { continue };
            prop_assert_eq!(c.origin, o);
            // len equals the number of learned_from hops to the origin.
            let mut hops = 0u16;
            let mut cur = ix;
            while let Some(ch) = p.choice(cur) {
                match ch.learned_from {
                    Some(f) => {
                        hops += 1;
                        cur = f;
                    }
                    None => break,
                }
            }
            prop_assert_eq!(c.len, hops, "len mismatch at {}", topo.id_of(ix));
        }
    }
}
