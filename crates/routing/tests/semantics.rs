//! Behavioral tests of the routing model on hand-built micro-topologies.
//!
//! Each test pins one rule from the paper's §III policy description.

use bgpsim_routing::{
    propagate, propagate_announcements, Announcement, AsSet, Decision, FilterContext, NullObserver,
    PolicyConfig, PrefClass, Propagation, SimNet, TraceRecorder, Workspace,
};
use bgpsim_topology::LinkKind::*;
use bgpsim_topology::{topology_from_triples, AsId, AsIndex, Topology};

fn run(topo: &Topology, origins: &[u32]) -> Propagation {
    run_with(
        topo,
        origins,
        &FilterContext::none(),
        &PolicyConfig::paper(),
    )
}

fn run_with(
    topo: &Topology,
    origins: &[u32],
    filters: &FilterContext<'_>,
    policy: &PolicyConfig,
) -> Propagation {
    let net = SimNet::new(topo);
    let origins: Vec<AsIndex> = origins
        .iter()
        .map(|&n| topo.index_of(AsId::new(n)).unwrap())
        .collect();
    propagate(
        &net,
        &origins,
        filters,
        policy,
        &mut Workspace::new(),
        &mut NullObserver,
    )
}

fn ix(topo: &Topology, n: u32) -> AsIndex {
    topo.index_of(AsId::new(n)).unwrap()
}

#[test]
fn origin_keeps_its_own_route() {
    let topo = topology_from_triples(&[(1, 2, ProviderToCustomer)]);
    let p = run(&topo, &[2]);
    let c = p.choice(ix(&topo, 2)).unwrap();
    assert_eq!(c.class, PrefClass::Origin);
    assert_eq!(c.len, 0);
    assert_eq!(c.learned_from, None);
}

#[test]
fn customer_route_preferred_over_peer_and_provider() {
    // AS5 can reach the origin three ways: via customer 4, via peer 3, via
    // provider 2 — all length 2. Customer must win.
    let topo = topology_from_triples(&[
        (5, 4, ProviderToCustomer), // 4 is 5's customer
        (5, 3, PeerToPeer),
        (2, 5, ProviderToCustomer), // 2 is 5's provider
        (4, 9, ProviderToCustomer),
        (3, 9, ProviderToCustomer),
        (2, 9, ProviderToCustomer),
    ]);
    let p = run(&topo, &[9]);
    let c = p.choice(ix(&topo, 5)).unwrap();
    assert_eq!(c.class, PrefClass::Customer);
    assert_eq!(c.learned_from, Some(ix(&topo, 4)));
}

#[test]
fn shorter_path_wins_within_class() {
    // Two customer paths to the origin: direct (len 1) and via a chain.
    let topo = topology_from_triples(&[
        (1, 9, ProviderToCustomer),
        (1, 2, ProviderToCustomer),
        (2, 9, ProviderToCustomer),
    ]);
    let p = run(&topo, &[9]);
    let c = p.choice(ix(&topo, 1)).unwrap();
    assert_eq!(c.len, 1);
    assert_eq!(c.learned_from, Some(ix(&topo, 9)));
}

#[test]
fn valley_free_blocks_peer_to_peer_transit() {
    // origin 9 — peer — 1 — peer — 2: AS2 must NOT hear the route via two
    // successive peer links.
    let topo = topology_from_triples(&[(9, 1, PeerToPeer), (1, 2, PeerToPeer)]);
    let p = run(&topo, &[9]);
    assert!(p.choice(ix(&topo, 1)).is_some());
    assert!(
        p.choice(ix(&topo, 2)).is_none(),
        "peer route re-exported to a peer"
    );
}

#[test]
fn valley_free_blocks_provider_route_up() {
    // 9's provider chain: 1 ← 9. 1 also buys from 2. A provider route at 1
    // (from 2? no —) build: 2 is provider of 1, 1 is provider of 9.
    // Origin 9 announces up to 1 (customer route at 1) — exportable to 2.
    // But a provider-learned route at 9 (if 1 announced something down)
    // must not go up. Construct: origin is 2 (top); 9 hears via 1
    // (provider route), and 9 peers with 8: 8 must not hear from 9.
    let topo = topology_from_triples(&[
        (2, 1, ProviderToCustomer),
        (1, 9, ProviderToCustomer),
        (9, 8, PeerToPeer),
    ]);
    let p = run(&topo, &[2]);
    assert_eq!(p.choice(ix(&topo, 9)).unwrap().class, PrefClass::Provider);
    assert!(
        p.choice(ix(&topo, 8)).is_none(),
        "provider route re-exported to a peer"
    );
}

#[test]
fn provider_routes_do_flow_down() {
    // origin 1 (top provider) → 2 → 3: everyone below hears it.
    let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, ProviderToCustomer)]);
    let p = run(&topo, &[1]);
    let c3 = p.choice(ix(&topo, 3)).unwrap();
    assert_eq!(c3.class, PrefClass::Provider);
    assert_eq!(c3.len, 2);
}

#[test]
fn tier1_prefers_shortest_path_when_enabled() {
    // Tier-1 AS1 (no providers, has peer+customers) hears the origin two
    // ways: customer route of length 3 and peer route of length 2.
    // Paper policy: the shorter peer route wins at a tier-1.
    // Strict Gao-Rexford: the customer route wins.
    let topo = topology_from_triples(&[
        (1, 2, PeerToPeer),         // tier-1 clique: 1, 2
        (1, 3, ProviderToCustomer), // 1's customer chain: 3 → 4 → 9
        (3, 4, ProviderToCustomer),
        (4, 9, ProviderToCustomer),
        (2, 9, ProviderToCustomer), // 2 reaches origin directly
    ]);
    let paper = run(&topo, &[9]);
    let c = paper.choice(ix(&topo, 1)).unwrap();
    assert_eq!(
        c.class,
        PrefClass::Peer,
        "tier-1 takes the short peer route"
    );
    assert_eq!(c.len, 2);

    let strict = run_with(
        &topo,
        &[9],
        &FilterContext::none(),
        &PolicyConfig::strict_gao_rexford(),
    );
    let c = strict.choice(ix(&topo, 1)).unwrap();
    assert_eq!(
        c.class,
        PrefClass::Customer,
        "strict GR keeps the customer route"
    );
    assert_eq!(c.len, 3);
}

#[test]
fn hijack_splits_the_internet_between_origins() {
    // Target 9 under provider 1; attacker 8 under provider 2; 1 peers 2.
    // Each provider sticks with its own customer.
    let topo = topology_from_triples(&[
        (1, 9, ProviderToCustomer),
        (2, 8, ProviderToCustomer),
        (1, 2, PeerToPeer),
        (1, 5, ProviderToCustomer),
        (2, 6, ProviderToCustomer),
    ]);
    let p = run(&topo, &[9, 8]);
    let t = ix(&topo, 9);
    let a = ix(&topo, 8);
    // Providers keep their customers' routes.
    assert_eq!(p.choice(ix(&topo, 1)).unwrap().origin, t);
    assert_eq!(p.choice(ix(&topo, 2)).unwrap().origin, a);
    // Stubs inherit their provider's side.
    assert_eq!(p.choice(ix(&topo, 5)).unwrap().origin, t);
    assert_eq!(p.choice(ix(&topo, 6)).unwrap().origin, a);
    // The target itself is never polluted.
    assert_eq!(p.choice(t).unwrap().origin, t);
    assert_eq!(p.captured_count(a), 2); // AS2 and AS6
}

#[test]
fn origin_validation_blocks_and_shields_downstream() {
    // AS2 has two customers: a chain to the target (9 behind 1) and the
    // attacker 8 directly. Both give customer-class routes; the attacker's
    // is shorter, so unfiltered AS2 is polluted — and so is its provider 3.
    // With AS2 validating, both are shielded.
    let topo = topology_from_triples(&[
        (1, 9, ProviderToCustomer),
        (2, 1, ProviderToCustomer),
        (2, 8, ProviderToCustomer),
        (3, 2, ProviderToCustomer),
    ]);
    let net = SimNet::new(&topo);
    let t = ix(&topo, 9);
    let a = ix(&topo, 8);

    let baseline = run(&topo, &[9, 8]);
    assert_eq!(baseline.choice(ix(&topo, 2)).unwrap().origin, a);
    assert_eq!(baseline.choice(ix(&topo, 3)).unwrap().origin, a);

    let validators = AsSet::from_members(&topo, [ix(&topo, 2)]);
    let filters = FilterContext::origin_validation(t, &validators);
    let filtered = propagate(
        &net,
        &[t, a],
        &filters,
        &PolicyConfig::paper(),
        &mut Workspace::new(),
        &mut NullObserver,
    );
    // The validator itself takes the legitimate route...
    assert_eq!(filtered.choice(ix(&topo, 2)).unwrap().origin, t);
    // ...and shields its provider, which only hears routes through it.
    assert_eq!(filtered.choice(ix(&topo, 3)).unwrap().origin, t);
    assert!(filtered.stats().filter_rejected > 0);
}

#[test]
fn full_validation_deployment_stops_everything() {
    let topo = topology_from_triples(&[
        (1, 9, ProviderToCustomer),
        (1, 8, ProviderToCustomer),
        (1, 2, ProviderToCustomer),
        (2, 3, ProviderToCustomer),
    ]);
    let t = ix(&topo, 9);
    let a = ix(&topo, 8);
    let all: Vec<AsIndex> = topo.indices().collect();
    let validators = AsSet::from_members(&topo, all);
    let p = run_with(
        &topo,
        &[9, 8],
        &FilterContext::origin_validation(t, &validators),
        &PolicyConfig::paper(),
    );
    assert_eq!(p.captured_count(a), 0, "universal ROV blocks the hijack");
    // The legitimate route still reaches everyone.
    assert_eq!(
        p.choices()
            .iter()
            .filter(|c| matches!(c, Some(c) if c.origin == t))
            .count(),
        topo.num_ases() - 1
    );
}

#[test]
fn stub_defense_blocks_bogus_stub_announcements() {
    // Attacker 8 is a stub under provider 2; with stub defense its hijack
    // of AS9's prefix dies at 2: nobody is polluted.
    let topo = topology_from_triples(&[
        (1, 9, ProviderToCustomer),
        (1, 2, ProviderToCustomer),
        (2, 8, ProviderToCustomer),
    ]);
    let t = ix(&topo, 9);
    let ctx = FilterContext {
        stub_defense: true,
        authorized_origin: Some(t),
        ..FilterContext::none()
    };
    let p = run_with(&topo, &[9, 8], &ctx, &PolicyConfig::paper());
    assert_eq!(p.captured_count(ix(&topo, 8)), 0);
    assert!(p.stats().stub_rejected > 0);
    // A stub announcing its own (authorized) prefix is NOT blocked.
    let own_ctx = FilterContext {
        stub_defense: true,
        authorized_origin: Some(ix(&topo, 8)),
        ..FilterContext::none()
    };
    let own = run_with(&topo, &[8], &own_ctx, &PolicyConfig::paper());
    assert_eq!(own.reached_count(), topo.num_ases());
}

#[test]
fn sibling_group_propagates_and_inherits_class() {
    // 9 — (customer of) — 2; 2 sibling 3; 3 peers 4. A customer route
    // entering the sibling group must exit to a peer (class preserved).
    let topo = topology_from_triples(&[
        (2, 9, ProviderToCustomer),
        (2, 3, SiblingToSibling),
        (3, 4, PeerToPeer),
    ]);
    let p = run(&topo, &[9]);
    let c3 = p.choice(ix(&topo, 3)).unwrap();
    assert_eq!(c3.class, PrefClass::Customer, "sibling inherits class");
    assert_eq!(c3.len, 2);
    let c4 = p.choice(ix(&topo, 4)).unwrap();
    assert_eq!(c4.class, PrefClass::Peer);
    assert_eq!(c4.len, 3);
}

#[test]
fn sibling_group_does_not_leak_peer_routes_to_peers() {
    // Peer route enters the group; the other sibling must not export it to
    // its own peer (valley-free still applies to the group as one AS).
    let topo = topology_from_triples(&[
        (9, 2, PeerToPeer),
        (2, 3, SiblingToSibling),
        (3, 4, PeerToPeer),
    ]);
    let p = run(&topo, &[9]);
    assert_eq!(p.choice(ix(&topo, 3)).unwrap().class, PrefClass::Peer);
    assert!(p.choice(ix(&topo, 4)).is_none());
}

#[test]
fn loop_rejection_is_counted() {
    // A triangle of providers guarantees some announcements return to an
    // AS already on the path.
    let topo = topology_from_triples(&[
        (1, 2, PeerToPeer),
        (2, 3, PeerToPeer),
        (1, 3, PeerToPeer),
        (1, 9, ProviderToCustomer),
        (2, 9, ProviderToCustomer),
        (3, 9, ProviderToCustomer),
    ]);
    let net = SimNet::new(&topo);
    let mut trace = TraceRecorder::new();
    let p = propagate(
        &net,
        &[ix(&topo, 9)],
        &FilterContext::none(),
        &PolicyConfig::paper(),
        &mut Workspace::new(),
        &mut trace,
    );
    assert_eq!(p.reached_count(), 4);
    assert!(
        trace
            .events()
            .iter()
            .any(|e| e.decision == Decision::RejectedLoop),
        "triangle must produce loop rejections"
    );
    assert_eq!(p.stats().loop_rejected, {
        trace
            .events()
            .iter()
            .filter(|e| e.decision == Decision::RejectedLoop)
            .count() as u64
    });
}

#[test]
fn convergence_within_few_generations() {
    // The paper reports convergence within 5–10 generations; a 3-level
    // hierarchy converges in about tree depth + 1.
    let topo = topology_from_triples(&[
        (1, 2, ProviderToCustomer),
        (2, 3, ProviderToCustomer),
        (3, 9, ProviderToCustomer),
        (1, 4, ProviderToCustomer),
    ]);
    let p = run(&topo, &[9]);
    let g = p.stats().generations;
    assert!((4..=6).contains(&g), "generations {g}");
    assert!(!p.stats().truncated);
}

#[test]
fn generation_cap_truncates_gracefully() {
    let topo = topology_from_triples(&[
        (1, 2, ProviderToCustomer),
        (2, 3, ProviderToCustomer),
        (3, 9, ProviderToCustomer),
    ]);
    let policy = PolicyConfig {
        max_generations: 2,
        ..PolicyConfig::paper()
    };
    let p = run_with(&topo, &[9], &FilterContext::none(), &policy);
    assert!(p.stats().truncated);
    assert!(p.reached_count() < topo.num_ases());
}

#[test]
fn disconnected_ases_get_no_route() {
    let topo = topology_from_triples(&[(1, 9, ProviderToCustomer), (5, 6, PeerToPeer)]);
    let p = run(&topo, &[9]);
    assert!(p.choice(ix(&topo, 5)).is_none());
    assert!(p.choice(ix(&topo, 6)).is_none());
    assert_eq!(p.reached_count(), 2);
}

#[test]
fn deterministic_across_runs_and_workspace_reuse() {
    let topo = topology_from_triples(&[
        (1, 2, PeerToPeer),
        (1, 3, ProviderToCustomer),
        (2, 4, ProviderToCustomer),
        (3, 9, ProviderToCustomer),
        (4, 9, ProviderToCustomer),
        (3, 8, ProviderToCustomer),
        (4, 8, ProviderToCustomer),
    ]);
    let net = SimNet::new(&topo);
    let mut ws = Workspace::new();
    let origins = [ix(&topo, 9), ix(&topo, 8)];
    let first = propagate(
        &net,
        &origins,
        &FilterContext::none(),
        &PolicyConfig::paper(),
        &mut ws,
        &mut NullObserver,
    );
    for _ in 0..5 {
        let again = propagate(
            &net,
            &origins,
            &FilterContext::none(),
            &PolicyConfig::paper(),
            &mut ws,
            &mut NullObserver,
        );
        assert_eq!(first.choices(), again.choices());
        assert_eq!(first.stats(), again.stats());
    }
}

#[test]
fn forged_announcement_claims_origin_and_lengthens_path() {
    // 1 — 2 — 3 chain; 3 forges origin 9 (not even present nearby).
    let topo = topology_from_triples(&[
        (1, 2, ProviderToCustomer),
        (2, 3, ProviderToCustomer),
        (1, 9, ProviderToCustomer),
    ]);
    let net = SimNet::new(&topo);
    let victim = ix(&topo, 9);
    let forger = ix(&topo, 3);
    let p = propagate_announcements(
        &net,
        &[Announcement::forged(forger, victim)],
        &FilterContext::none(),
        &PolicyConfig::paper(),
        &mut Workspace::new(),
        &mut NullObserver,
    );
    // The forger's own selection reports the claimed origin with len 1.
    let c = p.choice(forger).unwrap();
    assert_eq!(c.origin, victim);
    assert_eq!(c.len, 1);
    assert_eq!(c.class, PrefClass::Origin);
    // A neighbor sees len 2 (the forged hop counts).
    let c2 = p.choice(ix(&topo, 2)).unwrap();
    assert_eq!(c2.len, 2);
    assert_eq!(c2.origin, victim);
    // The victim loop-rejects the forgery: its own ASN is on the path.
    assert!(p.choice(victim).is_none());
}

#[test]
fn forged_announcement_passes_origin_validation() {
    let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (1, 9, ProviderToCustomer)]);
    let net = SimNet::new(&topo);
    let victim = ix(&topo, 9);
    let forger = ix(&topo, 2);
    let validators = AsSet::from_members(&topo, topo.indices());
    let ctx = FilterContext::origin_validation(victim, &validators);
    let p = propagate_announcements(
        &net,
        &[Announcement::forged(forger, victim)],
        &ctx,
        &PolicyConfig::paper(),
        &mut Workspace::new(),
        &mut NullObserver,
    );
    // AS1 validates origins — and the claimed origin IS the victim, so the
    // forged route is installed.
    let c1 = p.choice(ix(&topo, 1)).unwrap();
    assert_eq!(c1.origin, victim);
    assert_eq!(c1.learned_from, Some(forger));
    assert_eq!(p.stats().filter_rejected, 0);
    assert!(!Announcement::honest(victim).is_forged());
    assert!(Announcement::forged(forger, victim).is_forged());
}

#[test]
#[should_panic(expected = "at least one origin")]
fn empty_origins_panics() {
    let topo = topology_from_triples(&[(1, 2, PeerToPeer)]);
    let net = SimNet::new(&topo);
    let _ = propagate(
        &net,
        &[],
        &FilterContext::none(),
        &PolicyConfig::paper(),
        &mut Workspace::new(),
        &mut NullObserver,
    );
}

#[test]
#[should_panic(expected = "duplicate origin")]
fn duplicate_origins_panic() {
    let topo = topology_from_triples(&[(1, 2, PeerToPeer)]);
    let net = SimNet::new(&topo);
    let o = ix(&topo, 1);
    let _ = propagate(
        &net,
        &[o, o],
        &FilterContext::none(),
        &PolicyConfig::paper(),
        &mut Workspace::new(),
        &mut NullObserver,
    );
}
