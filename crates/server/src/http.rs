//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! The no-new-dependencies policy rules out hyper/axum, and this service
//! needs very little from HTTP: framed request/response pairs with
//! keep-alive, hard size limits on untrusted input, and deterministic
//! error responses. So the framing layer is hand-rolled and deliberately
//! small: one buffered connection type, one request parser, one response
//! writer. No chunked transfer encoding (requests carrying a body must
//! send `Content-Length`; anything carrying `Transfer-Encoding` is
//! rejected with 400; responses always send `Content-Length`), no
//! `Expect: continue`, no trailers, no TLS.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request line + headers before the connection is
/// rejected with 431. Generous: real requests are a few hundred bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component only — the query string (if any) is split off into
    /// [`Request::query`].
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Header name/value pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.0`.
    http10: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (explicit `Connection: close`, or HTTP/1.0 without
    /// `keep-alive`).
    ///
    /// The Connection header is a comma-separated token list
    /// (`Connection: close` but also `Connection: keep-alive, TE`), so
    /// the check walks tokens instead of comparing the whole value — a
    /// proxy-normalized `close, te` must still close.
    /// `close` wins over `keep-alive` regardless of token order, so the
    /// whole list is scanned before `keep-alive` is honored.
    pub fn wants_close(&self) -> bool {
        let tokens = self
            .headers
            .iter()
            .filter(|(n, _)| n == "connection")
            .flat_map(|(_, v)| v.split(','))
            .map(str::trim);
        let mut keep_alive = false;
        for token in tokens {
            if token.eq_ignore_ascii_case("close") {
                return true;
            }
            if token.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
        self.http10 && !keep_alive
    }
}

/// Why [`HttpConn::read_request`] produced no request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A full request was framed.
    Request(Request),
    /// The peer closed (or idled past the read timeout) between requests
    /// — normal end of a keep-alive connection, nothing to answer.
    Closed,
    /// The bytes on the wire were not a framable request; the connection
    /// must be answered with this status and closed.
    Malformed {
        /// Status to answer with (400, 408, 413, or 431).
        status: u16,
        /// Human-readable reason, returned in the error body.
        reason: String,
    },
}

/// A buffered connection: bytes read past the end of one request are kept
/// for the next (pipelined or keep-alive) request.
#[derive(Debug)]
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConn {
    /// Wraps an accepted stream, arming the idle read timeout.
    pub fn new(stream: TcpStream, read_timeout: Duration) -> HttpConn {
        // A dead timeout would mean blocking forever on an idle client;
        // errors here leave the OS default, which read() surfaces later.
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        HttpConn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads one request, enforcing `MAX_HEAD_BYTES` on the head and
    /// `max_body_bytes` on the body.
    pub fn read_request(&mut self, max_body_bytes: usize) -> ReadOutcome {
        // Pull bytes until the blank line that ends the head.
        let head_end = loop {
            if let Some(end) = find_head_end(&self.buf) {
                break end;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return ReadOutcome::Malformed {
                    status: 431,
                    reason: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                };
            }
            match self.fill() {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return ReadOutcome::Closed;
                    }
                    return ReadOutcome::Malformed {
                        status: 400,
                        reason: "connection closed mid-request".to_string(),
                    };
                }
                Ok(_) => {}
                // Timeout on a partially-read head is a stalled client;
                // on an empty buffer it is just an idle keep-alive.
                Err(_) if self.buf.is_empty() => return ReadOutcome::Closed,
                Err(_) => {
                    return ReadOutcome::Malformed {
                        status: 408,
                        reason: "timed out mid-request".to_string(),
                    }
                }
            }
        };
        let head = match std::str::from_utf8(&self.buf[..head_end.line_end]) {
            Ok(head) => head,
            Err(_) => {
                return ReadOutcome::Malformed {
                    status: 400,
                    reason: "request head is not UTF-8".to_string(),
                }
            }
        };
        let mut request = match parse_head(head) {
            Ok(request) => request,
            Err(reason) => {
                return ReadOutcome::Malformed {
                    status: 400,
                    reason,
                }
            }
        };
        let body_len = match body_length(&request) {
            Ok(n) => n,
            Err(reason) => {
                return ReadOutcome::Malformed {
                    status: 400,
                    reason,
                }
            }
        };
        if body_len > max_body_bytes {
            return ReadOutcome::Malformed {
                status: 413,
                reason: format!("request body of {body_len} bytes exceeds {max_body_bytes}"),
            };
        }
        // Consume the head, then read the declared body length.
        self.buf.drain(..head_end.total);
        while self.buf.len() < body_len {
            match self.fill() {
                Ok(0) => {
                    return ReadOutcome::Malformed {
                        status: 400,
                        reason: "connection closed mid-body".to_string(),
                    }
                }
                Ok(_) => {}
                Err(_) => {
                    return ReadOutcome::Malformed {
                        status: 408,
                        reason: "timed out reading request body".to_string(),
                    }
                }
            }
        }
        request.body = self.buf.drain(..body_len).collect();
        ReadOutcome::Request(request)
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Writes one response; `close` adds `Connection: close`.
    pub fn write_response(&mut self, response: &Response, close: bool) -> std::io::Result<()> {
        write_response_to(&mut self.stream, response, close)
    }
}

/// End-of-head positions: `line_end` excludes the blank line, `total`
/// includes it.
struct HeadEnd {
    line_end: usize,
    total: usize,
}

/// Finds the `\r\n\r\n` (or tolerated bare `\n\n`) that ends the head.
fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    let mut i = 0;
    while i + 1 < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1] == b'\n' {
                return Some(HeadEnd {
                    line_end: i + 1,
                    total: i + 2,
                });
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(HeadEnd {
                    line_end: i + 1,
                    total: i + 3,
                });
            }
        }
        i += 1;
    }
    None
}

/// The declared body length, from however many `Content-Length` headers
/// (and folded `5, 5` list members) the request carried. Every
/// declaration must agree: two conflicting lengths are a
/// request-smuggling vector — this parser and an upstream intermediary
/// could frame the body differently — so they are rejected rather than
/// arbitrating by position. Identical duplicates (a common proxy
/// artifact) are accepted.
fn body_length(request: &Request) -> Result<usize, String> {
    // This parser implements no chunked framing, so a Transfer-Encoding
    // request would be framed as zero-length and its payload parsed as
    // the next pipelined request — the same smuggling class the
    // Content-Length agreement check below closes. Reject outright.
    if request
        .headers
        .iter()
        .any(|(n, _)| n == "transfer-encoding")
    {
        return Err("Transfer-Encoding is not supported".to_string());
    }
    let mut body_len = 0usize;
    let mut seen_length = false;
    for value in request
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .flat_map(|(_, v)| v.split(','))
        .map(str::trim)
    {
        let n = value
            .parse::<usize>()
            .map_err(|_| format!("unparseable Content-Length {value:?}"))?;
        if seen_length && n != body_len {
            return Err(format!(
                "conflicting Content-Length headers ({body_len} vs {n})"
            ));
        }
        body_len = n;
        seen_length = true;
    }
    Ok(body_len)
}

fn parse_head(head: &str) -> Result<Request, String> {
    let mut lines = head.lines().map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let uri = parts
        .next()
        .ok_or_else(|| format!("request line {request_line:?} has no path"))?;
    let version = parts
        .next()
        .ok_or_else(|| format!("request line {request_line:?} has no HTTP version"))?;
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => return Err(format!("unsupported protocol version {other:?}")),
    };
    let (path, query) = match uri.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (uri.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        http10,
    })
}

/// One response: status plus a body already rendered to bytes.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Media type of the body.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response (Prometheus exposition uses this).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body,
        }
    }
}

/// The reason phrase for every status this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `response` onto any writer (the accept loop uses this to
/// emit 503 on streams that never reach a worker).
pub fn write_response_to<W: Write>(
    writer: &mut W,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if close { "Connection: close\r\n" } else { "" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert!(find_head_end(b"GET / HTTP/1.1\r\n").is_none());
        let end = find_head_end(b"GET / HTTP/1.1\r\n\r\nBODY").unwrap();
        assert_eq!(end.total, 18);
        let bare = find_head_end(b"GET / HTTP/1.1\n\nBODY").unwrap();
        assert_eq!(bare.total, 16);
    }

    #[test]
    fn parses_request_line_and_headers() {
        let req = parse_head(
            "POST /v1/attacks?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/attacks");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_semantics() {
        let mut req = parse_head("GET / HTTP/1.0\r\n").unwrap();
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");
        req.headers
            .push(("connection".to_string(), "keep-alive".to_string()));
        assert!(!req.wants_close());
        let req = parse_head("GET / HTTP/1.1\r\nConnection: close\r\n").unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn connection_header_is_a_token_list() {
        // `close` buried in a token list still closes...
        let req = parse_head("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse_head("GET / HTTP/1.1\r\nConnection: TE , close\r\n").unwrap();
        assert!(req.wants_close());
        // ...and `keep-alive` in a list keeps an HTTP/1.0 connection open.
        let req = parse_head("GET / HTTP/1.0\r\nConnection: Keep-Alive, TE\r\n").unwrap();
        assert!(!req.wants_close());
        // Unrelated tokens fall back to the version default.
        let req = parse_head("GET / HTTP/1.1\r\nConnection: upgrade\r\n").unwrap();
        assert!(!req.wants_close());
        let req = parse_head("GET / HTTP/1.0\r\nConnection: upgrade\r\n").unwrap();
        assert!(req.wants_close());
        // `close` beats `keep-alive` regardless of token order, even on
        // HTTP/1.0 where `keep-alive` appears first.
        let req = parse_head("GET / HTTP/1.0\r\nConnection: keep-alive, close\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse_head("GET / HTTP/1.0\r\nConnection: keep-alive\r\nConnection: close\r\n")
            .unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        // No chunked framing here: a Transfer-Encoding body would be
        // framed as zero-length and smuggled as the next request.
        let parse = |head: &str| body_length(&parse_head(head).unwrap());
        assert!(parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nTransfer-Encoding: identity\r\n").is_err());
        // Even alongside an agreeing Content-Length: the intermediary may
        // frame by the encoding while this parser frames by the length.
        assert!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n")
                .is_err()
        );
    }

    #[test]
    fn content_length_agreement() {
        let parse = |head: &str| body_length(&parse_head(head).unwrap());
        assert_eq!(parse("POST / HTTP/1.1\r\n").unwrap(), 0);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 7\r\n").unwrap(),
            7
        );
        // Identical duplicates (proxy artifact) are tolerated, both as
        // repeated headers and as a folded list.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n").unwrap(),
            7
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 7, 7\r\n").unwrap(),
            7
        );
        // Conflicting declarations are a smuggling vector: reject.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 8\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 7, 8\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: x\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: -1\r\n").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_head("").is_err());
        assert!(parse_head("GET /").is_err());
        assert!(parse_head("GET / HTTP/2").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nno-colon-here\r\n").is_err());
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        let resp = Response::json(200, "{}".to_string());
        write_response_to(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
