//! Asynchronous sweep jobs: a bounded FIFO queue with progress,
//! cancellation, and bounded result retention.
//!
//! `POST /v1/sweeps` enqueues a [`Job`] and returns immediately; a
//! dedicated executor thread pops jobs in submission order and runs each
//! sweep on the rayon pool (one sweep at a time — a sweep already
//! saturates every core, so concurrent sweeps would only fight for
//! workers). Progress lands in relaxed atomics that `GET /v1/jobs/:id`
//! reads lock-free; `DELETE` flips the job's cancellation flag, which the
//! sweep engine polls per attack ([`bgpsim_hijack::SweepMonitor`]).
//!
//! Retention is bounded: once more than [`JobRegistry::MAX_RETAINED`]
//! jobs exist, the oldest *finished* jobs are forgotten (their ids then
//! answer 404). Queued and running jobs are never evicted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bgpsim_hijack::Defense;
use bgpsim_topology::AsIndex;

/// Everything the executor needs to run one sweep, resolved and
/// validated at submission time so a queued job cannot fail on bad input.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Attacked target.
    pub target: AsIndex,
    /// Target's ASN (echoed in job and result documents).
    pub target_asn: u32,
    /// Attacker pool, already strided and with the target filtered out.
    pub pool: Vec<AsIndex>,
    /// The pool's ASNs, index-aligned with `pool`.
    pub pool_asns: Vec<u32>,
    /// Resolved defense deployment.
    pub defense: Defense,
    /// Sorted, deduplicated validator ASNs (echoed in the result).
    pub validator_asns: Vec<u32>,
    /// Whether provider-side stub filtering is on.
    pub stub_defense: bool,
    /// Defense fingerprint for the baseline cache.
    pub defense_fp: u64,
    /// Whether the executor should route this sweep through the baseline
    /// cache (localizing defense under adaptive dispatch, or a forced
    /// delta engine).
    pub cacheable: bool,
    /// Wire name of the attacker pool (`"all"`, `"transit"`,
    /// `"explicit"`), echoed in documents.
    pub pool_kind: &'static str,
}

/// A finished sweep's payload.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// One pollution count per pool attacker, in pool order.
    pub counts: Vec<u32>,
    /// How the baseline cache served this sweep (`"bypass"` when the
    /// sweep did not use it).
    pub cache: &'static str,
    /// Executor wall time for the sweep.
    pub wall_ms: u64,
}

/// Lifecycle of a job.
#[derive(Debug)]
pub enum JobState {
    /// Waiting in the executor queue.
    Queued,
    /// Currently sweeping.
    Running,
    /// Finished; results available on `/v1/results/:id`.
    Done(JobOutput),
    /// Cancelled before or during the sweep; no results retained.
    Cancelled,
    /// The server shut down before the job could run.
    Failed(String),
}

impl JobState {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

/// Sentinel for "ETA unknown" in [`Job::eta_ms`].
pub const ETA_UNKNOWN: u64 = u64::MAX;

/// One submitted sweep.
#[derive(Debug)]
pub struct Job {
    /// Monotonic id; `job-<id>` on the wire.
    pub id: u64,
    /// The sweep to run.
    pub spec: SweepSpec,
    state: Mutex<JobState>,
    /// Set by `DELETE /v1/jobs/:id`; polled per attack by the engine.
    pub cancel: AtomicBool,
    /// Attacks finished so far (progress callback).
    pub completed: AtomicUsize,
    /// Total attacks in the sweep.
    pub total: AtomicUsize,
    /// Wall time so far, milliseconds.
    pub elapsed_ms: AtomicU64,
    /// Estimated remaining time, milliseconds ([`ETA_UNKNOWN`] until the
    /// first attack completes).
    pub eta_ms: AtomicU64,
}

impl Job {
    fn new(id: u64, spec: SweepSpec) -> Job {
        let total = spec.pool.len();
        Job {
            id,
            spec,
            state: Mutex::new(JobState::Queued),
            cancel: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(total),
            elapsed_ms: AtomicU64::new(0),
            eta_ms: AtomicU64::new(ETA_UNKNOWN),
        }
    }

    /// Wire id (`job-<n>`).
    pub fn wire_id(&self) -> String {
        format!("job-{}", self.id)
    }

    /// Runs `f` against the current state.
    pub fn with_state<R>(&self, f: impl FnOnce(&JobState) -> R) -> R {
        f(&self.state.lock().unwrap())
    }

    /// Transitions to `next` unless already terminal (a cancelled job
    /// stays cancelled even if the executor later reports completion).
    pub fn transition(&self, next: JobState) {
        let mut state = self.state.lock().unwrap();
        if !state.is_terminal() {
            *state = next;
        }
    }
}

struct RegistryInner {
    /// Every retained job, oldest first.
    jobs: VecDeque<Arc<Job>>,
    /// Jobs awaiting the executor, submission order.
    queue: VecDeque<Arc<Job>>,
    next_id: u64,
    closed: bool,
}

/// Owns every job and the executor hand-off queue.
pub struct JobRegistry {
    inner: Mutex<RegistryInner>,
    /// Signals the executor: queue non-empty or registry closed.
    pending: Condvar,
    max_queued: usize,
}

/// Per-state job counts for `/v1/healthz` and `/v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting for the executor.
    pub queued: usize,
    /// Jobs currently sweeping.
    pub running: usize,
    /// Jobs finished with results.
    pub done: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Jobs failed.
    pub failed: usize,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("counts", &self.counts())
            .finish()
    }
}

impl JobRegistry {
    /// Finished jobs retained before the oldest are forgotten.
    pub const MAX_RETAINED: usize = 256;

    /// A registry accepting at most `max_queued` unstarted jobs.
    pub fn new(max_queued: usize) -> JobRegistry {
        JobRegistry {
            inner: Mutex::new(RegistryInner {
                jobs: VecDeque::new(),
                queue: VecDeque::new(),
                next_id: 1,
                closed: false,
            }),
            pending: Condvar::new(),
            max_queued: max_queued.max(1),
        }
    }

    /// Enqueues a sweep, returning the job handle, or an error message
    /// when the queue is full (HTTP 429) or the server is draining
    /// (HTTP 503).
    pub fn submit(&self, spec: SweepSpec) -> Result<Arc<Job>, &'static str> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err("server is shutting down");
        }
        if inner.queue.len() >= self.max_queued {
            return Err("job queue is full");
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Arc::new(Job::new(id, spec));
        inner.jobs.push_back(Arc::clone(&job));
        inner.queue.push_back(Arc::clone(&job));
        // Forget the oldest finished jobs beyond the retention bound.
        while inner.jobs.len() > JobRegistry::MAX_RETAINED {
            let Some(pos) = inner
                .jobs
                .iter()
                .position(|j| j.with_state(JobState::is_terminal))
            else {
                break;
            };
            inner.jobs.remove(pos);
        }
        drop(inner);
        self.pending.notify_one();
        Ok(job)
    }

    /// Looks up a retained job by numeric id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Blocks until a job is available (skipping ones already cancelled
    /// while queued) or the registry closes; `None` means shut down.
    pub fn next_job(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            while let Some(job) = inner.queue.pop_front() {
                if job.cancel.load(Ordering::Relaxed) {
                    job.transition(JobState::Cancelled);
                    continue;
                }
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.pending.wait(inner).unwrap();
        }
    }

    /// Requests cancellation of a job. Queued jobs become `cancelled`
    /// immediately; a running job's sweep notices the flag per attack and
    /// the executor marks it `cancelled` when the sweep returns. Returns
    /// the job, or `None` if the id is unknown.
    pub fn cancel(&self, id: u64) -> Option<Arc<Job>> {
        let job = self.get(id)?;
        job.cancel.store(true, Ordering::Relaxed);
        // Transition queued jobs right away so the DELETE response is
        // immediately truthful; the executor also skips them when popped.
        let queued = job.with_state(|s| matches!(s, JobState::Queued));
        if queued {
            job.transition(JobState::Cancelled);
        }
        Some(job)
    }

    /// Closes the registry: refuses new submissions, cancels every
    /// not-yet-terminal job, and wakes the executor so it can exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        for job in &inner.jobs {
            job.cancel.store(true, Ordering::Relaxed);
            let queued = job.with_state(|s| matches!(s, JobState::Queued));
            if queued {
                job.transition(JobState::Failed("server shut down".to_string()));
            }
        }
        inner.queue.clear();
        drop(inner);
        self.pending.notify_all();
    }

    /// Per-state counts over retained jobs.
    pub fn counts(&self) -> JobCounts {
        let inner = self.inner.lock().unwrap();
        let mut counts = JobCounts::default();
        for job in &inner.jobs {
            job.with_state(|state| match state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Done(_) => counts.done += 1,
                JobState::Cancelled => counts.cancelled += 1,
                JobState::Failed(_) => counts.failed += 1,
            });
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            target: AsIndex::new(0),
            target_asn: 1,
            pool: vec![AsIndex::new(1), AsIndex::new(2)],
            pool_asns: vec![2, 3],
            defense: Defense::none(),
            validator_asns: Vec::new(),
            stub_defense: false,
            defense_fp: 0,
            cacheable: false,
            pool_kind: "explicit",
        }
    }

    #[test]
    fn submit_pop_finish() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        assert_eq!(job.wire_id(), "job-1");
        assert_eq!(registry.counts().queued, 1);
        let popped = registry.next_job().unwrap();
        assert_eq!(popped.id, job.id);
        popped.transition(JobState::Running);
        assert_eq!(registry.counts().running, 1);
        popped.transition(JobState::Done(JobOutput {
            counts: vec![1, 2],
            cache: "bypass",
            wall_ms: 3,
        }));
        assert_eq!(registry.counts().done, 1);
        assert!(registry.get(1).unwrap().with_state(JobState::is_terminal));
        assert!(registry.get(99).is_none());
    }

    #[test]
    fn queue_bound_enforced() {
        let registry = JobRegistry::new(2);
        registry.submit(spec()).unwrap();
        registry.submit(spec()).unwrap();
        assert_eq!(registry.submit(spec()).unwrap_err(), "job queue is full");
    }

    #[test]
    fn cancel_queued_job_skips_execution() {
        let registry = JobRegistry::new(4);
        let a = registry.submit(spec()).unwrap();
        let b = registry.submit(spec()).unwrap();
        let cancelled = registry.cancel(a.id).unwrap();
        assert_eq!(cancelled.with_state(JobState::name), "cancelled");
        // The executor's next pop skips the cancelled job entirely.
        let popped = registry.next_job().unwrap();
        assert_eq!(popped.id, b.id);
    }

    #[test]
    fn cancelled_jobs_stay_cancelled() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        registry.cancel(job.id).unwrap();
        job.transition(JobState::Done(JobOutput {
            counts: Vec::new(),
            cache: "bypass",
            wall_ms: 0,
        }));
        assert_eq!(job.with_state(JobState::name), "cancelled");
    }

    #[test]
    fn close_drains_and_fails_queued() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        registry.close();
        assert!(registry.next_job().is_none());
        assert_eq!(job.with_state(JobState::name), "failed");
        assert!(registry.submit(spec()).is_err());
    }
}
