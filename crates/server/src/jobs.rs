//! Asynchronous jobs: a fair-share chunk scheduler with progress,
//! cancellation, bounded retention, and terminal-state persistence.
//!
//! `POST /v1/sweeps` enqueues a sweep [`Job`] and returns immediately.
//! Jobs are not handed to executors whole: the registry slices each job's
//! attacker pool into fixed-size chunks and deals chunks round-robin
//! across every runnable job ([`JobRegistry::next_chunk`]), so a
//! paper-scale sweep shares the executor pool with a three-attacker
//! quickie instead of starving it. Each chunk still runs on the rayon
//! pool internally — fairness is scheduled *between* jobs, parallelism
//! happens *inside* chunks.
//!
//! `POST /v1/stream` enqueues a *stream* job ([`JobSpec::Stream`])
//! through the same registry: one schedulable unit (the whole event
//! tape — events are strictly ordered, so there is nothing to slice),
//! progress ticked per event, and a shared [`StreamStore`] that
//! `GET /v1/stream/:id/range` reads live while the executor is still
//! appending. Fair share still holds: the stream's single chunk takes
//! one executor slot and every other job keeps rotating through the
//! rest.
//!
//! Progress lands in relaxed atomics that `GET /v1/jobs/:id` reads
//! lock-free; `DELETE` flips the job's cancellation flag, which the sweep
//! engine polls per attack ([`bgpsim_hijack::SweepMonitor`]).
//!
//! Every lock acquisition recovers from poisoning
//! (`unwrap_or_else(PoisonError::into_inner)`): a panicking executor must
//! never take `/v1/jobs` down with it. The executor reports panics
//! through [`JobRegistry::fail_chunk`], which marks the in-flight job
//! `failed` and keeps scheduling everyone else.
//!
//! When the registry is built with a state directory, terminal jobs
//! (done, cancelled, failed) are serialized through
//! [`bgpsim_core::manifest::Json`] to `job-<id>.json` and reloaded on the
//! next boot, so `GET /v1/results/:id` survives a restart. Unreadable
//! state files are quarantined (moved aside), never fatal.
//!
//! Retention is bounded: once more than [`JobRegistry::MAX_RETAINED`]
//! jobs exist, the oldest *finished* jobs are forgotten (their ids then
//! answer 404). Queued and running jobs are never evicted.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use bgpsim_core::manifest::{Json, SCHEMA_VERSION};
use bgpsim_core::stream::{StreamConfig, StreamPlan, StreamStore};
use bgpsim_hijack::Defense;
use bgpsim_topology::AsIndex;

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Registry state stays consistent under poisoning because every terminal
/// transition is idempotent and every counter is monotonic — serving
/// slightly stale data beats poisoning every future request.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything the executor needs to run one sweep, resolved and
/// validated at submission time so a queued job cannot fail on bad input.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Attacked target.
    pub target: AsIndex,
    /// Target's ASN (echoed in job and result documents).
    pub target_asn: u32,
    /// Attacker pool, already strided and with the target filtered out.
    pub pool: Vec<AsIndex>,
    /// The pool's ASNs, index-aligned with `pool`.
    pub pool_asns: Vec<u32>,
    /// Resolved defense deployment.
    pub defense: Defense,
    /// Sorted, deduplicated validator ASNs (echoed in the result).
    pub validator_asns: Vec<u32>,
    /// Whether provider-side stub filtering is on.
    pub stub_defense: bool,
    /// Defense fingerprint for the baseline cache.
    pub defense_fp: u64,
    /// Whether the executor should route this sweep through the baseline
    /// cache (localizing defense under adaptive dispatch, or a forced
    /// delta engine).
    pub cacheable: bool,
    /// Wire name of the attacker pool (`"all"`, `"transit"`,
    /// `"explicit"`), echoed in documents.
    pub pool_kind: &'static str,
}

/// Everything the executor needs to run one update stream, resolved at
/// submission time. The store is shared (`Arc<Mutex>`) because range
/// queries read it *while* the executor appends — that live view is the
/// point of a stream job.
#[derive(Debug)]
pub struct StreamSpec {
    /// Generator parameters (echoed in documents; the plan below is
    /// already materialized from them).
    pub config: StreamConfig,
    /// The materialized event tape.
    pub plan: StreamPlan,
    /// Tracked targets' ASNs, index-aligned with `plan.targets`.
    pub target_asns: Vec<u32>,
    /// Ground-truth hijack injections in the plan.
    pub injected: usize,
    /// The live time-series store `GET /v1/stream/:id/range` reads.
    pub store: Arc<Mutex<StreamStore>>,
}

/// What a [`Job`] runs: a §IV pollution sweep or a live update stream.
#[derive(Debug)]
pub enum JobSpec {
    /// Attacker-pool sweep, chunked across executors.
    Sweep(SweepSpec),
    /// Update stream, one chunk covering the whole event tape.
    Stream(StreamSpec),
}

impl JobSpec {
    /// Schedulable units: one per pool attacker for sweeps; a single
    /// all-events unit for streams (events are strictly ordered, so a
    /// stream cannot be sliced across executors).
    fn work_units(&self) -> usize {
        match self {
            JobSpec::Sweep(spec) => spec.pool.len(),
            JobSpec::Stream(_) => 1,
        }
    }

    /// Progress denominator surfaced as the job's `total`: attacks for
    /// sweeps, events for streams.
    fn progress_total(&self) -> usize {
        match self {
            JobSpec::Sweep(spec) => spec.pool.len(),
            JobSpec::Stream(spec) => spec.plan.events.len(),
        }
    }

    /// The sweep spec, when this is a sweep job.
    pub fn as_sweep(&self) -> Option<&SweepSpec> {
        match self {
            JobSpec::Sweep(spec) => Some(spec),
            JobSpec::Stream(_) => None,
        }
    }

    /// The stream spec, when this is a stream job.
    pub fn as_stream(&self) -> Option<&StreamSpec> {
        match self {
            JobSpec::Sweep(_) => None,
            JobSpec::Stream(spec) => Some(spec),
        }
    }
}

/// A finished stream job's summary (sweep jobs carry `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutput {
    /// Events processed (fewer than the plan's when cancelled mid-tape).
    pub events: u64,
    /// Hijacks injected over the processed events.
    pub injected: u64,
    /// Hijacks some probe eventually saw.
    pub detected: u64,
    /// Mean detection latency in events; `None` with no detections —
    /// absence, not zero.
    pub mean_latency_events: Option<f64>,
    /// Worst detection latency in events; `None` with no detections.
    pub max_latency_events: Option<u64>,
}

/// A finished job's payload.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// One pollution count per pool attacker, in pool order (empty for
    /// stream jobs).
    pub counts: Vec<u32>,
    /// How the baseline cache served this sweep (`"bypass"` when the
    /// sweep did not use it; the coldest outcome across chunks otherwise).
    pub cache: &'static str,
    /// Wall time from first chunk dispatched to last chunk finished.
    pub wall_ms: u64,
    /// Stream summary, for stream jobs only.
    pub stream: Option<StreamOutput>,
}

/// Lifecycle of a job.
#[derive(Debug)]
pub enum JobState {
    /// Waiting for its first chunk to be dispatched.
    Queued,
    /// At least one chunk dispatched; sweeping.
    Running,
    /// Finished; results available on `/v1/results/:id`.
    Done(JobOutput),
    /// Cancelled before or during the sweep; no results retained.
    Cancelled,
    /// The sweep failed (executor panic) or the server shut down first.
    Failed(String),
}

impl JobState {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

/// Sentinel for "ETA unknown" in [`Job::eta_ms`].
pub const ETA_UNKNOWN: u64 = u64::MAX;

/// Chunk-assembled sweep rows, plus the coldest cache outcome seen and
/// the first failure (if any). Stream jobs leave `counts` empty and
/// deposit their summary in `stream`.
#[derive(Debug)]
struct Partial {
    counts: Vec<u32>,
    cache: &'static str,
    failure: Option<String>,
    stream: Option<StreamOutput>,
}

/// Orders cache outcomes coldest-last so a job's overall `meta.cache`
/// reports the most expensive thing that happened to it: one missed chunk
/// makes the whole sweep a `"miss"` even though later chunks hit.
fn cache_rank(name: &str) -> u8 {
    match name {
        "miss" => 3,
        "coalesced" => 2,
        // "fanout" marks a sweep dealt to remote workers: no local cache
        // story at all, but still worth surfacing over the "bypass"
        // default (a fanout job runs as one whole-pool chunk, so it
        // never competes with real cache outcomes).
        "hit" | "fanout" => 1,
        _ => 0, // bypass
    }
}

/// One submitted job.
#[derive(Debug)]
pub struct Job {
    /// Monotonic id; `job-<id>` on the wire.
    pub id: u64,
    /// The work to run.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    /// Set by `DELETE /v1/jobs/:id`; polled per attack by the engine.
    pub cancel: AtomicBool,
    /// Attacks finished so far (progress callback).
    pub completed: AtomicUsize,
    /// Total attacks in the sweep.
    pub total: AtomicUsize,
    /// Wall time so far, milliseconds.
    pub elapsed_ms: AtomicU64,
    /// Estimated remaining time, milliseconds ([`ETA_UNKNOWN`] until the
    /// first attack completes).
    pub eta_ms: AtomicU64,
    /// True for jobs reloaded from the state directory at boot; they are
    /// terminal forever and never scheduled.
    pub restored: bool,
    /// First pool index not yet dealt to an executor. Mutated only under
    /// the registry lock.
    next_attacker: AtomicUsize,
    /// Chunks dealt out but not yet reported back. Mutated only under the
    /// registry lock.
    chunks_in_flight: AtomicUsize,
    /// When the first chunk was dispatched.
    started: Mutex<Option<Instant>>,
    partial: Mutex<Partial>,
    /// Guards the one-shot terminal-state write to the state directory.
    persisted: AtomicBool,
    /// Fan-out shard progress, all zero unless the sweep executor dealt
    /// this job to remote workers: shards planned, completed, re-queued
    /// after a failure, and hedged. Surfaced as the `shards` object on
    /// `GET /v1/jobs/:id`.
    pub shards_total: AtomicU64,
    /// Shards completed (see [`Job::shards_total`]).
    pub shards_done: AtomicU64,
    /// Shards re-queued after a failed dispatch.
    pub shards_retried: AtomicU64,
    /// Hedged duplicate dispatches issued.
    pub shards_hedged: AtomicU64,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Job {
        let counts = match &spec {
            JobSpec::Sweep(sweep) => vec![0; sweep.pool.len()],
            JobSpec::Stream(_) => Vec::new(),
        };
        let total = spec.progress_total();
        Job {
            id,
            partial: Mutex::new(Partial {
                counts,
                cache: "bypass",
                failure: None,
                stream: None,
            }),
            spec,
            state: Mutex::new(JobState::Queued),
            cancel: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(total),
            elapsed_ms: AtomicU64::new(0),
            eta_ms: AtomicU64::new(ETA_UNKNOWN),
            restored: false,
            next_attacker: AtomicUsize::new(0),
            chunks_in_flight: AtomicUsize::new(0),
            started: Mutex::new(None),
            persisted: AtomicBool::new(false),
            shards_total: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            shards_retried: AtomicU64::new(0),
            shards_hedged: AtomicU64::new(0),
        }
    }

    /// Wire id (`job-<n>`).
    pub fn wire_id(&self) -> String {
        format!("job-{}", self.id)
    }

    /// Runs `f` against the current state.
    pub fn with_state<R>(&self, f: impl FnOnce(&JobState) -> R) -> R {
        f(&lock_recover(&self.state))
    }

    /// Transitions to `next` unless already terminal (a cancelled job
    /// stays cancelled even if the executor later reports completion).
    pub fn transition(&self, next: JobState) {
        let mut state = lock_recover(&self.state);
        if !state.is_terminal() {
            *state = next;
        }
    }

    /// When the first chunk of this job was dispatched (`None` while
    /// queued). The executor derives job-level elapsed/ETA from this.
    pub fn started_at(&self) -> Option<Instant> {
        *lock_recover(&self.started)
    }
}

/// One unit of executor work: pool attackers `[start, end)` of a sweep
/// job, or the entire event tape of a stream job (`start..end` is `0..1`).
#[derive(Debug)]
pub struct Chunk {
    /// The job this chunk belongs to.
    pub job: Arc<Job>,
    /// First work-unit index of the chunk (inclusive).
    pub start: usize,
    /// Last work-unit index of the chunk (exclusive).
    pub end: usize,
}

impl Chunk {
    /// The chunk's slice of a sweep job's attacker pool (empty for a
    /// stream chunk — its work is the whole event tape).
    pub fn attackers(&self) -> &[AsIndex] {
        match &self.job.spec {
            JobSpec::Sweep(spec) => &spec.pool[self.start..self.end],
            JobSpec::Stream(_) => &[],
        }
    }
}

struct RegistryInner {
    /// Every retained job, oldest first.
    jobs: VecDeque<Arc<Job>>,
    /// Round-robin ring of jobs with undealt chunks. A job appears at
    /// most once; it is pushed to the back after each chunk is dealt and
    /// drops out once fully dealt (or terminal).
    ring: VecDeque<Arc<Job>>,
    /// Client idempotency keys → job id, oldest first, bounded by
    /// [`JobRegistry::MAX_IDEMPOTENCY_KEYS`]. A resubmission under a
    /// retained key returns the original job instead of scheduling a
    /// duplicate.
    idempotency: VecDeque<(String, u64)>,
    next_id: u64,
    closed: bool,
}

/// Counters for `/v1/metrics`: scheduler and persistence activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Chunks finished (successfully or not) by the executor pool.
    pub chunks_executed: u64,
    /// Terminal job records written to the state directory.
    pub jobs_persisted: u64,
    /// Terminal jobs reloaded from the state directory at boot.
    pub jobs_restored: u64,
    /// Unreadable state files moved to quarantine at boot.
    pub files_quarantined: u64,
}

/// What [`JobRegistry::with_state_dir`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Terminal jobs reloaded into the registry.
    pub restored: usize,
    /// Unreadable files moved to `<state-dir>/quarantine/`.
    pub quarantined: usize,
}

/// Owns every job, the fair-share chunk ring, and the state directory.
pub struct JobRegistry {
    inner: Mutex<RegistryInner>,
    /// Signals executors: ring non-empty or registry closed.
    pending: Condvar,
    max_queued: usize,
    chunk_size: usize,
    state_dir: Option<PathBuf>,
    chunks_executed: AtomicU64,
    jobs_persisted: AtomicU64,
    jobs_restored: u64,
    files_quarantined: u64,
}

/// Per-state job counts for `/v1/healthz` and `/v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting for their first chunk.
    pub queued: usize,
    /// Jobs currently sweeping.
    pub running: usize,
    /// Jobs finished with results.
    pub done: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Jobs failed.
    pub failed: usize,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("counts", &self.counts())
            .finish()
    }
}

impl JobRegistry {
    /// Finished jobs retained before the oldest are forgotten.
    pub const MAX_RETAINED: usize = 256;

    /// Idempotency keys retained (FIFO) before the oldest are forgotten.
    pub const MAX_IDEMPOTENCY_KEYS: usize = 1024;

    /// Attackers per scheduling chunk: small enough that a short job
    /// never waits behind more than one chunk of a long one, large enough
    /// that per-chunk overhead (cache lookup, dispatch) stays negligible
    /// against the rayon fan-out inside the chunk.
    pub const CHUNK_ATTACKERS: usize = 64;

    /// A registry accepting at most `max_queued` unstarted jobs, with no
    /// persistence.
    pub fn new(max_queued: usize) -> JobRegistry {
        JobRegistry::with_state_dir(max_queued, None).0
    }

    /// A registry that persists terminal jobs to `state_dir` (when given)
    /// and reloads the ones already there, quarantining unreadable files
    /// instead of failing the boot.
    pub fn with_state_dir(
        max_queued: usize,
        state_dir: Option<PathBuf>,
    ) -> (JobRegistry, RestoreReport) {
        let mut report = RestoreReport::default();
        let mut jobs = VecDeque::new();
        let mut next_id = 1;
        if let Some(dir) = &state_dir {
            let (restored, quarantined) = restore_jobs(dir);
            report.restored = restored.len();
            report.quarantined = quarantined;
            for job in restored {
                next_id = next_id.max(job.id + 1);
                jobs.push_back(job);
            }
        }
        let registry = JobRegistry {
            inner: Mutex::new(RegistryInner {
                jobs,
                ring: VecDeque::new(),
                idempotency: VecDeque::new(),
                next_id,
                closed: false,
            }),
            pending: Condvar::new(),
            max_queued: max_queued.max(1),
            chunk_size: JobRegistry::CHUNK_ATTACKERS,
            state_dir,
            chunks_executed: AtomicU64::new(0),
            jobs_persisted: AtomicU64::new(0),
            jobs_restored: report.restored as u64,
            files_quarantined: report.quarantined as u64,
        };
        (registry, report)
    }

    /// Overrides the scheduling chunk size (tests use 1 to force
    /// fine-grained interleaving).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> JobRegistry {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Scheduler/persistence counter snapshot.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        SchedulerStats {
            chunks_executed: self.chunks_executed.load(Ordering::Relaxed),
            jobs_persisted: self.jobs_persisted.load(Ordering::Relaxed),
            jobs_restored: self.jobs_restored,
            files_quarantined: self.files_quarantined,
        }
    }

    /// Enqueues a job (sweep or stream), returning the job handle, or an
    /// error message when the queue is full (HTTP 429) or the server is
    /// draining (HTTP 503).
    ///
    /// The admission bound counts every *unfinished* job (queued or
    /// running), not just queued ones: under fair-share scheduling a
    /// job's first chunk is dealt almost immediately, so a queued-only
    /// bound would admit an unbounded backlog of jobs all nominally
    /// "running". Restored jobs are terminal by construction and never
    /// count.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, &'static str> {
        self.submit_keyed(spec, None).map(|(job, _)| job)
    }

    /// [`JobRegistry::submit`] with an optional client idempotency key.
    /// Returns `(job, fresh)`: a resubmission under a retained key
    /// returns the original job with `fresh == false` and schedules
    /// nothing — a coordinator retrying a timed-out submit cannot
    /// double-schedule its shard. Keys are retained FIFO up to
    /// [`JobRegistry::MAX_IDEMPOTENCY_KEYS`]; a key whose job has since
    /// been forgotten is treated as fresh.
    pub fn submit_keyed(
        &self,
        spec: JobSpec,
        key: Option<String>,
    ) -> Result<(Arc<Job>, bool), &'static str> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err("server is shutting down");
        }
        if let Some(key) = &key {
            if let Some(id) = inner
                .idempotency
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, id)| id)
            {
                if let Some(job) = inner.jobs.iter().find(|j| j.id == id).cloned() {
                    return Ok((job, false));
                }
                // The job aged out of retention; the key is stale.
                inner.idempotency.retain(|(k, _)| k != key);
            }
        }
        let active = inner
            .jobs
            .iter()
            .filter(|j| j.with_state(|s| !s.is_terminal()))
            .count();
        if active >= self.max_queued {
            return Err("job queue is full");
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Arc::new(Job::new(id, spec));
        inner.jobs.push_back(Arc::clone(&job));
        inner.ring.push_back(Arc::clone(&job));
        if let Some(key) = key {
            inner.idempotency.push_back((key, id));
            while inner.idempotency.len() > JobRegistry::MAX_IDEMPOTENCY_KEYS {
                inner.idempotency.pop_front();
            }
        }
        // Forget the oldest finished jobs beyond the retention bound.
        while inner.jobs.len() > JobRegistry::MAX_RETAINED {
            let Some(pos) = inner
                .jobs
                .iter()
                .position(|j| j.with_state(JobState::is_terminal))
            else {
                break;
            };
            inner.jobs.remove(pos);
        }
        drop(inner);
        self.pending.notify_one();
        Ok((job, true))
    }

    /// Every retained job, oldest first (callers cap what they render).
    pub fn snapshot(&self) -> Vec<Arc<Job>> {
        lock_recover(&self.inner).jobs.iter().cloned().collect()
    }

    /// Looks up a retained job by numeric id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        lock_recover(&self.inner)
            .jobs
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Blocks until a chunk of work is available or the registry closes
    /// (`None` means shut down). Chunks are dealt round-robin across every
    /// job with undealt attackers: after a chunk is taken from the front
    /// job, that job goes to the back of the ring, so N concurrent jobs
    /// each receive ~every Nth chunk regardless of pool size.
    pub fn next_chunk(&self) -> Option<Chunk> {
        let mut inner = lock_recover(&self.inner);
        loop {
            while let Some(job) = inner.ring.pop_front() {
                if job.with_state(JobState::is_terminal) {
                    continue;
                }
                if job.cancel.load(Ordering::Relaxed) {
                    // Reap a cancelled job with nothing in flight; one
                    // with chunks still out finalizes when they drain.
                    if job.chunks_in_flight.load(Ordering::Relaxed) == 0 {
                        job.transition(JobState::Cancelled);
                        self.persist_terminal(&job);
                    }
                    continue;
                }
                let total = job.spec.work_units();
                let start = job.next_attacker.load(Ordering::Relaxed);
                if start >= total {
                    continue; // fully dealt; finish_chunk finalizes
                }
                let end = (start + self.chunk_size).min(total);
                job.next_attacker.store(end, Ordering::Relaxed);
                job.chunks_in_flight.fetch_add(1, Ordering::Relaxed);
                if start == 0 {
                    job.transition(JobState::Running);
                    *lock_recover(&job.started) = Some(Instant::now());
                }
                if end < total {
                    inner.ring.push_back(Arc::clone(&job));
                    // Cascade: there is more work than this executor is
                    // about to take, so wake another one.
                    self.pending.notify_one();
                }
                return Some(Chunk { job, start, end });
            }
            if inner.closed {
                return None;
            }
            inner = self
                .pending
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Reports a chunk's rows back. When this was the job's last
    /// outstanding chunk, assembles the output and finalizes the job.
    pub fn finish_chunk(&self, chunk: &Chunk, rows: &[u32], cache: &'static str) {
        debug_assert_eq!(rows.len(), chunk.end - chunk.start);
        {
            let mut partial = lock_recover(&chunk.job.partial);
            let n = rows.len().min(chunk.end - chunk.start);
            partial.counts[chunk.start..chunk.start + n].copy_from_slice(&rows[..n]);
            if cache_rank(cache) > cache_rank(partial.cache) {
                partial.cache = cache;
            }
        }
        self.chunk_done(&chunk.job, None);
    }

    /// Reports a stream chunk's summary back and finalizes the job (a
    /// stream job has exactly one chunk). A cancelled stream still lands
    /// here with its partial summary — `chunk_done` keeps the terminal
    /// state `cancelled`, which discards it, matching sweep semantics.
    pub fn finish_stream_chunk(&self, chunk: &Chunk, output: StreamOutput) {
        {
            let mut partial = lock_recover(&chunk.job.partial);
            partial.stream = Some(output);
        }
        self.chunk_done(&chunk.job, None);
    }

    /// Reports a chunk that died (executor panic). The job stops being
    /// scheduled and finalizes as `failed` once in-flight chunks drain;
    /// every other job keeps running.
    pub fn fail_chunk(&self, chunk: &Chunk, message: impl Into<String>) {
        self.chunk_done(&chunk.job, Some(message.into()));
    }

    fn chunk_done(&self, job: &Arc<Job>, failure: Option<String>) {
        self.chunks_executed.fetch_add(1, Ordering::Relaxed);
        let mut terminal: Option<JobState> = None;
        {
            let _inner = lock_recover(&self.inner);
            if let Some(message) = failure {
                let mut partial = lock_recover(&job.partial);
                partial.failure.get_or_insert(message);
                drop(partial);
                // Stop dealing the rest of the pool and hasten in-flight
                // chunks to bail (the sweep engine polls the flag).
                job.next_attacker
                    .store(job.spec.work_units(), Ordering::Relaxed);
                job.cancel.store(true, Ordering::Relaxed);
            }
            let in_flight = job.chunks_in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
            let fully_dealt = job.next_attacker.load(Ordering::Relaxed) >= job.spec.work_units();
            // A cancelled job never becomes fully dealt (the scheduler
            // stops dealing it), so the cancel flag alone must finalize it
            // once its in-flight chunks drain — otherwise it is stuck
            // `running` forever and leaks an admission slot.
            if in_flight == 0 && (fully_dealt || job.cancel.load(Ordering::Relaxed)) {
                let mut partial = lock_recover(&job.partial);
                terminal = Some(if let Some(message) = partial.failure.take() {
                    JobState::Failed(message)
                } else if job.cancel.load(Ordering::Relaxed) {
                    // A cancelled sweep returns zero rows for skipped
                    // attackers — not real results, so they are discarded.
                    JobState::Cancelled
                } else {
                    let wall = job
                        .started_at()
                        .map_or(0, |t| t.elapsed().as_millis() as u64);
                    JobState::Done(JobOutput {
                        counts: std::mem::take(&mut partial.counts),
                        cache: partial.cache,
                        wall_ms: wall,
                        stream: partial.stream.take(),
                    })
                });
            }
        }
        if let Some(next) = terminal {
            job.transition(next);
            self.persist_terminal(job);
        }
    }

    /// Requests cancellation of a job. Jobs with no chunk in flight
    /// (queued, or running between chunks) become `cancelled`
    /// immediately; a running chunk notices the flag per attack and the
    /// job finalizes when its chunks drain. Returns the job, or `None` if
    /// the id is unknown.
    pub fn cancel(&self, id: u64) -> Option<Arc<Job>> {
        let job = {
            let inner = lock_recover(&self.inner);
            let job = inner.jobs.iter().find(|j| j.id == id).cloned()?;
            job.cancel.store(true, Ordering::Relaxed);
            if job.chunks_in_flight.load(Ordering::Relaxed) == 0 {
                // Between chunks (or never started): nothing will report
                // back, so finalize here; the ring skips terminal jobs.
                job.transition(JobState::Cancelled);
            }
            job
        };
        self.persist_terminal(&job);
        Some(job)
    }

    /// Closes the registry: refuses new submissions, cancels every
    /// not-yet-terminal job, and wakes the executors so they can exit.
    pub fn close(&self) {
        let mut to_persist = Vec::new();
        {
            let mut inner = lock_recover(&self.inner);
            inner.closed = true;
            for job in &inner.jobs {
                job.cancel.store(true, Ordering::Relaxed);
                let queued = job.with_state(|s| matches!(s, JobState::Queued));
                if queued {
                    job.transition(JobState::Failed("server shut down".to_string()));
                    to_persist.push(Arc::clone(job));
                } else if job.chunks_in_flight.load(Ordering::Relaxed) == 0 {
                    // Running but between chunks: nothing will report back.
                    job.transition(JobState::Cancelled);
                    to_persist.push(Arc::clone(job));
                }
            }
            inner.ring.clear();
        }
        self.pending.notify_all();
        for job in to_persist {
            self.persist_terminal(&job);
        }
    }

    /// Per-state counts over retained jobs.
    pub fn counts(&self) -> JobCounts {
        let inner = lock_recover(&self.inner);
        let mut counts = JobCounts::default();
        for job in &inner.jobs {
            job.with_state(|state| match state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Done(_) => counts.done += 1,
                JobState::Cancelled => counts.cancelled += 1,
                JobState::Failed(_) => counts.failed += 1,
            });
        }
        counts
    }

    // -----------------------------------------------------------------
    // Persistence

    /// Writes a terminal job's record to the state directory, once.
    /// Failures are swallowed: persistence is best-effort durability, not
    /// a correctness dependency of the running server.
    fn persist_terminal(&self, job: &Arc<Job>) {
        let Some(dir) = &self.state_dir else { return };
        if !job.with_state(JobState::is_terminal) {
            return;
        }
        if job.persisted.swap(true, Ordering::Relaxed) {
            return;
        }
        let doc = job_to_doc(job);
        let path = dir.join(format!("job-{}.json", job.id));
        let tmp = dir.join(format!("job-{}.json.tmp", job.id));
        let mut text = doc.render_compact();
        text.push('\n');
        // Write-then-rename so a crash mid-write leaves a quarantinable
        // .tmp, never a torn job-<id>.json.
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.jobs_persisted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serializes a terminal job to its on-disk record. Sweep records keep
/// the pre-stream field layout (no `kind`) so documents written by older
/// builds restore unchanged; stream records carry `"kind":"stream"`.
fn job_to_doc(job: &Job) -> Json {
    let mut pairs = vec![
        (
            "schema_version".to_string(),
            Json::Num(SCHEMA_VERSION as f64),
        ),
        ("id".to_string(), Json::Num(job.id as f64)),
        (
            "state".to_string(),
            Json::str(job.with_state(JobState::name)),
        ),
    ];
    match &job.spec {
        JobSpec::Sweep(spec) => {
            pairs.push(("target".to_string(), Json::Num(f64::from(spec.target_asn))));
            pairs.push(("pool".to_string(), Json::str(spec.pool_kind)));
            pairs.push((
                "attackers".to_string(),
                Json::Arr(
                    spec.pool_asns
                        .iter()
                        .map(|&asn| Json::Num(f64::from(asn)))
                        .collect(),
                ),
            ));
            pairs.push((
                "validators".to_string(),
                Json::Arr(
                    spec.validator_asns
                        .iter()
                        .map(|&asn| Json::Num(f64::from(asn)))
                        .collect(),
                ),
            ));
            pairs.push(("stub_defense".to_string(), Json::Bool(spec.stub_defense)));
        }
        JobSpec::Stream(spec) => {
            pairs.push(("kind".to_string(), Json::str("stream")));
            pairs.push(("events".to_string(), Json::Num(spec.config.events as f64)));
            pairs.push((
                "stream_seed".to_string(),
                Json::Num(spec.config.seed as f64),
            ));
            pairs.push((
                "targets".to_string(),
                Json::Arr(
                    spec.target_asns
                        .iter()
                        .map(|&asn| Json::Num(f64::from(asn)))
                        .collect(),
                ),
            ));
            pairs.push(("injected".to_string(), Json::Num(spec.injected as f64)));
        }
    }
    pairs.push((
        "total".to_string(),
        Json::Num(job.total.load(Ordering::Relaxed) as f64),
    ));
    pairs.push((
        "completed".to_string(),
        Json::Num(job.completed.load(Ordering::Relaxed) as f64),
    ));
    pairs.push((
        "elapsed_ms".to_string(),
        Json::Num(job.elapsed_ms.load(Ordering::Relaxed) as f64),
    ));
    job.with_state(|state| match state {
        JobState::Done(output) => {
            let mut out = vec![
                (
                    "counts".to_string(),
                    Json::Arr(
                        output
                            .counts
                            .iter()
                            .map(|&c| Json::Num(f64::from(c)))
                            .collect(),
                    ),
                ),
                ("cache".to_string(), Json::str(output.cache)),
                ("wall_ms".to_string(), Json::Num(output.wall_ms as f64)),
            ];
            if let Some(stream) = &output.stream {
                out.push((
                    "stream".to_string(),
                    Json::obj([
                        ("events", Json::Num(stream.events as f64)),
                        ("injected", Json::Num(stream.injected as f64)),
                        ("detected", Json::Num(stream.detected as f64)),
                        (
                            // Null, not zero, when nothing was detected.
                            "mean_latency_events",
                            stream.mean_latency_events.map_or(Json::Null, Json::Num),
                        ),
                        (
                            "max_latency_events",
                            stream
                                .max_latency_events
                                .map_or(Json::Null, |v| Json::Num(v as f64)),
                        ),
                    ]),
                ));
            }
            pairs.push(("output".to_string(), Json::Obj(out)));
        }
        JobState::Failed(message) => {
            pairs.push(("error".to_string(), Json::str(message.clone())));
        }
        _ => {}
    });
    Json::Obj(pairs)
}

fn doc_get<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn doc_u64(doc: &Json, key: &str) -> Option<u64> {
    match doc_get(doc, key)? {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn doc_u32s(doc: &Json, key: &str) -> Option<Vec<u32>> {
    match doc_get(doc, key)? {
        Json::Arr(items) => items
            .iter()
            .map(|item| match item {
                Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= f64::from(u32::MAX) => {
                    Some(*n as u32)
                }
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

/// Parses the `"done"` output object shared by both record kinds.
/// `expect_counts` is the sweep pool width (`None` for stream records,
/// whose counts must be empty).
fn output_from_doc(doc: &Json, expect_counts: Option<usize>) -> Option<JobOutput> {
    let output = doc_get(doc, "output")?;
    let counts = doc_u32s(output, "counts")?;
    if counts.len() != expect_counts.unwrap_or(0) {
        return None;
    }
    let cache = match doc_get(output, "cache")? {
        Json::Str(s) => match s.as_str() {
            "hit" => "hit",
            "miss" => "miss",
            "coalesced" => "coalesced",
            "bypass" => "bypass",
            _ => return None,
        },
        _ => return None,
    };
    let wall_ms = doc_u64(output, "wall_ms")?;
    let stream = match doc_get(output, "stream") {
        None => None,
        Some(stream) => Some(StreamOutput {
            events: doc_u64(stream, "events")?,
            injected: doc_u64(stream, "injected")?,
            detected: doc_u64(stream, "detected")?,
            // Null means "no detections", distinct from a zero latency.
            mean_latency_events: match doc_get(stream, "mean_latency_events")? {
                Json::Null => None,
                Json::Num(n) => Some(*n),
                _ => return None,
            },
            max_latency_events: match doc_get(stream, "max_latency_events")? {
                Json::Null => None,
                Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
                _ => return None,
            },
        }),
    };
    Some(JobOutput {
        counts,
        cache,
        wall_ms,
        stream,
    })
}

/// Deserializes one state-directory record; `None` means the file is
/// corrupt (and should be quarantined).
fn job_from_doc(doc: &Json) -> Option<Arc<Job>> {
    let id = doc_u64(doc, "id")?;
    let is_stream = matches!(doc_get(doc, "kind"), Some(Json::Str(s)) if s == "stream");
    let total = doc_u64(doc, "total")? as usize;
    let completed = doc_u64(doc, "completed").unwrap_or(0) as usize;
    let elapsed_ms = doc_u64(doc, "elapsed_ms").unwrap_or(0);
    let spec = if is_stream {
        let target_asns = doc_u32s(doc, "targets")?;
        let injected = doc_u64(doc, "injected").unwrap_or(0) as usize;
        JobSpec::Stream(StreamSpec {
            // Runtime fields are placeholders: restored jobs are terminal
            // and never scheduled, and per-event samples are not persisted
            // (range queries on a restored stream answer 410).
            config: StreamConfig {
                events: total,
                seed: doc_u64(doc, "stream_seed").unwrap_or(0),
                num_targets: target_asns.len().max(1),
                ..StreamConfig::default()
            },
            plan: StreamPlan {
                initial_validators: Vec::new(),
                targets: Vec::new(),
                stub_defense: false,
                events: Vec::new(),
            },
            target_asns,
            injected,
            store: Arc::new(Mutex::new(StreamStore::new(1, 1))),
        })
    } else {
        let target_asn = u32::try_from(doc_u64(doc, "target")?).ok()?;
        let pool_asns = doc_u32s(doc, "attackers")?;
        let validator_asns = doc_u32s(doc, "validators")?;
        let stub_defense = matches!(doc_get(doc, "stub_defense"), Some(Json::Bool(true)));
        let pool_kind = match doc_get(doc, "pool")? {
            Json::Str(s) => match s.as_str() {
                "all" => "all",
                "transit" => "transit",
                "explicit" => "explicit",
                _ => return None,
            },
            _ => return None,
        };
        JobSpec::Sweep(SweepSpec {
            // Runtime fields are placeholders: restored jobs are terminal
            // and never scheduled, so only the echoed document fields
            // (ASNs, pool kind, defense description) matter.
            target: AsIndex::new(0),
            target_asn,
            pool: Vec::new(),
            pool_asns,
            defense: Defense::none(),
            validator_asns,
            stub_defense,
            defense_fp: 0,
            cacheable: false,
            pool_kind,
        })
    };
    let state = match doc_get(doc, "state")? {
        Json::Str(s) => match s.as_str() {
            "done" => {
                let expect_counts = spec.as_sweep().map(|s| s.pool_asns.len());
                let output = output_from_doc(doc, expect_counts)?;
                if is_stream && output.stream.is_none() {
                    return None;
                }
                JobState::Done(output)
            }
            "cancelled" => JobState::Cancelled,
            "failed" => {
                let message = match doc_get(doc, "error") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => "unknown failure (restored)".to_string(),
                };
                JobState::Failed(message)
            }
            // A non-terminal state on disk is a corrupt record: the
            // registry only ever persists terminal jobs.
            _ => return None,
        },
        _ => return None,
    };
    let work_units = spec.work_units();
    Some(Arc::new(Job {
        id,
        spec,
        state: Mutex::new(state),
        cancel: AtomicBool::new(false),
        completed: AtomicUsize::new(completed),
        total: AtomicUsize::new(total),
        elapsed_ms: AtomicU64::new(elapsed_ms),
        eta_ms: AtomicU64::new(ETA_UNKNOWN),
        restored: true,
        next_attacker: AtomicUsize::new(work_units),
        chunks_in_flight: AtomicUsize::new(0),
        started: Mutex::new(None),
        partial: Mutex::new(Partial {
            counts: Vec::new(),
            cache: "bypass",
            failure: None,
            stream: None,
        }),
        // Already on disk: never rewrite.
        persisted: AtomicBool::new(true),
        shards_total: AtomicU64::new(0),
        shards_done: AtomicU64::new(0),
        shards_retried: AtomicU64::new(0),
        shards_hedged: AtomicU64::new(0),
    }))
}

/// Scans `dir` for `job-*.json` records, quarantining unreadable ones.
/// Returns the restored jobs (oldest first, newest [`JobRegistry::MAX_RETAINED`]
/// only) and the number of files quarantined.
fn restore_jobs(dir: &Path) -> (Vec<Arc<Job>>, usize) {
    let _ = std::fs::create_dir_all(dir);
    let mut restored: Vec<Arc<Job>> = Vec::new();
    let mut quarantined = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (restored, quarantined);
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("job-") || !name.ends_with(".json") {
            continue;
        }
        let job = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| job_from_doc(&doc));
        match job {
            Some(job) => restored.push(job),
            None => {
                quarantine(dir, &path);
                quarantined += 1;
            }
        }
    }
    restored.sort_by_key(|j| j.id);
    if restored.len() > JobRegistry::MAX_RETAINED {
        let drop_n = restored.len() - JobRegistry::MAX_RETAINED;
        restored.drain(..drop_n);
    }
    (restored, quarantined)
}

/// Moves an unreadable state file into `<dir>/quarantine/` so the
/// operator can inspect it and the next boot does not trip over it again.
fn quarantine(dir: &Path, path: &Path) {
    let quarantine_dir = dir.join("quarantine");
    let _ = std::fs::create_dir_all(&quarantine_dir);
    if let Some(name) = path.file_name() {
        let _ = std::fs::rename(path, quarantine_dir.join(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        spec_with_pool(2)
    }

    fn spec_with_pool(n: u32) -> JobSpec {
        JobSpec::Sweep(SweepSpec {
            target: AsIndex::new(0),
            target_asn: 1,
            pool: (1..=n).map(AsIndex::new).collect(),
            pool_asns: (2..=n + 1).collect(),
            defense: Defense::none(),
            validator_asns: Vec::new(),
            stub_defense: false,
            defense_fp: 0,
            cacheable: false,
            pool_kind: "explicit",
        })
    }

    fn stream_spec(events: usize) -> JobSpec {
        JobSpec::Stream(StreamSpec {
            config: StreamConfig {
                events,
                seed: 7,
                num_targets: 2,
                ..StreamConfig::default()
            },
            plan: StreamPlan {
                initial_validators: Vec::new(),
                targets: vec![AsIndex::new(3), AsIndex::new(5)],
                stub_defense: true,
                // An empty tape is fine here: registry tests never
                // evaluate events, only schedule the single chunk.
                events: Vec::new(),
            },
            target_asns: vec![4, 6],
            injected: 3,
            store: Arc::new(Mutex::new(StreamStore::sized_for(events))),
        })
    }

    /// A unique per-test scratch directory (std-only; no tempfile crate).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bgpsim-jobs-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submit_chunk_finish() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        assert_eq!(job.wire_id(), "job-1");
        assert_eq!(registry.counts().queued, 1);
        let chunk = registry.next_chunk().unwrap();
        assert_eq!(chunk.job.id, job.id);
        assert_eq!((chunk.start, chunk.end), (0, 2));
        assert_eq!(registry.counts().running, 1);
        registry.finish_chunk(&chunk, &[1, 2], "bypass");
        assert_eq!(registry.counts().done, 1);
        let done = registry.get(1).unwrap();
        done.with_state(|s| match s {
            JobState::Done(output) => assert_eq!(output.counts, vec![1, 2]),
            other => panic!("expected done, got {}", other.name()),
        });
        assert!(registry.get(99).is_none());
        assert_eq!(registry.scheduler_stats().chunks_executed, 1);
    }

    #[test]
    fn chunks_round_robin_across_jobs() {
        let registry = JobRegistry::new(4).with_chunk_size(1);
        let a = registry.submit(spec_with_pool(2)).unwrap();
        let b = registry.submit(spec_with_pool(2)).unwrap();
        // Fair share: A, B, A, B — not A, A, B, B.
        let order: Vec<(u64, usize)> = (0..4)
            .map(|_| {
                let chunk = registry.next_chunk().unwrap();
                let key = (chunk.job.id, chunk.start);
                registry.finish_chunk(&chunk, &[0], "bypass");
                key
            })
            .collect();
        assert_eq!(order, vec![(a.id, 0), (b.id, 0), (a.id, 1), (b.id, 1)]);
        assert_eq!(registry.counts().done, 2);
    }

    #[test]
    fn interleaved_chunks_assemble_in_pool_order() {
        let registry = JobRegistry::new(4).with_chunk_size(2);
        registry.submit(spec_with_pool(5)).unwrap();
        let c1 = registry.next_chunk().unwrap();
        let c2 = registry.next_chunk().unwrap();
        let c3 = registry.next_chunk().unwrap();
        assert_eq!((c1.start, c2.start, c3.start), (0, 2, 4));
        // Finish out of order; assembly is positional.
        registry.finish_chunk(&c3, &[50], "hit");
        registry.finish_chunk(&c1, &[10, 20], "miss");
        assert_eq!(registry.counts().running, 1, "still one chunk out");
        registry.finish_chunk(&c2, &[30, 40], "hit");
        registry.get(1).unwrap().with_state(|s| match s {
            JobState::Done(output) => {
                assert_eq!(output.counts, vec![10, 20, 30, 40, 50]);
                // One missed chunk makes the whole sweep a miss.
                assert_eq!(output.cache, "miss");
            }
            other => panic!("expected done, got {}", other.name()),
        });
    }

    #[test]
    fn queue_bound_enforced() {
        let registry = JobRegistry::new(2);
        let a = registry.submit(spec()).unwrap();
        registry.submit(spec()).unwrap();
        assert_eq!(registry.submit(spec()).unwrap_err(), "job queue is full");
        // Dealing a chunk moves the job to `running`; it still occupies
        // its admission slot — only finishing frees one.
        let chunk = registry.next_chunk().unwrap();
        assert_eq!(chunk.job.id, a.id);
        assert_eq!(registry.submit(spec()).unwrap_err(), "job queue is full");
        // The default chunk width covers spec()'s whole 2-attacker pool,
        // so this one completion makes the job terminal and frees a slot.
        registry.finish_chunk(&chunk, &[1, 1], "bypass");
        assert!(a.with_state(JobState::is_terminal));
        registry.submit(spec()).unwrap();
    }

    #[test]
    fn cancel_queued_job_skips_execution() {
        let registry = JobRegistry::new(4);
        let a = registry.submit(spec()).unwrap();
        let b = registry.submit(spec()).unwrap();
        let cancelled = registry.cancel(a.id).unwrap();
        assert_eq!(cancelled.with_state(JobState::name), "cancelled");
        // The scheduler's next deal skips the cancelled job entirely.
        let chunk = registry.next_chunk().unwrap();
        assert_eq!(chunk.job.id, b.id);
    }

    #[test]
    fn cancel_with_chunk_in_flight_finalizes_when_it_drains() {
        // Regression: the scheduler drops a cancelled job with an
        // in-flight chunk off the ring without finalizing it, and the
        // job's pool is never fully dealt — it used to stay `running`
        // forever, permanently occupying an admission slot.
        let registry = JobRegistry::new(2).with_chunk_size(1);
        let doomed = registry.submit(spec_with_pool(3)).unwrap();
        let in_flight = registry.next_chunk().unwrap();
        registry.cancel(doomed.id).unwrap();
        assert_eq!(
            doomed.with_state(JobState::name),
            "running",
            "a chunk is still out; cancellation is deferred"
        );
        // The scheduler pops the cancelled job off the ring (and must not
        // deal it); a second job gives it something else to return.
        let other = registry.submit(spec()).unwrap();
        let chunk = registry.next_chunk().unwrap();
        assert_eq!(chunk.job.id, other.id);
        // The in-flight chunk drains — the job must finalize even though
        // its pool was never fully dealt.
        registry.finish_chunk(&in_flight, &[0], "bypass");
        assert_eq!(doomed.with_state(JobState::name), "cancelled");
        // And its admission slot is free again.
        registry.finish_chunk(&chunk, &[0], "bypass");
        registry.submit(spec()).unwrap();
    }

    #[test]
    fn cancelled_jobs_stay_cancelled() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        registry.cancel(job.id).unwrap();
        job.transition(JobState::Done(JobOutput {
            counts: Vec::new(),
            cache: "bypass",
            wall_ms: 0,
            stream: None,
        }));
        assert_eq!(job.with_state(JobState::name), "cancelled");
    }

    #[test]
    fn stream_job_is_one_chunk_with_event_progress() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(stream_spec(50)).unwrap();
        assert!(job.spec.as_stream().is_some());
        // The whole tape is a single schedulable unit...
        let chunk = registry.next_chunk().unwrap();
        assert_eq!((chunk.start, chunk.end), (0, 1));
        assert!(chunk.attackers().is_empty());
        assert_eq!(registry.counts().running, 1);
        // ...and nothing else of this job is ever dealt.
        let other = registry.submit(spec()).unwrap();
        let next = registry.next_chunk().unwrap();
        assert_eq!(next.job.id, other.id);
        // Per-event progress ticks the job atomics, not chunk accounting.
        chunk.job.completed.store(37, Ordering::Relaxed);
        registry.finish_stream_chunk(
            &chunk,
            StreamOutput {
                events: 50,
                injected: 3,
                detected: 2,
                mean_latency_events: Some(1.5),
                max_latency_events: Some(3),
            },
        );
        job.with_state(|s| match s {
            JobState::Done(output) => {
                assert!(output.counts.is_empty());
                let stream = output.stream.as_ref().expect("stream summary");
                assert_eq!(stream.detected, 2);
            }
            other => panic!("expected done, got {}", other.name()),
        });
    }

    #[test]
    fn cancelled_stream_job_discards_its_summary() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(stream_spec(50)).unwrap();
        let chunk = registry.next_chunk().unwrap();
        registry.cancel(job.id).unwrap();
        // The executor notices the flag mid-tape and reports what it had;
        // cancellation wins, matching sweep semantics.
        registry.finish_stream_chunk(
            &chunk,
            StreamOutput {
                events: 12,
                injected: 1,
                detected: 0,
                mean_latency_events: None,
                max_latency_events: None,
            },
        );
        assert_eq!(job.with_state(JobState::name), "cancelled");
    }

    #[test]
    fn stream_jobs_persist_summary_only_and_restore_terminal() {
        let dir = scratch_dir("stream");
        {
            let (registry, _) = JobRegistry::with_state_dir(4, Some(dir.clone()));
            let job = registry.submit(stream_spec(50)).unwrap();
            {
                let mut store = lock_recover(&job.spec.as_stream().unwrap().store);
                store.push("pollution", 0, 9.0);
            }
            let chunk = registry.next_chunk().unwrap();
            registry.finish_stream_chunk(
                &chunk,
                StreamOutput {
                    events: 50,
                    injected: 3,
                    detected: 0,
                    // No detections: the record must round-trip the
                    // nulls, not resurrect them as zeros.
                    mean_latency_events: None,
                    max_latency_events: None,
                },
            );
        }
        let (registry, report) = JobRegistry::with_state_dir(4, Some(dir.clone()));
        assert_eq!(report.restored, 1);
        let job = registry.get(1).expect("restored stream job answers");
        assert!(job.restored);
        let spec = job.spec.as_stream().expect("restored as a stream job");
        assert_eq!(spec.target_asns, vec![4, 6]);
        // Summary-only persistence: per-event samples are gone.
        assert_eq!(lock_recover(&spec.store).total_samples(), 0);
        job.with_state(|s| match s {
            JobState::Done(output) => {
                let stream = output.stream.as_ref().expect("stream summary");
                assert_eq!(stream.injected, 3);
                assert_eq!(stream.mean_latency_events, None);
                assert_eq!(stream.max_latency_events, None);
            }
            other => panic!("expected done, got {}", other.name()),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_chunk_fails_job_but_not_registry() {
        let registry = JobRegistry::new(4).with_chunk_size(1);
        let doomed = registry.submit(spec_with_pool(3)).unwrap();
        let chunk = registry.next_chunk().unwrap();
        registry.fail_chunk(&chunk, "executor panicked");
        assert_eq!(doomed.with_state(JobState::name), "failed");
        doomed.with_state(|s| match s {
            JobState::Failed(message) => assert!(message.contains("panicked")),
            other => panic!("expected failed, got {}", other.name()),
        });
        // The remaining pool is never dealt, and new jobs still run.
        let healthy = registry.submit(spec()).unwrap();
        let chunk = registry.next_chunk().unwrap();
        assert_eq!(chunk.job.id, healthy.id);
    }

    #[test]
    fn poisoned_job_state_recovers() {
        // Regression: a panic while holding the state lock used to poison
        // it, turning every later `/v1/jobs` request into a panic.
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        let poisoned = Arc::clone(&job);
        let _ = std::thread::spawn(move || {
            poisoned.with_state(|_| panic!("induced executor panic"));
        })
        .join();
        // Every state-touching path still answers.
        assert_eq!(job.with_state(JobState::name), "queued");
        assert_eq!(registry.counts().queued, 1);
        let after = registry.submit(spec()).unwrap();
        assert_eq!(after.id, job.id + 1);
        let chunk = registry.next_chunk().unwrap();
        registry.finish_chunk(&chunk, &[1, 2], "bypass");
    }

    #[test]
    fn close_drains_and_fails_queued() {
        let registry = JobRegistry::new(4);
        let job = registry.submit(spec()).unwrap();
        registry.close();
        assert!(registry.next_chunk().is_none());
        assert_eq!(job.with_state(JobState::name), "failed");
        assert!(registry.submit(spec()).is_err());
    }

    #[test]
    fn terminal_jobs_survive_restart() {
        let dir = scratch_dir("restart");
        let counts;
        {
            let (registry, report) = JobRegistry::with_state_dir(4, Some(dir.clone()));
            assert_eq!(report, RestoreReport::default());
            registry.submit(spec()).unwrap();
            let chunk = registry.next_chunk().unwrap();
            registry.finish_chunk(&chunk, &[7, 9], "miss");
            counts = vec![7, 9];
            assert_eq!(registry.scheduler_stats().jobs_persisted, 1);
        }
        let (registry, report) = JobRegistry::with_state_dir(4, Some(dir.clone()));
        assert_eq!(report.restored, 1);
        assert_eq!(report.quarantined, 0);
        let job = registry.get(1).expect("restored job answers by id");
        assert!(job.restored);
        job.with_state(|s| match s {
            JobState::Done(output) => {
                assert_eq!(output.counts, counts);
                assert_eq!(output.cache, "miss");
            }
            other => panic!("expected done, got {}", other.name()),
        });
        // Ids keep growing past the restored ones.
        let fresh = registry.submit(spec()).unwrap();
        assert_eq!(fresh.id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_state_files_are_quarantined() {
        let dir = scratch_dir("quarantine");
        std::fs::write(dir.join("job-3.json"), "{not json at all").unwrap();
        std::fs::write(dir.join("job-4.json"), "{\"id\":4,\"state\":\"running\"}").unwrap();
        let (registry, report) = JobRegistry::with_state_dir(4, Some(dir.clone()));
        assert_eq!(report.restored, 0);
        assert_eq!(report.quarantined, 2);
        assert!(registry.get(3).is_none());
        assert!(dir.join("quarantine/job-3.json").exists());
        assert!(dir.join("quarantine/job-4.json").exists());
        assert!(!dir.join("job-3.json").exists());
        // The registry still works — corrupt files cost nothing but a move.
        registry.submit(spec()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_and_failed_jobs_persist_too() {
        let dir = scratch_dir("terminal");
        {
            let (registry, _) = JobRegistry::with_state_dir(4, Some(dir.clone()));
            let a = registry.submit(spec()).unwrap();
            registry.cancel(a.id).unwrap();
            registry.submit(spec()).unwrap();
            let chunk = registry.next_chunk().unwrap();
            registry.fail_chunk(&chunk, "induced");
        }
        let (registry, report) = JobRegistry::with_state_dir(4, Some(dir.clone()));
        assert_eq!(report.restored, 2);
        assert_eq!(
            registry.get(1).unwrap().with_state(JobState::name),
            "cancelled"
        );
        registry.get(2).unwrap().with_state(|s| match s {
            JobState::Failed(message) => assert_eq!(message, "induced"),
            other => panic!("expected failed, got {}", other.name()),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
