//! Server-side counters and the Prometheus text exposition.
//!
//! Two counter banks feed `GET /v1/metrics`:
//!
//! * [`ServerMetrics`] (this module): HTTP-layer counters — requests and
//!   status classes per endpoint, per-endpoint latency histograms,
//!   connection accounting, queue depth.
//! * [`bgpsim_hijack::SweepTelemetry`] (shared with the CLI): simulation
//!   counters — dispatch per engine, messages, cones, per-attack wall
//!   times.
//!
//! Latency histograms reuse the sweep telemetry's log₂ bucketing
//! ([`wall_bucket`], microseconds) so client-observed and engine-observed
//! latencies line up bucket-for-bucket; the exposition converts the bank
//! to Prometheus' cumulative `le` form.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bgpsim_fanout::FanoutStats;
use bgpsim_hijack::{wall_bucket, TelemetrySnapshot, WALL_HIST_BUCKETS};

use crate::cache::CacheStats;
use crate::jobs::{JobCounts, SchedulerStats};

/// The routable endpoints, for per-endpoint labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/attacks`.
    Attacks,
    /// `POST /v1/attacks:batch`.
    AttacksBatch,
    /// `POST /v1/sweeps`.
    Sweeps,
    /// `GET|DELETE /v1/jobs/:id`.
    Jobs,
    /// `GET /v1/results/:id`.
    Results,
    /// `POST /v1/stream` and `GET /v1/stream/:id/range`.
    Stream,
    /// `GET /v1/healthz`.
    Healthz,
    /// `GET /v1/metrics`.
    Metrics,
    /// `POST /v1/shutdown`.
    Shutdown,
    /// Anything else (404s, bad methods, parse failures).
    Other,
}

impl Endpoint {
    /// Every endpoint, exposition order.
    pub const ALL: [Endpoint; 10] = [
        Endpoint::Attacks,
        Endpoint::AttacksBatch,
        Endpoint::Sweeps,
        Endpoint::Jobs,
        Endpoint::Results,
        Endpoint::Stream,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Attacks => "attacks",
            Endpoint::AttacksBatch => "attacks_batch",
            Endpoint::Sweeps => "sweeps",
            Endpoint::Jobs => "jobs",
            Endpoint::Results => "results",
            Endpoint::Stream => "stream",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Attacks => 0,
            Endpoint::AttacksBatch => 1,
            Endpoint::Sweeps => 2,
            Endpoint::Jobs => 3,
            Endpoint::Results => 4,
            Endpoint::Stream => 5,
            Endpoint::Healthz => 6,
            Endpoint::Metrics => 7,
            Endpoint::Shutdown => 8,
            Endpoint::Other => 9,
        }
    }
}

/// Per-endpoint request accounting.
#[derive(Debug, Default)]
struct EndpointStats {
    requests: AtomicU64,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    latency_hist: [AtomicU64; WALL_HIST_BUCKETS],
    latency_sum_us: AtomicU64,
}

/// HTTP-layer counter bank, shared read-mostly across worker threads.
#[derive(Debug)]
pub struct ServerMetrics {
    endpoints: [EndpointStats; 10],
    connections: AtomicU64,
    rejected_connections: AtomicU64,
    malformed_requests: AtomicU64,
    in_flight: AtomicU64,
    // Signed: the increment (acceptor thread) and decrement (worker
    // claiming the connection) race, so the raw value can transiently dip
    // below zero. An unsigned gauge would wrap to ~2^64 at that moment.
    queue_depth: AtomicI64,
    // Stream-job activity: events the executor processed (ticked live,
    // so /v1/metrics shows mid-stream progress) and per-run outcomes.
    stream_events: AtomicU64,
    stream_runs: AtomicU64,
    stream_injected: AtomicU64,
    stream_detected: AtomicU64,
    started: Instant,
}

impl ServerMetrics {
    /// A zeroed bank; `started` anchors the uptime gauge.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            malformed_requests: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            stream_events: AtomicU64::new(0),
            stream_runs: AtomicU64::new(0),
            stream_injected: AtomicU64::new(0),
            stream_detected: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Counts one stream event processed by the executor.
    pub fn stream_event(&self) {
        self.stream_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished (or cancelled) stream run's detection outcome.
    pub fn stream_finished(&self, injected: u64, detected: u64) {
        self.stream_runs.fetch_add(1, Ordering::Relaxed);
        self.stream_injected.fetch_add(injected, Ordering::Relaxed);
        self.stream_detected.fetch_add(detected, Ordering::Relaxed);
    }

    /// Counts one accepted connection.
    pub fn connection_accepted(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection turned away with 503 (queue full).
    pub fn connection_rejected(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one unframable request (parse error, oversized head/body).
    pub fn malformed_request(&self) {
        self.malformed_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Adjusts the accepted-but-unclaimed connection gauge.
    pub fn queue_changed(&self, delta: i64) {
        self.queue_depth.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current queue depth, clamped at zero: a decrement racing ahead of
    /// its increment reads as empty, never as ~2^64 pending connections.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Marks a request entering a handler; the guard decrements on drop.
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Records one handled request.
    pub fn observe(&self, endpoint: Endpoint, status: u16, wall: Duration) {
        let stats = &self.endpoints[endpoint.index()];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &stats.status_2xx,
            400..=499 => &stats.status_4xx,
            _ => &stats.status_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        stats.latency_hist[wall_bucket(us)].fetch_add(1, Ordering::Relaxed);
        stats.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Seconds since the bank was created (server start).
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

/// Decrements the in-flight gauge when a handler exits (however it
/// exits).
pub struct InFlightGuard<'a> {
    metrics: &'a ServerMetrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Renders the full Prometheus text exposition: HTTP counters, baseline
/// cache, job states, and the shared simulation telemetry.
pub fn render_prometheus(
    metrics: &ServerMetrics,
    cache: &CacheStats,
    jobs: &JobCounts,
    scheduler: &SchedulerStats,
    telemetry: &TelemetrySnapshot,
) -> String {
    let mut out = String::with_capacity(8 * 1024);
    let line = |out: &mut String, name: &str, labels: &str, value: u64| {
        if labels.is_empty() {
            out.push_str(&format!("{name} {value}\n"));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    };
    let header = |out: &mut String, name: &str, kind: &str, help: &str| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    };

    // -- HTTP layer ------------------------------------------------------
    header(
        &mut out,
        "bgpsim_http_requests_total",
        "counter",
        "Handled requests by endpoint and status class.",
    );
    for endpoint in Endpoint::ALL {
        let stats = &metrics.endpoints[endpoint.index()];
        if stats.requests.load(Ordering::Relaxed) == 0 {
            continue;
        }
        for (class, counter) in [
            ("2xx", &stats.status_2xx),
            ("4xx", &stats.status_4xx),
            ("5xx", &stats.status_5xx),
        ] {
            let value = counter.load(Ordering::Relaxed);
            if value > 0 {
                line(
                    &mut out,
                    "bgpsim_http_requests_total",
                    &format!("endpoint=\"{}\",code=\"{class}\"", endpoint.label()),
                    value,
                );
            }
        }
    }
    header(
        &mut out,
        "bgpsim_http_request_duration_us",
        "histogram",
        "Request handling latency by endpoint, log2 buckets (microseconds).",
    );
    for endpoint in Endpoint::ALL {
        let stats = &metrics.endpoints[endpoint.index()];
        let count = stats.requests.load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        let ep = endpoint.label();
        let mut cumulative = 0u64;
        for (i, bucket) in stats.latency_hist.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            // Bucket i counts requests below 2^i µs, so le="2^i".
            if i + 1 < WALL_HIST_BUCKETS {
                line(
                    &mut out,
                    "bgpsim_http_request_duration_us_bucket",
                    &format!("endpoint=\"{ep}\",le=\"{}\"", 1u64 << i),
                    cumulative,
                );
            }
        }
        line(
            &mut out,
            "bgpsim_http_request_duration_us_bucket",
            &format!("endpoint=\"{ep}\",le=\"+Inf\""),
            cumulative,
        );
        line(
            &mut out,
            "bgpsim_http_request_duration_us_sum",
            &format!("endpoint=\"{ep}\""),
            stats.latency_sum_us.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "bgpsim_http_request_duration_us_count",
            &format!("endpoint=\"{ep}\""),
            count,
        );
    }
    for (name, help, value) in [
        (
            "bgpsim_http_connections_total",
            "Connections accepted.",
            metrics.connections.load(Ordering::Relaxed),
        ),
        (
            "bgpsim_http_rejected_connections_total",
            "Connections turned away with 503 (worker queue full).",
            metrics.rejected_connections.load(Ordering::Relaxed),
        ),
        (
            "bgpsim_http_malformed_requests_total",
            "Requests that could not be framed.",
            metrics.malformed_requests.load(Ordering::Relaxed),
        ),
    ] {
        header(&mut out, name, "counter", help);
        line(&mut out, name, "", value);
    }
    for (name, help, value) in [
        (
            "bgpsim_http_in_flight",
            "Requests currently inside a handler.",
            metrics.in_flight.load(Ordering::Relaxed),
        ),
        (
            "bgpsim_http_queue_depth",
            "Accepted connections waiting for a worker.",
            metrics.queue_depth(),
        ),
        (
            "bgpsim_uptime_seconds",
            "Seconds since the server started.",
            metrics.uptime().as_secs(),
        ),
    ] {
        header(&mut out, name, "gauge", help);
        line(&mut out, name, "", value);
    }

    // -- Baseline cache --------------------------------------------------
    header(
        &mut out,
        "bgpsim_baseline_cache_lookups_total",
        "counter",
        "Baseline cache lookups by outcome (hit, miss, coalesced with an in-flight build).",
    );
    for (outcome, value) in [
        ("hit", cache.hits),
        ("miss", cache.misses),
        ("coalesced", cache.coalesced),
    ] {
        line(
            &mut out,
            "bgpsim_baseline_cache_lookups_total",
            &format!("outcome=\"{outcome}\""),
            value,
        );
    }
    header(
        &mut out,
        "bgpsim_baseline_cache_evictions_total",
        "counter",
        "Baselines evicted by the LRU bound.",
    );
    line(
        &mut out,
        "bgpsim_baseline_cache_evictions_total",
        "",
        cache.evictions,
    );
    header(
        &mut out,
        "bgpsim_baseline_cache_entries",
        "gauge",
        "Baselines currently resident (including in-flight builds).",
    );
    line(
        &mut out,
        "bgpsim_baseline_cache_entries",
        "",
        cache.entries as u64,
    );
    header(
        &mut out,
        "bgpsim_baseline_cache_bytes",
        "gauge",
        "Summed heap bytes of resident ready baselines.",
    );
    line(&mut out, "bgpsim_baseline_cache_bytes", "", cache.bytes);

    // -- Jobs ------------------------------------------------------------
    header(
        &mut out,
        "bgpsim_jobs",
        "gauge",
        "Retained sweep jobs by state.",
    );
    for (state, value) in [
        ("queued", jobs.queued),
        ("running", jobs.running),
        ("done", jobs.done),
        ("cancelled", jobs.cancelled),
        ("failed", jobs.failed),
    ] {
        line(
            &mut out,
            "bgpsim_jobs",
            &format!("state=\"{state}\""),
            value as u64,
        );
    }
    for (name, help, value) in [
        (
            "bgpsim_jobs_chunks_total",
            "Sweep chunks executed by the fair-share scheduler.",
            scheduler.chunks_executed,
        ),
        (
            "bgpsim_jobs_persisted_total",
            "Terminal job records written to the state directory.",
            scheduler.jobs_persisted,
        ),
        (
            "bgpsim_jobs_restored_total",
            "Job records reloaded from the state directory at boot.",
            scheduler.jobs_restored,
        ),
        (
            "bgpsim_state_files_quarantined_total",
            "Unreadable state files moved to quarantine/ at boot.",
            scheduler.files_quarantined,
        ),
    ] {
        header(&mut out, name, "counter", help);
        line(&mut out, name, "", value);
    }

    // -- Update streams --------------------------------------------------
    for (name, help, value) in [
        (
            "bgpsim_stream_events_total",
            "Update-stream events processed by the executor (ticks live mid-stream).",
            metrics.stream_events.load(Ordering::Relaxed),
        ),
        (
            "bgpsim_stream_runs_total",
            "Stream jobs executed to completion or cancellation.",
            metrics.stream_runs.load(Ordering::Relaxed),
        ),
        (
            "bgpsim_stream_hijacks_injected_total",
            "Ground-truth hijacks injected across stream runs.",
            metrics.stream_injected.load(Ordering::Relaxed),
        ),
        (
            "bgpsim_stream_hijacks_detected_total",
            "Injected hijacks some probe eventually saw.",
            metrics.stream_detected.load(Ordering::Relaxed),
        ),
    ] {
        header(&mut out, name, "counter", help);
        line(&mut out, name, "", value);
    }

    // -- Simulation telemetry (shared bank with the CLI) -----------------
    header(
        &mut out,
        "bgpsim_sim_dispatch_total",
        "counter",
        "Attacks dispatched, by engine.",
    );
    for (engine, value) in [
        ("stable", telemetry.stable_dispatches),
        ("race", telemetry.race_dispatches),
        ("scratch", telemetry.scratch_dispatches),
        ("delta", telemetry.delta_dispatches),
    ] {
        line(
            &mut out,
            "bgpsim_sim_dispatch_total",
            &format!("engine=\"{engine}\""),
            value,
        );
    }
    for (name, help, value) in [
        (
            "bgpsim_sim_attacks_total",
            "Attacks simulated.",
            telemetry.attacks,
        ),
        (
            "bgpsim_sim_attacks_skipped_total",
            "Attacks skipped after a cancellation.",
            telemetry.skipped,
        ),
        (
            "bgpsim_sim_baselines_built_total",
            "Shared target baselines constructed.",
            telemetry.baselines_built,
        ),
        (
            "bgpsim_sim_baseline_bytes_total",
            "Summed heap bytes of every baseline built.",
            telemetry.baseline_bytes,
        ),
        (
            "bgpsim_sim_engine_runs_total",
            "Engine re-convergences observed.",
            telemetry.engine.runs,
        ),
        (
            "bgpsim_sim_engine_messages_total",
            "Route announcements processed.",
            telemetry.engine.messages,
        ),
        (
            "bgpsim_sim_cone_sum_total",
            "Summed contamination-cone sizes over delta dispatches.",
            telemetry.cone_sum,
        ),
    ] {
        header(&mut out, name, "counter", help);
        line(&mut out, name, "", value);
    }
    header(
        &mut out,
        "bgpsim_sim_cone_max",
        "gauge",
        "Largest contamination cone seen in a delta dispatch.",
    );
    line(&mut out, "bgpsim_sim_cone_max", "", telemetry.cone_max);
    header(
        &mut out,
        "bgpsim_sim_baseline_bytes_peak",
        "gauge",
        "Largest single baseline heap footprint built so far.",
    );
    line(
        &mut out,
        "bgpsim_sim_baseline_bytes_peak",
        "",
        telemetry.baseline_bytes_peak,
    );
    header(
        &mut out,
        "bgpsim_sim_attack_duration_us",
        "histogram",
        "Per-attack wall time, log2 buckets (microseconds).",
    );
    let mut cumulative = 0u64;
    for (i, &bucket) in telemetry.wall_hist.iter().enumerate() {
        cumulative += bucket;
        if i + 1 < WALL_HIST_BUCKETS {
            line(
                &mut out,
                "bgpsim_sim_attack_duration_us_bucket",
                &format!("le=\"{}\"", 1u64 << i),
                cumulative,
            );
        }
    }
    line(
        &mut out,
        "bgpsim_sim_attack_duration_us_bucket",
        "le=\"+Inf\"",
        cumulative,
    );
    line(
        &mut out,
        "bgpsim_sim_attack_duration_us_count",
        "",
        cumulative,
    );
    out
}

/// Renders the coordinator's fan-out section, appended to the main
/// exposition when the server was booted with `--fanout-workers`.
pub fn render_fanout(stats: &FanoutStats) -> String {
    let mut out = String::with_capacity(2 * 1024);
    let line = |out: &mut String, name: &str, labels: &str, value: u64| {
        if labels.is_empty() {
            out.push_str(&format!("{name} {value}\n"));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    };
    let header = |out: &mut String, name: &str, kind: &str, help: &str| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    };

    header(
        &mut out,
        "bgpsim_fanout_workers",
        "gauge",
        "Registered fan-out workers by state (rejected = failed the boot handshake).",
    );
    let alive = stats.workers.iter().filter(|w| w.alive).count() as u64;
    for (state, value) in [
        ("alive", alive),
        ("dead", stats.workers.len() as u64 - alive),
        ("rejected", stats.rejected.len() as u64),
    ] {
        line(
            &mut out,
            "bgpsim_fanout_workers",
            &format!("state=\"{state}\""),
            value,
        );
    }
    header(
        &mut out,
        "bgpsim_fanout_shards_total",
        "counter",
        "Shards by outcome across all fanned-out sweeps (planned, done, retried, hedged).",
    );
    for (outcome, value) in [
        ("planned", stats.shards_total),
        ("done", stats.shards_done),
        ("retried", stats.shards_retried),
        ("hedged", stats.shards_hedged),
    ] {
        line(
            &mut out,
            "bgpsim_fanout_shards_total",
            &format!("outcome=\"{outcome}\""),
            value,
        );
    }
    header(
        &mut out,
        "bgpsim_fanout_worker_shards_total",
        "counter",
        "Per-worker shard dispatch accounting.",
    );
    for worker in &stats.workers {
        for (outcome, value) in [
            ("dispatched", worker.shards_dispatched),
            ("completed", worker.shards_completed),
            ("failed", worker.failures),
        ] {
            line(
                &mut out,
                "bgpsim_fanout_worker_shards_total",
                &format!("worker=\"{}\",outcome=\"{outcome}\"", worker.addr),
                value,
            );
        }
    }
    header(
        &mut out,
        "bgpsim_fanout_shard_duration_us",
        "histogram",
        "Per-worker successful shard round-trip wall time, log2 buckets (microseconds).",
    );
    for worker in &stats.workers {
        if worker.shards_completed == 0 {
            continue;
        }
        let mut cumulative = 0u64;
        for (i, &bucket) in worker.wall_hist.iter().enumerate() {
            cumulative += bucket;
            if i + 1 < WALL_HIST_BUCKETS {
                line(
                    &mut out,
                    "bgpsim_fanout_shard_duration_us_bucket",
                    &format!("worker=\"{}\",le=\"{}\"", worker.addr, 1u64 << i),
                    cumulative,
                );
            }
        }
        line(
            &mut out,
            "bgpsim_fanout_shard_duration_us_bucket",
            &format!("worker=\"{}\",le=\"+Inf\"", worker.addr),
            cumulative,
        );
        line(
            &mut out,
            "bgpsim_fanout_shard_duration_us_sum",
            &format!("worker=\"{}\"", worker.addr),
            worker.wall_us_sum,
        );
        line(
            &mut out,
            "bgpsim_fanout_shard_duration_us_count",
            &format!("worker=\"{}\"", worker.addr),
            cumulative,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_hijack::SweepTelemetry;

    #[test]
    fn observe_classifies_and_buckets() {
        let metrics = ServerMetrics::new();
        metrics.observe(Endpoint::Attacks, 200, Duration::from_micros(3));
        metrics.observe(Endpoint::Attacks, 422, Duration::from_micros(900));
        metrics.observe(Endpoint::Other, 500, Duration::from_micros(1));
        let stats = &metrics.endpoints[Endpoint::Attacks.index()];
        assert_eq!(stats.requests.load(Ordering::Relaxed), 2);
        assert_eq!(stats.status_2xx.load(Ordering::Relaxed), 1);
        assert_eq!(stats.status_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(stats.latency_sum_us.load(Ordering::Relaxed), 903);
        assert_eq!(
            stats.latency_hist[wall_bucket(3)].load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn queue_gauge_never_underflows() {
        let metrics = ServerMetrics::new();
        // A decrement observed before its matching increment (the acceptor
        // and worker threads race) must read as empty, not ~2^64.
        metrics.queue_changed(-1);
        assert_eq!(metrics.queue_depth(), 0);
        // The raw value is still -1, so the late increment rebalances to
        // exactly zero instead of sticking at a phantom +1.
        metrics.queue_changed(1);
        assert_eq!(metrics.queue_depth(), 0);
        metrics.queue_changed(3);
        metrics.queue_changed(-1);
        assert_eq!(metrics.queue_depth(), 2);
    }

    #[test]
    fn in_flight_guard_balances() {
        let metrics = ServerMetrics::new();
        {
            let _a = metrics.begin_request();
            let _b = metrics.begin_request();
            assert_eq!(metrics.in_flight.load(Ordering::Relaxed), 2);
        }
        assert_eq!(metrics.in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn exposition_is_wellformed() {
        let metrics = ServerMetrics::new();
        metrics.observe(Endpoint::Attacks, 200, Duration::from_micros(5));
        metrics.connection_accepted();
        let telemetry = SweepTelemetry::new();
        telemetry.record_attack_wall(Duration::from_micros(5));
        let text = render_prometheus(
            &metrics,
            &CacheStats {
                hits: 2,
                misses: 1,
                coalesced: 3,
                evictions: 0,
                entries: 1,
                bytes: 4096,
            },
            &JobCounts::default(),
            &SchedulerStats {
                chunks_executed: 4,
                jobs_persisted: 2,
                jobs_restored: 1,
                files_quarantined: 0,
            },
            &telemetry.snapshot(),
        );
        // Every non-comment line is `name{labels} value` or `name value`.
        for l in text.lines() {
            if l.starts_with('#') {
                continue;
            }
            let (metric, value) = l.rsplit_once(' ').expect("metric line has a value");
            assert!(!metric.is_empty());
            assert!(
                value.parse::<u64>().is_ok() || value == "+Inf",
                "unparseable value in line {l:?}"
            );
        }
        assert!(text.contains("bgpsim_http_requests_total{endpoint=\"attacks\",code=\"2xx\"} 1"));
        assert!(text.contains("bgpsim_baseline_cache_lookups_total{outcome=\"coalesced\"} 3"));
        assert!(text.contains("bgpsim_baseline_cache_bytes 4096"));
        assert!(text.contains(
            "bgpsim_http_request_duration_us_bucket{endpoint=\"attacks\",le=\"+Inf\"} 1"
        ));
        assert!(text.contains("bgpsim_sim_attack_duration_us_count 1"));
        assert!(text.contains("bgpsim_jobs_chunks_total 4"));
        assert!(text.contains("bgpsim_jobs_restored_total 1"));
        // Cumulative le buckets are monotone.
        let mut last = 0u64;
        for l in text.lines() {
            if l.starts_with("bgpsim_sim_attack_duration_us_bucket") {
                let v: u64 = l.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(v >= last);
                last = v;
            }
        }
    }
}
