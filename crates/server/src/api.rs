//! Endpoint handlers: JSON in, JSON out.
//!
//! The wire schema addresses ASes by **ASN** (the generated topology's
//! stable ids), never by internal index; handlers resolve ASNs through
//! [`bgpsim_topology::Topology::index_of`] and answer 422 for unknown
//! ones. Request bodies parse through the manifest crate's
//! [`Json::parse`] (the same bidirectional JSON the run manifests use),
//! so server documents and CLI manifests share one dialect.
//!
//! See `DESIGN.md` §13 for the full endpoint schema and the
//! byte-identity contract: the `result` sub-object of every response is a
//! pure function of (topology, attack, defense) — engine choice and
//! cache state only ever show up under `meta`.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bgpsim_core::manifest::{Json, SCHEMA_VERSION};
use bgpsim_core::stream::{StreamConfig, StreamPlan, StreamStore};
use bgpsim_hijack::{
    Attack, AttackKind, AttackOutcome, Defense, Dispatch, SweepMonitor, SweepTelemetry,
};
use bgpsim_routing::{
    Announcement, Baseline, ConvergenceStats, DeltaWorkspace, Observer, RaceWorkspace, Workspace,
};
use bgpsim_topology::{AsId, AsIndex, Topology};
use rayon::prelude::*;

use crate::cache::{defense_fingerprint, BaselineKey};
use crate::http::{Request, Response};
use crate::jobs::{JobSpec, JobState, StreamSpec, SweepSpec, ETA_UNKNOWN};
use crate::metrics::{render_prometheus, Endpoint};
use crate::{ServerState, WorkerCtx};

/// Attacker ASNs advertised in `/v1/healthz` for load generators.
const SAMPLE_ATTACKERS: usize = 64;

/// Most jobs rendered by `GET /v1/jobs` (newest first); the registry
/// retains more, but an enumeration response stays bounded.
const MAX_LISTED_JOBS: usize = 100;

/// Longest accepted idempotency key — keys are retained verbatim, so an
/// unbounded key would be a memory lever.
const MAX_IDEMPOTENCY_KEY_LEN: usize = 256;

/// Largest accepted `POST /v1/attacks:batch` batch. Big enough for a
/// whole transit-pool what-if in one request, small enough that a single
/// request cannot pin the rayon pool for minutes.
pub const MAX_BATCH_ATTACKS: usize = 4096;

/// Largest accepted `POST /v1/stream` event count. One event is one
/// detector pass; 100k events at quick scale is under a minute of
/// executor time, so a single stream cannot monopolize the job ring.
pub const MAX_STREAM_EVENTS: usize = 100_000;

/// Largest integer JSON can carry without silent precision loss
/// (IEEE-754 doubles are exact up to 2^53).
const JSON_SAFE_MAX: u64 = 1 << 53;

/// A `u64` as a JSON number, clamped to the JSON-safe integer range so
/// large values degrade to a saturated bound instead of silently rounding
/// to a nearby representable double.
fn json_u64(value: u64) -> Json {
    Json::Num(value.min(JSON_SAFE_MAX) as f64)
}

/// An error response in the making.
#[derive(Debug)]
struct ApiError {
    status: u16,
    message: String,
}

impl ApiError {
    fn new(status: u16, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            message: message.into(),
        }
    }
}

fn error_body(message: &str) -> String {
    let mut body = Json::obj([("error", Json::str(message))]).render_compact();
    body.push('\n');
    body
}

fn json_response(status: u16, json: &Json) -> Response {
    let mut body = json.render_compact();
    body.push('\n');
    Response::json(status, body)
}

/// Routes one framed request to its handler; the endpoint tag feeds the
/// per-endpoint metrics.
pub(crate) fn dispatch(
    state: &ServerState<'_>,
    request: &Request,
    ctx: &mut WorkerCtx,
) -> (Endpoint, Response) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    let (endpoint, result) = match segments.as_slice() {
        ["v1", "healthz"] => (
            Endpoint::Healthz,
            expect_method(method, "GET").and_then(|()| handle_healthz(state)),
        ),
        ["v1", "metrics"] | ["metrics"] => (
            Endpoint::Metrics,
            expect_method(method, "GET").map(|()| handle_metrics(state)),
        ),
        ["v1", "attacks"] => (
            Endpoint::Attacks,
            expect_method(method, "POST").and_then(|()| handle_attack(state, request, ctx)),
        ),
        // One path segment: ':' is not a separator, so the whole
        // `attacks:batch` token arrives intact.
        ["v1", "attacks:batch"] => (
            Endpoint::AttacksBatch,
            expect_method(method, "POST").and_then(|()| handle_attack_batch(state, request)),
        ),
        ["v1", "sweeps"] => (
            Endpoint::Sweeps,
            expect_method(method, "POST").and_then(|()| handle_sweep_submit(state, request)),
        ),
        ["v1", "stream"] => (
            Endpoint::Stream,
            expect_method(method, "POST").and_then(|()| handle_stream_submit(state, request)),
        ),
        ["v1", "stream", id, "range"] => (
            Endpoint::Stream,
            expect_method(method, "GET").and_then(|()| handle_stream_range(state, id, request)),
        ),
        ["v1", "jobs"] => (
            Endpoint::Jobs,
            expect_method(method, "GET").and_then(|()| handle_jobs_list(state)),
        ),
        ["v1", "jobs", id] => (
            Endpoint::Jobs,
            match method {
                "GET" => handle_job_get(state, id),
                "DELETE" => handle_job_cancel(state, id),
                _ => Err(ApiError::new(
                    405,
                    format!("{method} not supported here (use GET or DELETE)"),
                )),
            },
        ),
        ["v1", "results", id] => (
            Endpoint::Results,
            expect_method(method, "GET").and_then(|()| handle_results(state, id)),
        ),
        ["v1", "shutdown"] => (
            Endpoint::Shutdown,
            expect_method(method, "POST").map(|()| handle_shutdown(state)),
        ),
        _ => (
            Endpoint::Other,
            Err(ApiError::new(
                404,
                format!("no route for {:?}", request.path),
            )),
        ),
    };
    let response = match result {
        Ok(response) => response,
        Err(e) => Response::json(e.status, error_body(&e.message)),
    };
    (endpoint, response)
}

fn expect_method(method: &str, want: &str) -> Result<(), ApiError> {
    if method == want {
        Ok(())
    } else {
        Err(ApiError::new(
            405,
            format!("{method} not supported here (use {want})"),
        ))
    }
}

// ---------------------------------------------------------------------------
// JSON plumbing

fn parse_body(request: &Request) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(ApiError::new(400, "request body is empty (expected JSON)"));
    }
    Json::parse(text).map_err(|e| ApiError::new(400, e.to_string()))
}

fn get<'a>(json: &'a Json, key: &str) -> Option<&'a Json> {
    match json {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u32(json: &Json) -> Option<u32> {
    match json {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= f64::from(u32::MAX) => {
            Some(*n as u32)
        }
        _ => None,
    }
}

fn require_asn(json: &Json, key: &str) -> Result<u32, ApiError> {
    get(json, key)
        .ok_or_else(|| ApiError::new(422, format!("missing required field {key:?}")))
        .and_then(|v| {
            as_u32(v).ok_or_else(|| {
                ApiError::new(422, format!("field {key:?} must be a non-negative ASN"))
            })
        })
}

fn resolve(topo: &Topology, asn: u32) -> Result<AsIndex, ApiError> {
    topo.index_of(AsId::new(asn))
        .ok_or_else(|| ApiError::new(422, format!("unknown ASN {asn}")))
}

fn parse_kind(json: &Json) -> Result<AttackKind, ApiError> {
    match get(json, "kind") {
        None => Ok(AttackKind::OriginHijack),
        Some(Json::Str(s)) => match s.as_str() {
            "origin" => Ok(AttackKind::OriginHijack),
            "sub_prefix" => Ok(AttackKind::SubPrefixHijack),
            "forged_origin" => Ok(AttackKind::ForgedOriginHijack),
            other => Err(ApiError::new(
                422,
                format!(
                    "unknown attack kind {other:?}: valid kinds are \"origin\", \
                     \"sub_prefix\", \"forged_origin\""
                ),
            )),
        },
        Some(_) => Err(ApiError::new(422, "field \"kind\" must be a string")),
    }
}

fn kind_name(kind: AttackKind) -> &'static str {
    match kind {
        AttackKind::OriginHijack => "origin",
        AttackKind::SubPrefixHijack => "sub_prefix",
        AttackKind::ForgedOriginHijack => "forged_origin",
    }
}

/// Parsed defense: the owned deployment plus its canonical (sorted,
/// deduplicated) ASN form and cache fingerprint.
struct ParsedDefense {
    defense: Defense,
    validator_asns: Vec<u32>,
    stub_defense: bool,
    fingerprint: u64,
}

fn parse_defense(topo: &Topology, json: &Json) -> Result<ParsedDefense, ApiError> {
    let spec = match get(json, "defense") {
        None | Some(Json::Null) => {
            return Ok(ParsedDefense {
                defense: Defense::none(),
                validator_asns: Vec::new(),
                stub_defense: false,
                fingerprint: defense_fingerprint(&[], false),
            })
        }
        Some(spec @ Json::Obj(_)) => spec,
        Some(_) => return Err(ApiError::new(422, "field \"defense\" must be an object")),
    };
    let mut validator_asns: Vec<u32> = match get(spec, "validators") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| {
                as_u32(item).ok_or_else(|| {
                    ApiError::new(422, "\"defense.validators\" entries must be ASNs")
                })
            })
            .collect::<Result<_, _>>()?,
        Some(_) => {
            return Err(ApiError::new(
                422,
                "\"defense.validators\" must be an array of ASNs",
            ))
        }
    };
    validator_asns.sort_unstable();
    validator_asns.dedup();
    let stub_defense = match get(spec, "stub_defense") {
        None | Some(Json::Null) => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => {
            return Err(ApiError::new(
                422,
                "\"defense.stub_defense\" must be a bool",
            ))
        }
    };
    let validators: Vec<AsIndex> = validator_asns
        .iter()
        .map(|&asn| resolve(topo, asn))
        .collect::<Result<_, _>>()?;
    let mut defense = if validators.is_empty() {
        Defense::none()
    } else {
        Defense::validators(topo, validators)
    };
    if stub_defense {
        defense = defense.with_stub_defense();
    }
    let fingerprint = defense_fingerprint(&validator_asns, stub_defense);
    Ok(ParsedDefense {
        defense,
        validator_asns,
        stub_defense,
        fingerprint,
    })
}

fn defense_json(parsed_validators: &[u32], stub_defense: bool) -> Json {
    Json::obj([
        (
            "validators",
            Json::Arr(
                parsed_validators
                    .iter()
                    .map(|&v| Json::Num(f64::from(v)))
                    .collect(),
            ),
        ),
        ("stub_defense", Json::Bool(stub_defense)),
    ])
}

fn asn_array(topo: &Topology, indices: impl IntoIterator<Item = AsIndex>) -> Json {
    Json::Arr(
        indices
            .into_iter()
            .map(|ix| Json::Num(f64::from(topo.id_of(ix).value())))
            .collect(),
    )
}

fn asn_values(asns: &[u32]) -> Json {
    Json::Arr(asns.iter().map(|&asn| Json::Num(f64::from(asn))).collect())
}

// ---------------------------------------------------------------------------
// POST /v1/attacks

/// Forwards engine convergence counters to the shared telemetry bank.
struct TelemetrySink<'a>(&'a SweepTelemetry);

impl Observer for TelemetrySink<'_> {
    fn on_converged(&mut self, stats: &ConvergenceStats) {
        self.0.record_run(stats);
    }
}

/// The engine-invariant part of an attack response: identical bytes no
/// matter which engine or cache state produced the outcome (polluted sets
/// are pinned bit-identical across engines by the routing crate's
/// equivalence suites). `generations`/`truncated`-style engine
/// bookkeeping deliberately stays out.
fn outcome_json(topo: &Topology, outcome: &AttackOutcome) -> Json {
    Json::obj([
        (
            "attacker",
            Json::Num(f64::from(topo.id_of(outcome.attack.attacker).value())),
        ),
        (
            "target",
            Json::Num(f64::from(topo.id_of(outcome.attack.target).value())),
        ),
        ("kind", Json::str(kind_name(outcome.attack.kind))),
        (
            "pollution_count",
            Json::Num(outcome.pollution_count() as f64),
        ),
        (
            "polluted",
            asn_array(topo, outcome.polluted.iter().copied()),
        ),
    ])
}

fn handle_attack(
    state: &ServerState<'_>,
    request: &Request,
    ctx: &mut WorkerCtx,
) -> Result<Response, ApiError> {
    let body = parse_body(request)?;
    let topo = state.sim.topology();
    let attacker = resolve(topo, require_asn(&body, "attacker")?)?;
    let target = resolve(topo, require_asn(&body, "target")?)?;
    if attacker == target {
        return Err(ApiError::new(422, "attacker and target must differ"));
    }
    let kind = parse_kind(&body)?;
    let parsed = parse_defense(topo, &body)?;
    let attack = Attack {
        attacker,
        target,
        kind,
    };
    // The baseline cache pays off exactly when replay is the dispatch
    // choice: exact-prefix kinds under a localizing defense (or a forced
    // delta engine). Everything else runs from scratch.
    let use_baseline =
        kind != AttackKind::SubPrefixHijack && state.sim.uses_shared_baseline(&parsed.defense);
    let monitor = SweepMonitor::none().with_telemetry(&state.telemetry);
    let started = Instant::now();
    let (outcome, engine_name, cache_name) = if use_baseline {
        let key = BaselineKey {
            target: target.raw(),
            defense_fp: parsed.fingerprint,
        };
        let (baseline, cache_outcome) = state.cache.get_or_build(key, || {
            state.telemetry.record_baseline();
            Baseline::build(
                state.sim.net(),
                &[Announcement::honest(target)],
                &parsed.defense.context_for(target),
                state.sim.policy(),
                &mut ctx.ws,
            )
        });
        let replay_started = Instant::now();
        let outcome =
            state
                .sim
                .run_with_baseline(attack, &baseline, &parsed.defense, &mut ctx.dws, &monitor);
        state.telemetry.record_attack_wall(replay_started.elapsed());
        (outcome, "delta", cache_outcome.name())
    } else {
        state.telemetry.record_dispatch(Dispatch::Scratch);
        let outcome = state.sim.run_observed(
            attack,
            &parsed.defense,
            &mut ctx.ws,
            &mut TelemetrySink(&state.telemetry),
        );
        state.telemetry.record_attack_wall(started.elapsed());
        (outcome, "generation", "bypass")
    };
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let response = Json::obj([
        ("result", outcome_json(topo, &outcome)),
        (
            "meta",
            Json::obj([
                ("engine", Json::str(engine_name)),
                ("cache", Json::str(cache_name)),
                ("wall_us", json_u64(wall_us)),
            ]),
        ),
    ]);
    Ok(json_response(200, &response))
}

// ---------------------------------------------------------------------------
// POST /v1/attacks:batch

/// One parsed batch entry: the attack plus its own defense (when the
/// entry carried a `defense` key) or `None` for the batch default.
struct BatchEntry {
    attack: Attack,
    defense: Option<ParsedDefense>,
}

/// Evaluates N attack specs in one request.
///
/// Envelope problems (missing/empty/oversized `attacks` array, an
/// unparseable batch-level `defense`) fail the whole request; a bad
/// *entry* only fails that entry — its slot in `results` carries an
/// `error`/`status` object and every other entry still evaluates. Valid
/// entries are grouped by (target, defense) so each group fetches its
/// shared baseline exactly once, then all entries run across the rayon
/// pool with per-worker workspaces. Entries outside a baseline group get
/// sweep-grade adaptive dispatch ([`Simulator::run_unshared_monitored`])
/// — notably the closed-form race solver for undefended exact-prefix
/// attacks — so a batch answers at bulk-path speed, not N single-request
/// scratch runs.
///
/// [`Simulator::run_unshared_monitored`]: bgpsim_hijack::Simulator::run_unshared_monitored
fn handle_attack_batch(state: &ServerState<'_>, request: &Request) -> Result<Response, ApiError> {
    let body = parse_body(request)?;
    let topo = state.sim.topology();
    let items = match get(&body, "attacks") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err(ApiError::new(422, "field \"attacks\" must be an array")),
        None => return Err(ApiError::new(422, "missing required field \"attacks\"")),
    };
    if items.is_empty() {
        return Err(ApiError::new(422, "field \"attacks\" is empty"));
    }
    if items.len() > MAX_BATCH_ATTACKS {
        return Err(ApiError::new(
            413,
            format!(
                "batch of {} attacks exceeds the {MAX_BATCH_ATTACKS}-attack limit",
                items.len()
            ),
        ));
    }
    // The batch-level default defense is part of the envelope: if it does
    // not parse, no entry has well-defined semantics.
    let default_defense = parse_defense(topo, &body)?;
    let started = Instant::now();
    let entries: Vec<Result<BatchEntry, ApiError>> = items
        .iter()
        .map(|item| {
            if !matches!(item, Json::Obj(_)) {
                return Err(ApiError::new(
                    422,
                    "each \"attacks\" entry must be an object",
                ));
            }
            let attacker = resolve(topo, require_asn(item, "attacker")?)?;
            let target = resolve(topo, require_asn(item, "target")?)?;
            if attacker == target {
                return Err(ApiError::new(422, "attacker and target must differ"));
            }
            let kind = parse_kind(item)?;
            let defense = match get(item, "defense") {
                None => None,
                Some(_) => Some(parse_defense(topo, item)?),
            };
            Ok(BatchEntry {
                attack: Attack {
                    attacker,
                    target,
                    kind,
                },
                defense,
            })
        })
        .collect();
    // One baseline fetch per distinct (target, defense) group. Groups
    // build in parallel; the cache's single-flight layer coalesces any
    // group already being built by another request.
    let mut groups: Vec<(BaselineKey, AsIndex, &ParsedDefense)> = Vec::new();
    for entry in entries.iter().flatten() {
        let parsed = entry.defense.as_ref().unwrap_or(&default_defense);
        if entry.attack.kind == AttackKind::SubPrefixHijack
            || !state.sim.uses_shared_baseline(&parsed.defense)
        {
            continue;
        }
        let key = BaselineKey {
            target: entry.attack.target.raw(),
            defense_fp: parsed.fingerprint,
        };
        if !groups.iter().any(|(k, _, _)| *k == key) {
            groups.push((key, entry.attack.target, parsed));
        }
    }
    let baselines: HashMap<BaselineKey, (std::sync::Arc<Baseline>, &'static str)> = groups
        .par_iter()
        .map(|&(key, target, parsed)| {
            let (baseline, outcome) = state.cache.get_or_build(key, || {
                state.telemetry.record_baseline();
                Baseline::build(
                    state.sim.net(),
                    &[Announcement::honest(target)],
                    &parsed.defense.context_for(target),
                    state.sim.policy(),
                    &mut Workspace::new(),
                )
            });
            (key, (baseline, outcome.name()))
        })
        .collect();
    // Evaluate every valid entry across the pool; error entries render in
    // place so `results[i]` always answers `attacks[i]`.
    let mut ok = 0usize;
    let mut failed = 0usize;
    let results: Vec<Json> = entries
        .par_iter()
        .map_init(
            || {
                (
                    Workspace::new(),
                    DeltaWorkspace::new(),
                    RaceWorkspace::new(),
                )
            },
            |(ws, dws, rws), entry| match entry {
                Err(e) => Json::obj([
                    ("error", Json::str(e.message.clone())),
                    ("status", Json::Num(f64::from(e.status))),
                ]),
                Ok(entry) => {
                    let parsed = entry.defense.as_ref().unwrap_or(&default_defense);
                    let use_baseline = entry.attack.kind != AttackKind::SubPrefixHijack
                        && state.sim.uses_shared_baseline(&parsed.defense);
                    let monitor = SweepMonitor::none().with_telemetry(&state.telemetry);
                    let item_started = Instant::now();
                    let (outcome, engine_name, cache_name) = if use_baseline {
                        let key = BaselineKey {
                            target: entry.attack.target.raw(),
                            defense_fp: parsed.fingerprint,
                        };
                        let (baseline, cache_name) = &baselines[&key];
                        let outcome = state.sim.run_with_baseline(
                            entry.attack,
                            baseline,
                            &parsed.defense,
                            dws,
                            &monitor,
                        );
                        (outcome, "delta", *cache_name)
                    } else {
                        // Grouped attacks get sweep-grade adaptive
                        // dispatch: undefended exact-prefix items race
                        // both origins closed-form instead of paying a
                        // full from-scratch propagation each.
                        let (outcome, dispatch) = state.sim.run_unshared_monitored(
                            entry.attack,
                            &parsed.defense,
                            ws,
                            rws,
                            &monitor,
                            &mut TelemetrySink(&state.telemetry),
                        );
                        let engine_name = match dispatch {
                            Dispatch::Stable => "stable",
                            Dispatch::Race => "race",
                            Dispatch::Delta => "delta",
                            Dispatch::Scratch => "generation",
                        };
                        (outcome, engine_name, "bypass")
                    };
                    state.telemetry.record_attack_wall(item_started.elapsed());
                    Json::obj([
                        ("result", outcome_json(topo, &outcome)),
                        (
                            "meta",
                            Json::obj([
                                ("engine", Json::str(engine_name)),
                                ("cache", Json::str(cache_name)),
                            ]),
                        ),
                    ])
                }
            },
        )
        .collect();
    for entry in &entries {
        match entry {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let response = Json::obj([
        ("results", Json::Arr(results)),
        (
            "meta",
            Json::obj([
                ("items", Json::Num((ok + failed) as f64)),
                ("ok", Json::Num(ok as f64)),
                ("failed", Json::Num(failed as f64)),
                ("baseline_groups", Json::Num(groups.len() as f64)),
                ("wall_us", json_u64(wall_us)),
            ]),
        ),
    ]);
    Ok(json_response(200, &response))
}

// ---------------------------------------------------------------------------
// POST /v1/sweeps + job lifecycle

fn handle_sweep_submit(state: &ServerState<'_>, request: &Request) -> Result<Response, ApiError> {
    let body = parse_body(request)?;
    let topo = state.sim.topology();
    let target = resolve(topo, require_asn(&body, "target")?)?;
    let parsed = parse_defense(topo, &body)?;
    let (pool, pool_kind): (Vec<AsIndex>, &'static str) = match get(&body, "attackers") {
        None => (state.lab.strided_transit_attackers(), "transit"),
        Some(Json::Str(s)) => match s.as_str() {
            "all" => (state.lab.strided_attackers(), "all"),
            "transit" => (state.lab.strided_transit_attackers(), "transit"),
            other => {
                return Err(ApiError::new(
                    422,
                    format!(
                        "unknown attacker pool {other:?}: use \"all\", \"transit\", \
                         or an explicit ASN array"
                    ),
                ))
            }
        },
        Some(Json::Arr(items)) => {
            let pool = items
                .iter()
                .map(|item| {
                    as_u32(item)
                        .ok_or_else(|| ApiError::new(422, "\"attackers\" entries must be ASNs"))
                        .and_then(|asn| resolve(topo, asn))
                })
                .collect::<Result<Vec<_>, _>>()?;
            (pool, "explicit")
        }
        Some(_) => {
            return Err(ApiError::new(
                422,
                "\"attackers\" must be \"all\", \"transit\", or an ASN array",
            ))
        }
    };
    // Same pool semantics as Simulator::sweep_result: the target never
    // attacks itself, so its row is excluded rather than forced to zero.
    let pool: Vec<AsIndex> = pool.into_iter().filter(|&a| a != target).collect();
    if pool.is_empty() {
        return Err(ApiError::new(422, "attacker pool is empty"));
    }
    let pool_asns: Vec<u32> = pool.iter().map(|&ix| topo.id_of(ix).value()).collect();
    let cacheable = state.sim.uses_shared_baseline(&parsed.defense);
    let spec = SweepSpec {
        target,
        target_asn: topo.id_of(target).value(),
        pool,
        pool_asns,
        defense: parsed.defense,
        validator_asns: parsed.validator_asns,
        stub_defense: parsed.stub_defense,
        defense_fp: parsed.fingerprint,
        cacheable,
        pool_kind,
    };
    let key = idempotency_key(request, &body)?;
    let (job, fresh) = state
        .jobs
        .submit_keyed(JobSpec::Sweep(spec), key)
        .map_err(|message| {
            let status = if message.contains("full") { 429 } else { 503 };
            ApiError::new(status, message)
        })?;
    let id = job.wire_id();
    let response = Json::obj([
        ("id", Json::str(id.clone())),
        ("state", Json::str(job.with_state(JobState::name))),
        ("total", Json::Num(job.total.load(Ordering::Relaxed) as f64)),
        ("poll", Json::str(format!("/v1/jobs/{id}"))),
        ("results", Json::str(format!("/v1/results/{id}"))),
    ]);
    // 202 schedules; a duplicate idempotency key answers 200 with the
    // original job, scheduling nothing.
    Ok(json_response(if fresh { 202 } else { 200 }, &response))
}

/// Client idempotency key for a submission: the `Idempotency-Key`
/// header wins, then a `"idempotency_key"` body field; absent both, the
/// submission is unkeyed (every POST schedules).
fn idempotency_key(request: &Request, body: &Json) -> Result<Option<String>, ApiError> {
    let raw = match request.header("idempotency-key") {
        Some(value) => Some(value.to_string()),
        None => match get(body, "idempotency_key") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => {
                return Err(ApiError::new(
                    422,
                    "field \"idempotency_key\" must be a string",
                ))
            }
        },
    };
    match raw {
        None => Ok(None),
        Some(key) => {
            let key = key.trim().to_string();
            if key.is_empty() {
                return Err(ApiError::new(422, "idempotency key must not be empty"));
            }
            if key.len() > MAX_IDEMPOTENCY_KEY_LEN {
                return Err(ApiError::new(
                    422,
                    format!("idempotency key exceeds {MAX_IDEMPOTENCY_KEY_LEN} bytes"),
                ));
            }
            Ok(Some(key))
        }
    }
}

fn parse_job_id(wire: &str) -> Result<u64, ApiError> {
    wire.strip_prefix("job-")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| {
            ApiError::new(
                404,
                format!("malformed job id {wire:?} (expected \"job-<n>\")"),
            )
        })
}

fn job_json(job: &crate::jobs::Job) -> Json {
    let eta = job.eta_ms.load(Ordering::Relaxed);
    let terminal = job.with_state(JobState::is_terminal);
    let mut pairs = vec![
        ("id".to_string(), Json::str(job.wire_id())),
        (
            "state".to_string(),
            Json::str(job.with_state(JobState::name)),
        ),
    ];
    match &job.spec {
        JobSpec::Sweep(spec) => {
            pairs.push(("kind".to_string(), Json::str("sweep")));
            pairs.push(("target".to_string(), Json::Num(f64::from(spec.target_asn))));
            pairs.push(("pool".to_string(), Json::str(spec.pool_kind)));
        }
        JobSpec::Stream(spec) => {
            pairs.push(("kind".to_string(), Json::str("stream")));
            pairs.push(("targets".to_string(), asn_values(&spec.target_asns)));
        }
    }
    pairs.extend([
        (
            "total".to_string(),
            Json::Num(job.total.load(Ordering::Relaxed) as f64),
        ),
        (
            "completed".to_string(),
            Json::Num(job.completed.load(Ordering::Relaxed) as f64),
        ),
        (
            "elapsed_ms".to_string(),
            json_u64(job.elapsed_ms.load(Ordering::Relaxed)),
        ),
        (
            "eta_ms".to_string(),
            // A terminal job has no remaining work: whatever estimate the
            // last progress tick left behind is stale, so report null
            // rather than freeze a misleading number. Live estimates clamp
            // to the 2^53 JSON-safe range — `u64 as f64` above that rounds
            // to a value that silently changes on a parse/render trip.
            if terminal || eta == ETA_UNKNOWN {
                Json::Null
            } else {
                json_u64(eta)
            },
        ),
    ]);
    // Shard progress appears only on jobs the sweep executor dealt to a
    // fan-out fleet; a purely local job never grows the object.
    let shards_total = job.shards_total.load(Ordering::Relaxed);
    if shards_total > 0 {
        pairs.push((
            "shards".to_string(),
            Json::obj([
                ("total", json_u64(shards_total)),
                ("done", json_u64(job.shards_done.load(Ordering::Relaxed))),
                (
                    "retried",
                    json_u64(job.shards_retried.load(Ordering::Relaxed)),
                ),
                (
                    "hedged",
                    json_u64(job.shards_hedged.load(Ordering::Relaxed)),
                ),
            ]),
        ));
    }
    job.with_state(|state| {
        if let JobState::Failed(message) = state {
            pairs.push(("error".to_string(), Json::str(message.clone())));
        }
    });
    Json::Obj(pairs)
}

/// `GET /v1/jobs`: every retained job, newest first, capped at
/// [`MAX_LISTED_JOBS`] — operators and coordinators enumerate without
/// knowing ids, and the response stays bounded no matter the retention.
fn handle_jobs_list(state: &ServerState<'_>) -> Result<Response, ApiError> {
    let jobs = state.jobs.snapshot();
    let total = jobs.len();
    let items: Vec<Json> = jobs
        .iter()
        .rev()
        .take(MAX_LISTED_JOBS)
        .map(|job| job_json(job))
        .collect();
    let response = Json::obj([
        ("jobs", Json::Arr(items)),
        ("total", Json::Num(total as f64)),
        ("truncated", Json::Bool(total > MAX_LISTED_JOBS)),
    ]);
    Ok(json_response(200, &response))
}

fn handle_job_get(state: &ServerState<'_>, wire_id: &str) -> Result<Response, ApiError> {
    let id = parse_job_id(wire_id)?;
    let job = state
        .jobs
        .get(id)
        .ok_or_else(|| ApiError::new(404, format!("no job {wire_id:?}")))?;
    Ok(json_response(200, &job_json(&job)))
}

fn handle_job_cancel(state: &ServerState<'_>, wire_id: &str) -> Result<Response, ApiError> {
    let id = parse_job_id(wire_id)?;
    let job = state
        .jobs
        .cancel(id)
        .ok_or_else(|| ApiError::new(404, format!("no job {wire_id:?}")))?;
    Ok(json_response(200, &job_json(&job)))
}

fn handle_results(state: &ServerState<'_>, wire_id: &str) -> Result<Response, ApiError> {
    let id = parse_job_id(wire_id)?;
    let job = state
        .jobs
        .get(id)
        .ok_or_else(|| ApiError::new(404, format!("no job {wire_id:?}")))?;
    job.with_state(|job_state| match job_state {
        JobState::Done(output) => {
            // A finished stream renders its summary; the per-event tape is
            // the /range endpoint's job (and is not persisted at all).
            if let JobSpec::Stream(spec) = &job.spec {
                let stream = output.stream.as_ref().ok_or_else(|| {
                    ApiError::new(
                        500,
                        format!("stream job {wire_id:?} finished without a summary"),
                    )
                })?;
                let response = Json::obj([
                    ("id", Json::str(job.wire_id())),
                    ("kind", Json::str("stream")),
                    ("targets", asn_values(&spec.target_asns)),
                    (
                        "result",
                        Json::obj([
                            ("events", json_u64(stream.events)),
                            ("injected", json_u64(stream.injected)),
                            ("detected", json_u64(stream.detected)),
                            (
                                // Null, not zero: "no hijack was ever
                                // detected" must stay distinguishable from
                                // "detected instantly".
                                "mean_latency_events",
                                stream.mean_latency_events.map_or(Json::Null, Json::Num),
                            ),
                            (
                                "max_latency_events",
                                stream.max_latency_events.map_or(Json::Null, json_u64),
                            ),
                        ]),
                    ),
                    (
                        "meta",
                        Json::obj([("wall_ms", Json::Num(output.wall_ms as f64))]),
                    ),
                ]);
                return Ok(json_response(200, &response));
            }
            let spec = job.spec.as_sweep().expect("non-stream jobs are sweeps");
            let counts = &output.counts;
            let attacks = counts.len();
            let failed = counts.iter().filter(|&&c| c == 0).count();
            let max = counts.iter().copied().max().unwrap_or(0);
            let successful: Vec<u32> = counts.iter().copied().filter(|&c| c > 0).collect();
            let mean_successful = if successful.is_empty() {
                0.0
            } else {
                successful.iter().map(|&c| f64::from(c)).sum::<f64>() / successful.len() as f64
            };
            let mean = if attacks == 0 {
                0.0
            } else {
                counts.iter().map(|&c| f64::from(c)).sum::<f64>() / attacks as f64
            };
            let response = Json::obj([
                ("id", Json::str(job.wire_id())),
                ("target", Json::Num(f64::from(spec.target_asn))),
                (
                    "defense",
                    defense_json(&spec.validator_asns, spec.stub_defense),
                ),
                ("pool", Json::str(spec.pool_kind)),
                (
                    "result",
                    Json::obj([
                        ("attackers", asn_values(&spec.pool_asns)),
                        (
                            "counts",
                            Json::Arr(counts.iter().map(|&c| Json::Num(f64::from(c))).collect()),
                        ),
                        (
                            "stats",
                            Json::obj([
                                ("attacks", Json::Num(attacks as f64)),
                                ("failed_attacks", Json::Num(failed as f64)),
                                ("max_pollution", Json::Num(f64::from(max))),
                                ("mean_successful_pollution", Json::Num(mean_successful)),
                                ("mean_pollution", Json::Num(mean)),
                            ]),
                        ),
                    ]),
                ),
                (
                    "meta",
                    Json::obj([
                        ("cache", Json::str(output.cache)),
                        ("wall_ms", Json::Num(output.wall_ms as f64)),
                    ]),
                ),
            ]);
            Ok(json_response(200, &response))
        }
        other => Err(ApiError::new(
            409,
            format!(
                "job {wire_id:?} has no results (state: {}); poll /v1/jobs/{wire_id}",
                other.name()
            ),
        )),
    })
}

// ---------------------------------------------------------------------------
// POST /v1/stream + GET /v1/stream/:id/range

/// The value of `key` in a raw query string (`a=1&b=2`), if present. The
/// wire carries only identifiers and integers here, so no percent
/// decoding is needed (or done).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
}

fn query_u64(query: &str, key: &str) -> Result<Option<u64>, ApiError> {
    match query_param(query, key) {
        None | Some("") => Ok(None),
        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| {
            ApiError::new(
                422,
                format!("query parameter {key:?} must be a non-negative integer"),
            )
        }),
    }
}

/// Submits an update-stream job: a seeded interleave of benign churn and
/// labeled hijacks evaluated incrementally by the stream detector. The
/// body is optional — `{}` (or no body at all) runs the lab defaults;
/// `events`, `seed`, and `targets` (a tracked-target *count*, drawn
/// deterministically from the transit ASes) override them.
fn handle_stream_submit(state: &ServerState<'_>, request: &Request) -> Result<Response, ApiError> {
    let body = if request.body.iter().all(u8::is_ascii_whitespace) {
        Json::obj::<&str, _>([])
    } else {
        parse_body(request)?
    };
    let topo = state.sim.topology();
    let transit = topo.transit_ases().len();
    if transit < 2 {
        return Err(ApiError::new(
            422,
            "topology has fewer than two transit ASes; a stream needs distinct attackers",
        ));
    }
    let defaults = StreamConfig::default();
    let events = match get(&body, "events") {
        None | Some(Json::Null) => defaults.events,
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 1.0 && *n <= MAX_STREAM_EVENTS as f64 => {
            *n as usize
        }
        Some(_) => {
            return Err(ApiError::new(
                422,
                format!("field \"events\" must be an integer in 1..={MAX_STREAM_EVENTS}"),
            ))
        }
    };
    let seed = match get(&body, "seed") {
        // The default mirrors the CLI `stream` subcommand, so a bare POST
        // replays the exact tape a bare `bgpsim stream` runs.
        None | Some(Json::Null) => state.lab.config().seed ^ 0x57e4,
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= JSON_SAFE_MAX as f64 => {
            *n as u64
        }
        Some(_) => {
            return Err(ApiError::new(
                422,
                "field \"seed\" must be a non-negative integer",
            ))
        }
    };
    let num_targets = match get(&body, "targets") {
        None | Some(Json::Null) => defaults.num_targets.min(transit),
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 1.0 && *n <= transit as f64 => *n as usize,
        Some(_) => {
            return Err(ApiError::new(
                422,
                format!("field \"targets\" must be a tracked-target count in 1..={transit}"),
            ))
        }
    };
    let config = StreamConfig {
        events,
        seed,
        num_targets,
        ..defaults
    };
    let plan = StreamPlan::generate(topo, &config);
    let target_asns: Vec<u32> = plan
        .targets
        .iter()
        .map(|&ix| topo.id_of(ix).value())
        .collect();
    let injected = plan.injected_hijacks();
    let spec = StreamSpec {
        config,
        plan,
        target_asns,
        injected,
        store: Arc::new(Mutex::new(StreamStore::sized_for(events))),
    };
    let key = idempotency_key(request, &body)?;
    let (job, fresh) = state
        .jobs
        .submit_keyed(JobSpec::Stream(spec), key)
        .map_err(|message| {
            let status = if message.contains("full") { 429 } else { 503 };
            ApiError::new(status, message)
        })?;
    let id = job.wire_id();
    let mut pairs = vec![
        ("id".to_string(), Json::str(id.clone())),
        (
            "state".to_string(),
            Json::str(job.with_state(JobState::name)),
        ),
        ("kind".to_string(), Json::str("stream")),
        (
            "total".to_string(),
            Json::Num(job.total.load(Ordering::Relaxed) as f64),
        ),
    ];
    // A duplicate idempotency key can answer with a job submitted under
    // a different kind; only a real stream spec carries stream fields.
    if let Some(spec) = job.spec.as_stream() {
        pairs.push(("injected".to_string(), Json::Num(spec.injected as f64)));
        pairs.push(("targets".to_string(), asn_values(&spec.target_asns)));
        pairs.push((
            "range".to_string(),
            Json::str(format!("/v1/stream/{id}/range")),
        ));
    }
    pairs.push(("poll".to_string(), Json::str(format!("/v1/jobs/{id}"))));
    pairs.push((
        "results".to_string(),
        Json::str(format!("/v1/results/{id}")),
    ));
    Ok(json_response(
        if fresh { 202 } else { 200 },
        &Json::Obj(pairs),
    ))
}

/// Reads a slice of one stream metric series, live — the executor appends
/// per event under the store mutex, so a query mid-run sees a consistent
/// snapshot up to the last applied event. `agg=window` folds the span
/// into fixed-width min/max/mean windows; empty windows answer `null`
/// stats, never zeros.
fn handle_stream_range(
    state: &ServerState<'_>,
    wire_id: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let id = parse_job_id(wire_id)?;
    let job = state
        .jobs
        .get(id)
        .ok_or_else(|| ApiError::new(404, format!("no job {wire_id:?}")))?;
    let spec = job.spec.as_stream().ok_or_else(|| {
        ApiError::new(
            409,
            format!("job {wire_id:?} is a sweep; /range applies only to stream jobs"),
        )
    })?;
    // Per-event samples are deliberately not persisted (summary-only
    // durability), so a job restored from disk has nothing to range over.
    // 410, not 404: the tape existed and is permanently gone.
    if job.restored {
        return Err(ApiError::new(
            410,
            format!(
                "job {wire_id:?} was restored from disk and only its summary survived; \
                 see /v1/results/{wire_id}"
            ),
        ));
    }
    let query = request.query.as_str();
    let series_name = query_param(query, "series").unwrap_or("pollution");
    let agg = query_param(query, "agg").unwrap_or("none");
    if agg != "none" && agg != "window" {
        return Err(ApiError::new(
            422,
            format!("unknown agg {agg:?}: use \"none\" or \"window\""),
        ));
    }
    let from_q = query_u64(query, "from")?;
    let to_q = query_u64(query, "to")?;
    let window = query_u64(query, "window")?.unwrap_or(64);
    if window == 0 {
        return Err(ApiError::new(
            422,
            "query parameter \"window\" must be positive",
        ));
    }
    let store = crate::jobs::lock_recover(&spec.store);
    let Some(series) = store.series(series_name) else {
        let names: Vec<&str> = store.names();
        return Err(ApiError::new(
            404,
            format!(
                "no samples in series {series_name:?} yet; series so far: [{}]",
                names.join(", ")
            ),
        ));
    };
    // A series exists only once a sample landed, so the bounds are Some.
    let from = from_q.or_else(|| series.earliest_seq()).unwrap_or(0);
    let to = to_q.or_else(|| series.latest_seq()).unwrap_or(0);
    let mut pairs = vec![
        ("id".to_string(), Json::str(job.wire_id())),
        (
            "state".to_string(),
            Json::str(job.with_state(JobState::name)),
        ),
        ("series".to_string(), Json::str(series_name)),
        (
            "completed".to_string(),
            Json::Num(job.completed.load(Ordering::Relaxed) as f64),
        ),
        ("from".to_string(), json_u64(from)),
        ("to".to_string(), json_u64(to)),
        ("appended".to_string(), json_u64(series.appended())),
        ("evicted".to_string(), json_u64(series.evicted())),
    ];
    if agg == "window" {
        let windows: Vec<Json> = series
            .window_agg(from, to, window)
            .into_iter()
            .map(|w| {
                Json::obj([
                    ("start", json_u64(w.start)),
                    ("count", Json::Num(w.count as f64)),
                    ("min", w.min.map_or(Json::Null, Json::Num)),
                    ("max", w.max.map_or(Json::Null, Json::Num)),
                    ("mean", w.mean.map_or(Json::Null, Json::Num)),
                ])
            })
            .collect();
        pairs.push(("window".to_string(), json_u64(window)));
        pairs.push(("windows".to_string(), Json::Arr(windows)));
    } else {
        let samples: Vec<Json> = series
            .range(from, to)
            .into_iter()
            .map(|(seq, value)| Json::Arr(vec![json_u64(seq), Json::Num(value)]))
            .collect();
        pairs.push(("samples".to_string(), Json::Arr(samples)));
    }
    Ok(json_response(200, &Json::Obj(pairs)))
}

// ---------------------------------------------------------------------------
// Introspection

fn handle_healthz(state: &ServerState<'_>) -> Result<Response, ApiError> {
    let topo = state.sim.topology();
    let cast = state.lab.cast();
    let counts = state.jobs.counts();
    let draining = state.shutdown.load(Ordering::Relaxed);
    let sample: Vec<AsIndex> = topo
        .transit_ases()
        .into_iter()
        .take(SAMPLE_ATTACKERS)
        .collect();
    let response = Json::obj([
        (
            "status",
            Json::str(if draining { "draining" } else { "ok" }),
        ),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("scale", Json::str(state.config.scale_name.clone())),
        // Fleet handshake identity: a fan-out coordinator refuses any
        // worker whose (schema_version, scale, seed, num_ases) differ
        // from its own — same seed + scale must mean same topology.
        ("seed", json_u64(state.lab.config().seed)),
        ("engine", Json::str(state.sim.engine().name())),
        ("num_ases", Json::Num(topo.num_ases() as f64)),
        (
            "uptime_ms",
            Json::Num(state.metrics.uptime().as_millis() as f64),
        ),
        (
            "jobs",
            Json::obj([
                ("queued", Json::Num(counts.queued as f64)),
                ("running", Json::Num(counts.running as f64)),
                ("done", Json::Num(counts.done as f64)),
                ("cancelled", Json::Num(counts.cancelled as f64)),
                ("failed", Json::Num(counts.failed as f64)),
            ]),
        ),
        (
            "cache_entries",
            Json::Num(state.cache.stats().entries as f64),
        ),
        // Capacity introspection for fleet tooling: executor width, the
        // cache's byte budget (null = entry-count bound only), and
        // whether terminal jobs survive a restart.
        (
            "sweep_workers",
            Json::Num(state.config.sweep_workers as f64),
        ),
        (
            "cache_bytes",
            state.config.cache_byte_budget.map_or(Json::Null, json_u64),
        ),
        ("state_dir", Json::Bool(state.config.state_dir.is_some())),
        (
            "cast",
            Json::obj([
                (
                    "vulnerable_stub",
                    Json::Num(f64::from(topo.id_of(cast.vulnerable_stub).value())),
                ),
                (
                    "resistant_stub",
                    Json::Num(f64::from(topo.id_of(cast.resistant_stub).value())),
                ),
                (
                    "tier1",
                    Json::Num(f64::from(topo.id_of(cast.tier1).value())),
                ),
                (
                    "aggressive_attacker",
                    Json::Num(f64::from(topo.id_of(cast.aggressive_attacker).value())),
                ),
            ]),
        ),
        ("sample_attackers", asn_array(topo, sample)),
    ]);
    Ok(json_response(200, &response))
}

fn handle_metrics(state: &ServerState<'_>) -> Response {
    let mut text = render_prometheus(
        &state.metrics,
        &state.cache.stats(),
        &state.jobs.counts(),
        &state.jobs.scheduler_stats(),
        &state.telemetry.snapshot(),
    );
    if let Some(coordinator) = &state.fanout {
        text.push_str(&crate::metrics::render_fanout(&coordinator.stats()));
    }
    Response::text(200, text)
}

fn handle_shutdown(state: &ServerState<'_>) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    json_response(200, &Json::obj([("status", Json::str("shutting down"))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_parse_strictly() {
        assert_eq!(parse_job_id("job-7").unwrap(), 7);
        assert!(parse_job_id("7").is_err());
        assert!(parse_job_id("job-").is_err());
        assert!(parse_job_id("job-x").is_err());
    }

    #[test]
    fn u32_extraction_rejects_non_integers() {
        assert_eq!(as_u32(&Json::Num(7.0)), Some(7));
        assert_eq!(as_u32(&Json::Num(7.5)), None);
        assert_eq!(as_u32(&Json::Num(-1.0)), None);
        assert_eq!(as_u32(&Json::str("7")), None);
        assert_eq!(as_u32(&Json::Num(f64::from(u32::MAX))), Some(u32::MAX));
    }

    #[test]
    fn u64_rendering_stays_json_safe() {
        // Values inside the 2^53 window pass through exactly...
        assert_eq!(json_u64(0), Json::Num(0.0));
        assert_eq!(
            json_u64(JSON_SAFE_MAX - 1),
            Json::Num((JSON_SAFE_MAX - 1) as f64)
        );
        // ...and anything above saturates at the bound instead of rounding
        // to whichever double happens to be nearest (u64::MAX as f64 is
        // 2^64, off by over 6k billion).
        assert_eq!(json_u64(u64::MAX), Json::Num(JSON_SAFE_MAX as f64));
        assert_eq!(json_u64(JSON_SAFE_MAX + 1), Json::Num(JSON_SAFE_MAX as f64));
    }

    #[test]
    fn kind_parsing() {
        let body = Json::obj([("kind", Json::str("sub_prefix"))]);
        assert_eq!(parse_kind(&body).unwrap(), AttackKind::SubPrefixHijack);
        assert_eq!(
            parse_kind(&Json::obj::<&str, _>([])).unwrap(),
            AttackKind::OriginHijack
        );
        let bad = Json::obj([("kind", Json::str("exact"))]);
        assert!(parse_kind(&bad).is_err());
    }
}
