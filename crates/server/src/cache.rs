//! The shared baseline cache: LRU with single-flight coalescing.
//!
//! Building a [`Baseline`] (the target's honest convergence plus its
//! recorded message schedule) dominates the cost of the first query
//! against any (target, defense) pair; replaying an attacker against a
//! built baseline costs microseconds. A long-running service therefore
//! keeps baselines in a bounded cache shared by every worker thread.
//!
//! Two properties matter under concurrency:
//!
//! * **Single-flight**: when several requests need the same missing
//!   baseline at once, exactly one thread builds it while the others
//!   block on a condvar and receive the same [`Arc`] — N identical
//!   concurrent sweeps cost one build, not N (the integration suite pins
//!   this through the hit/miss/coalesced counters).
//! * **Bounded**: eviction is least-recently-*used* by a monotonic touch
//!   stamp; in-flight builds are never evicted.
//!
//! Counters are relaxed atomics exported on `/v1/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use bgpsim_routing::Baseline;

use crate::jobs::lock_recover;

/// Cache key: the attacked target plus a fingerprint of the defense
/// deployment. The topology is fixed for a server's lifetime, so it is
/// not part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BaselineKey {
    /// Raw index of the target AS.
    pub target: u32,
    /// [`defense_fingerprint`] of the deployment.
    pub defense_fp: u64,
}

/// FNV-1a over the canonical defense form: sorted validator indices plus
/// the stub-defense flag. Two requests spelling the same deployment in
/// different orders (or with duplicates) hash identically, so they share
/// one cache entry.
pub fn defense_fingerprint(sorted_validators: &[u32], stub_defense: bool) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &v in sorted_validators {
        for byte in v.to_le_bytes() {
            eat(byte);
        }
    }
    eat(u8::from(stub_defense));
    hash
}

/// How a [`BaselineCache::get_or_build`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The baseline was already resident.
    Hit,
    /// This call built the baseline.
    Miss,
    /// Another thread was already building it; this call waited and
    /// shares the result.
    Coalesced,
}

impl CacheOutcome {
    /// Wire name used in response `meta` blocks.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// Plain-integer counter snapshot for `/v1/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident baseline.
    pub hits: u64,
    /// Lookups that built the baseline.
    pub misses: u64,
    /// Lookups that waited on another thread's in-flight build.
    pub coalesced: u64,
    /// Ready entries evicted to stay within capacity (entry count or byte
    /// budget).
    pub evictions: u64,
    /// Entries currently resident (including in-flight builds).
    pub entries: usize,
    /// Summed [`Baseline::heap_bytes`] of resident ready baselines.
    pub bytes: u64,
}

enum Slot {
    /// A thread is building this baseline; waiters sleep on the condvar.
    Building,
    Ready(Arc<Baseline>),
}

struct Entry {
    slot: Slot,
    /// Monotonic last-touch stamp; smallest stamp is evicted first.
    stamp: u64,
    /// [`Baseline::heap_bytes`] of the ready baseline (0 while building),
    /// cached so eviction bookkeeping never re-walks the baseline.
    bytes: u64,
}

struct CacheInner {
    entries: HashMap<BaselineKey, Entry>,
    tick: u64,
    /// Sum of every ready entry's `bytes`.
    bytes: u64,
}

/// Bounded single-flight LRU of built baselines. See the module docs.
pub struct BaselineCache {
    capacity: usize,
    /// Optional bound on summed resident [`Baseline::heap_bytes`]. At
    /// paper scale a single baseline is tens of megabytes, so an
    /// entry-count cap alone can silently pin gigabytes; the byte budget
    /// evicts LRU-first until within budget (the newest entry always
    /// survives, even alone over budget — evicting it would force its
    /// coalesced waiters to rebuild).
    byte_budget: Option<u64>,
    inner: Mutex<CacheInner>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BaselineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BaselineCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

/// Removes the `Building` placeholder if the build unwinds, so waiters
/// retry the build instead of sleeping forever.
struct BuildGuard<'a> {
    cache: &'a BaselineCache,
    key: BaselineKey,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // This drop runs *during* the build panic's unwind — locking
            // with a plain unwrap here could double-panic and abort.
            let mut inner = lock_recover(&self.cache.inner);
            inner.entries.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

impl BaselineCache {
    /// Creates a cache holding at most `capacity` ready baselines
    /// (minimum 1), with no byte budget.
    pub fn new(capacity: usize) -> BaselineCache {
        BaselineCache {
            capacity: capacity.max(1),
            byte_budget: None,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Additionally bounds the summed heap bytes of resident baselines
    /// (`None` disables the byte budget).
    pub fn with_byte_budget(mut self, budget: Option<u64>) -> BaselineCache {
        self.byte_budget = budget;
        self
    }

    /// Returns the baseline for `key`, building it with `build` exactly
    /// once across all concurrent callers. `build` runs without the cache
    /// lock held, so resident entries stay readable during a build.
    pub fn get_or_build(
        &self,
        key: BaselineKey,
        build: impl FnOnce() -> Baseline,
    ) -> (Arc<Baseline>, CacheOutcome) {
        let mut waited = false;
        // Poison recovery throughout: the build closure runs *outside*
        // the lock and the BuildGuard un-publishes a panicked build, so a
        // poisoned mutex only ever guards structurally-consistent state.
        let mut inner = lock_recover(&self.inner);
        loop {
            // Resolve the entry's state without holding a borrow across
            // the bookkeeping below.
            let resident = match inner.entries.get(&key) {
                Some(entry) => match &entry.slot {
                    Slot::Ready(baseline) => Some(Some(Arc::clone(baseline))),
                    Slot::Building => Some(None),
                },
                None => None,
            };
            match resident {
                Some(Some(baseline)) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    if let Some(entry) = inner.entries.get_mut(&key) {
                        entry.stamp = tick;
                    }
                    let outcome = if waited {
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::Hit
                    };
                    self.counter(outcome).fetch_add(1, Ordering::Relaxed);
                    return (baseline, outcome);
                }
                Some(None) => {
                    waited = true;
                    inner = self
                        .ready
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    inner.tick += 1;
                    let stamp = inner.tick;
                    inner.entries.insert(
                        key,
                        Entry {
                            slot: Slot::Building,
                            stamp,
                            bytes: 0,
                        },
                    );
                    drop(inner);
                    let mut guard = BuildGuard {
                        cache: self,
                        key,
                        armed: true,
                    };
                    let baseline = Arc::new(build());
                    guard.armed = false;
                    let bytes = baseline.heap_bytes() as u64;
                    let mut inner = lock_recover(&self.inner);
                    if let Some(entry) = inner.entries.get_mut(&key) {
                        entry.slot = Slot::Ready(Arc::clone(&baseline));
                        entry.bytes = bytes;
                        inner.bytes += bytes;
                    }
                    self.evict_over_capacity(&mut inner);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.ready.notify_all();
                    return (baseline, CacheOutcome::Miss);
                }
            }
        }
    }

    fn counter(&self, outcome: CacheOutcome) -> &AtomicU64 {
        match outcome {
            CacheOutcome::Hit => &self.hits,
            CacheOutcome::Miss => &self.misses,
            CacheOutcome::Coalesced => &self.coalesced,
        }
    }

    /// Evicts the least-recently-used *ready* entries until within the
    /// entry-count capacity and, when configured, the byte budget.
    /// In-flight builds are exempt: evicting one would strand its
    /// waiters. The byte budget never evicts the last ready entry, so a
    /// single over-budget baseline still serves its coalesced waiters.
    fn evict_over_capacity(&self, inner: &mut CacheInner) {
        loop {
            let over_count = inner.entries.len() > self.capacity;
            let ready = |inner: &CacheInner| {
                inner
                    .entries
                    .values()
                    .filter(|e| matches!(e.slot, Slot::Ready(_)))
                    .count()
            };
            let over_bytes = self
                .byte_budget
                .is_some_and(|budget| inner.bytes > budget && ready(inner) > 1);
            if !over_count && !over_bytes {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k);
            match victim {
                Some(key) => {
                    if let Some(entry) = inner.entries.remove(&key) {
                        inner.bytes -= entry.bytes;
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = lock_recover(&self.inner);
            (inner.entries.len(), inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_routing::{Announcement, FilterContext, PolicyConfig, SimNet, Workspace};
    use bgpsim_topology::{topology_from_triples, AsIndex, LinkKind::*, Topology};

    fn test_topology() -> Topology {
        topology_from_triples(&[
            (1, 2, ProviderToCustomer),
            (1, 3, ProviderToCustomer),
            (2, 4, ProviderToCustomer),
        ])
    }

    fn build_baseline(topo: &Topology, target: u32) -> Baseline {
        let net = SimNet::new(topo);
        let policy = PolicyConfig::paper();
        let ctx = FilterContext::default();
        Baseline::build(
            &net,
            &[Announcement::honest(AsIndex::new(target))],
            &ctx,
            &policy,
            &mut Workspace::new(),
        )
    }

    #[test]
    fn fingerprint_is_order_insensitive_by_contract() {
        // Callers sort before fingerprinting; equal sorted inputs match.
        assert_eq!(
            defense_fingerprint(&[1, 2, 3], false),
            defense_fingerprint(&[1, 2, 3], false)
        );
        assert_ne!(
            defense_fingerprint(&[1, 2, 3], false),
            defense_fingerprint(&[1, 2, 3], true)
        );
        assert_ne!(
            defense_fingerprint(&[1, 2], false),
            defense_fingerprint(&[1, 3], false)
        );
        assert_ne!(
            defense_fingerprint(&[], false),
            defense_fingerprint(&[], true)
        );
    }

    #[test]
    fn hit_after_miss_shares_the_arc() {
        let topo = test_topology();
        let cache = BaselineCache::new(4);
        let key = BaselineKey {
            target: 0,
            defense_fp: 7,
        };
        let (first, outcome) = cache.get_or_build(key, || build_baseline(&topo, 0));
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache.get_or_build(key, || panic!("must not rebuild"));
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_ready_entry() {
        let topo = test_topology();
        let cache = BaselineCache::new(2);
        let key = |t| BaselineKey {
            target: t,
            defense_fp: 0,
        };
        cache.get_or_build(key(0), || build_baseline(&topo, 0));
        cache.get_or_build(key(1), || build_baseline(&topo, 1));
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_build(key(0), || panic!("resident"));
        cache.get_or_build(key(2), || build_baseline(&topo, 2));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // 1 was evicted; 0 survived the eviction.
        cache.get_or_build(key(0), || panic!("0 must have survived"));
        let (_, outcome) = cache.get_or_build(key(1), || build_baseline(&topo, 1));
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn byte_budget_evicts_lru_but_keeps_newest() {
        let topo = test_topology();
        // Entry capacity far above what the byte budget admits: a budget
        // of one baseline's bytes means every insert evicts its
        // predecessor, but never the entry just published.
        let one = build_baseline(&topo, 0).heap_bytes() as u64;
        assert!(one > 0);
        let cache = BaselineCache::new(16).with_byte_budget(Some(one));
        let key = |t| BaselineKey {
            target: t,
            defense_fp: 0,
        };
        cache.get_or_build(key(0), || build_baseline(&topo, 0));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (1, 0));
        assert_eq!(stats.bytes, one);
        cache.get_or_build(key(1), || build_baseline(&topo, 1));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "over budget must evict the LRU");
        assert_eq!(stats.entries, 1, "the just-published entry survives");
        cache.get_or_build(key(1), || panic!("1 must be resident"));
        let (_, outcome) = cache.get_or_build(key(0), || build_baseline(&topo, 0));
        assert_eq!(outcome, CacheOutcome::Miss, "0 was evicted");
    }

    #[test]
    fn stats_bytes_tracks_residency() {
        let topo = test_topology();
        let cache = BaselineCache::new(2);
        let key = |t| BaselineKey {
            target: t,
            defense_fp: 0,
        };
        let (a, _) = cache.get_or_build(key(0), || build_baseline(&topo, 0));
        let (b, _) = cache.get_or_build(key(1), || build_baseline(&topo, 1));
        assert_eq!(
            cache.stats().bytes,
            (a.heap_bytes() + b.heap_bytes()) as u64
        );
        // Capacity eviction releases the victim's bytes.
        let (c, _) = cache.get_or_build(key(2), || build_baseline(&topo, 2));
        assert_eq!(
            cache.stats().bytes,
            (b.heap_bytes() + c.heap_bytes()) as u64
        );
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let topo = test_topology();
        let cache = BaselineCache::new(4);
        let key = BaselineKey {
            target: 0,
            defense_fp: 0,
        };
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(key, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so other threads arrive
                        // while the build is in flight.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        build_baseline(&topo, 0)
                    });
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
    }

    #[test]
    fn panicking_build_releases_waiters() {
        let topo = test_topology();
        let cache = BaselineCache::new(4);
        let key = BaselineKey {
            target: 0,
            defense_fp: 0,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(key, || panic!("build failed"));
        }));
        assert!(result.is_err());
        // The placeholder is gone; the next caller builds afresh.
        let (_, outcome) = cache.get_or_build(key, || build_baseline(&topo, 0));
        assert_eq!(outcome, CacheOutcome::Miss);
    }
}
