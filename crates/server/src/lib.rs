//! `bgpsim-server`: the what-if query service.
//!
//! The CLI and experiment runners answer questions batch-style: generate
//! the Internet, run the sweep, print the figures, exit. This crate turns
//! the same lab into a *long-running* service: the topology is generated
//! once at startup, and operators then ask incremental questions over a
//! small HTTP/1.1 JSON API — "what if AS X hijacked AS Y under this
//! deployment?" ([`POST /v1/attacks`]), "re-run the §IV sweep against
//! this defense" (`POST /v1/sweeps`, asynchronous with progress and
//! cancellation), "watch a live update stream and detect hijacks as they
//! land" (`POST /v1/stream`, with mid-run time-series range queries on
//! `GET /v1/stream/:id/range`) — with Prometheus metrics and health
//! introspection on the side.
//!
//! # Architecture
//!
//! ```text
//!  accept loop (nonblocking, polls shutdown flag)
//!      │  bounded sync_channel (503 when full)
//!      ▼
//!  HTTP workers (std::thread::scope; keep-alive; per-worker Workspace)
//!      │ POST /v1/sweeps        │ POST /v1/attacks, /v1/attacks:batch
//!      ▼                        ▼
//!  JobRegistry ══► executor pool ──►  BaselineCache (LRU, single-flight)
//!   (fair-share    (attacker-chunks,        │
//!    chunk ring)    rayon inside, panic     ▼
//!      │            isolation per chunk)  Simulator (borrows the Lab)
//!      ▼
//!  --state-dir (terminal jobs persisted as manifest JSON,
//!               reloaded on boot, corrupt files quarantined)
//! ```
//!
//! Everything is `std`: the no-new-dependencies policy means no tokio, no
//! hyper, no serde — framing is hand-rolled ([`crate::http`]) and JSON is
//! the manifest crate's bidirectional [`bgpsim_core::manifest::Json`].
//! Threads are scoped so workers can borrow the `Simulator` (which
//! borrows the topology) without `Arc` gymnastics; the scope guarantees
//! the lab outlives every worker.
//!
//! The load-bearing middle layer is the [`cache::BaselineCache`]: repeat
//! queries against a warm (target, defense) baseline skip the honest
//! convergence entirely and replay in microseconds. See `DESIGN.md` §13.
//!
//! [`POST /v1/attacks`]: crate::api

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod http;
pub mod jobs;
pub mod metrics;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bgpsim_core::detection::ProbeSet;
use bgpsim_core::manifest::SCHEMA_VERSION;
use bgpsim_core::stream::{DetectorMode, StreamDetector};
use bgpsim_core::{ExperimentConfig, Lab};
use bgpsim_fanout::{
    Coordinator, FanoutConfig, FanoutError, Handshake, SweepObserver, SweepRequest,
};
use bgpsim_hijack::{Simulator, SweepMonitor, SweepProgress, SweepTelemetry};
use bgpsim_routing::{Announcement, Baseline, DeltaWorkspace, Workspace};

use cache::{BaselineCache, BaselineKey};
use http::{HttpConn, ReadOutcome, Response};
use jobs::{Chunk, Job, JobRegistry, JobSpec, StreamOutput, StreamSpec, ETA_UNKNOWN};
use metrics::ServerMetrics;

/// How long the accept loop sleeps between polls when no connection is
/// pending — bounds shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Everything `serve` needs to boot.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Lab configuration (scale, seed, engine, policy).
    pub experiment: ExperimentConfig,
    /// Human-readable scale label for `/v1/healthz` (`"quick"`,
    /// `"standard"`, `"paper"`, or `"custom"`).
    pub scale_name: String,
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port —
    /// the tests' default).
    pub addr: String,
    /// HTTP worker threads.
    pub http_workers: usize,
    /// Accepted connections waiting for a worker before new ones get 503.
    pub queue_capacity: usize,
    /// Unfinished sweep jobs (queued or running) the registry admits
    /// before new submissions get 429.
    pub max_queued_jobs: usize,
    /// Baselines the LRU cache retains.
    pub cache_capacity: usize,
    /// Optional bound on the cache's summed resident baseline heap bytes
    /// (`None` = entry-count bound only). At paper scale one baseline is
    /// tens of megabytes, so the entry cap alone can pin gigabytes.
    pub cache_byte_budget: Option<u64>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Idle keep-alive read timeout per connection.
    pub read_timeout: Duration,
    /// Sweep executor threads. Each runs one attacker-chunk at a time
    /// (rayon-parallel inside), so this bounds how many jobs make
    /// *simultaneous* progress; fair-share chunk scheduling keeps jobs
    /// from starving each other even at 1.
    pub sweep_workers: usize,
    /// Directory for terminal job/result records (persisted as manifest
    /// JSON, reloaded on boot). `None` disables persistence.
    pub state_dir: Option<PathBuf>,
    /// Fan-out worker addresses (`host:port` or `http://host:port`). When
    /// non-empty, sweep jobs are sharded across these `bgpsim-server`
    /// instances instead of the local rayon pool; workers whose
    /// compatibility handshake fails are rejected at boot, and the server
    /// degrades to local execution if none survive.
    pub fanout_workers: Vec<String>,
}

impl ServerConfig {
    /// Defaults for `experiment`, binding `127.0.0.1:8080`.
    pub fn new(experiment: ExperimentConfig, scale_name: impl Into<String>) -> ServerConfig {
        ServerConfig {
            experiment,
            scale_name: scale_name.into(),
            addr: "127.0.0.1:8080".to_string(),
            http_workers: 4,
            queue_capacity: 64,
            max_queued_jobs: 16,
            cache_capacity: 32,
            cache_byte_budget: None,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(2),
            sweep_workers: 2,
            state_dir: None,
            fanout_workers: Vec::new(),
        }
    }
}

/// Shared server state: one per `serve` call, borrowed by every worker.
pub(crate) struct ServerState<'t> {
    pub(crate) sim: Simulator<'t>,
    pub(crate) lab: &'t Lab,
    pub(crate) config: &'t ServerConfig,
    pub(crate) cache: BaselineCache,
    pub(crate) jobs: JobRegistry,
    pub(crate) metrics: ServerMetrics,
    pub(crate) telemetry: SweepTelemetry,
    pub(crate) shutdown: &'t AtomicBool,
    pub(crate) fanout: Option<Coordinator>,
}

/// Per-worker reusable simulation scratch space.
pub(crate) struct WorkerCtx {
    pub(crate) ws: Workspace,
    pub(crate) dws: DeltaWorkspace,
}

impl WorkerCtx {
    fn new() -> WorkerCtx {
        WorkerCtx {
            ws: Workspace::new(),
            dws: DeltaWorkspace::new(),
        }
    }
}

/// Runs the server until `shutdown` becomes true (a `POST /v1/shutdown`
/// sets it too), then drains: in-flight requests finish, queued and
/// running sweep jobs are cancelled, worker threads join.
///
/// `on_ready` fires once the listener is bound, with the actual local
/// address — the CLI logs it, tests use it to find the ephemeral port.
///
/// # Errors
///
/// Returns the bind error if the address cannot be bound; accept-time
/// errors are counted and survived.
pub fn serve(
    config: &ServerConfig,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(SocketAddr),
) -> io::Result<()> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Generating the Internet can take seconds at standard scale; bind
    // first so `on_ready` subscribers see the port, but only report ready
    // once the lab can actually answer.
    let lab = Lab::new(config.experiment.clone());
    let fanout = connect_fanout(config, &lab);
    let (jobs, _restore) =
        JobRegistry::with_state_dir(config.max_queued_jobs, config.state_dir.clone());
    // Fan-out mode deals *shards*, not local rayon chunks: hand each sweep
    // job to the coordinator as one whole-pool chunk so the shard plan
    // covers the entire pool (usize::MAX >> 1 avoids the chunk-ring's
    // `start + chunk_size` overflow).
    let jobs = if fanout.is_some() {
        jobs.with_chunk_size(usize::MAX >> 1)
    } else {
        jobs
    };
    let state = ServerState {
        sim: lab.simulator(),
        lab: &lab,
        config,
        cache: BaselineCache::new(config.cache_capacity).with_byte_budget(config.cache_byte_budget),
        jobs,
        metrics: ServerMetrics::new(),
        telemetry: SweepTelemetry::new(),
        shutdown,
        fanout,
    };
    on_ready(addr);
    let (tx, rx) = mpsc::sync_channel::<std::net::TcpStream>(config.queue_capacity.max(1));
    let rx = Mutex::new(rx);
    thread::scope(|scope| {
        for _ in 0..config.http_workers.max(1) {
            scope.spawn(|| http_worker(&state, &rx));
        }
        for _ in 0..config.sweep_workers.max(1) {
            scope.spawn(|| sweep_executor(&state));
        }
        accept_loop(&state, &listener, &tx);
        // Drain: close the job registry (cancels queued + running sweeps,
        // wakes the executor) and drop the sender so workers exit after
        // finishing the connections already queued.
        state.jobs.close();
        drop(tx);
    });
    Ok(())
}

/// Probes `config.fanout_workers` with the compatibility handshake and
/// returns a live [`Coordinator`], or `None` (local execution) when the
/// list is empty or no worker passes — the server boots either way, it
/// just warns and degrades.
fn connect_fanout(config: &ServerConfig, lab: &Lab) -> Option<Coordinator> {
    if config.fanout_workers.is_empty() {
        return None;
    }
    let expect = Handshake {
        schema_version: SCHEMA_VERSION,
        scale: config.scale_name.clone(),
        seed: config.experiment.seed,
        num_ases: lab.topology().num_ases() as u64,
    };
    let coordinator =
        Coordinator::connect(FanoutConfig::new(config.fanout_workers.clone()), &expect);
    if coordinator.live_workers() == 0 {
        eprintln!(
            "warning: none of the {} fan-out workers are reachable and compatible; \
             sweeps will run locally in-process",
            config.fanout_workers.len()
        );
        None
    } else {
        eprintln!(
            "fan-out: {} of {} workers registered",
            coordinator.live_workers(),
            config.fanout_workers.len()
        );
        Some(coordinator)
    }
}

fn accept_loop(
    state: &ServerState<'_>,
    listener: &TcpListener,
    tx: &SyncSender<std::net::TcpStream>,
) {
    while !state.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                state.metrics.connection_accepted();
                match tx.try_send(stream) {
                    Ok(()) => state.metrics.queue_changed(1),
                    Err(TrySendError::Full(stream)) => {
                        state.metrics.connection_rejected();
                        reject_overloaded(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // Transient accept errors (EMFILE, ECONNABORTED): back off and
            // keep serving.
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers 503 on a connection no worker will ever see.
fn reject_overloaded(stream: std::net::TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let body = "{\"error\":\"server overloaded: connection queue full\"}\n";
    let _ = http::write_response_to(&mut stream, &Response::json(503, body.to_string()), true);
}

fn http_worker(state: &ServerState<'_>, rx: &Mutex<Receiver<std::net::TcpStream>>) {
    let mut ctx = WorkerCtx::new();
    loop {
        // Hold the receiver lock only while popping, not while handling.
        let stream = {
            let rx = rx.lock().unwrap();
            rx.recv_timeout(Duration::from_millis(100))
        };
        match stream {
            Ok(stream) => {
                state.metrics.queue_changed(-1);
                handle_connection(state, stream, &mut ctx);
            }
            Err(RecvTimeoutError::Timeout) => {
                // Shutdown latency bound: check the flag between pops even
                // if the sender is still alive.
                if state.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(state: &ServerState<'_>, stream: std::net::TcpStream, ctx: &mut WorkerCtx) {
    let mut conn = HttpConn::new(stream, state.config.read_timeout);
    loop {
        match conn.read_request(state.config.max_body_bytes) {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed { status, reason } => {
                state.metrics.malformed_request();
                let body = format!("{{\"error\":{:?}}}\n", reason);
                let _ = conn.write_response(&Response::json(status, body), true);
                return;
            }
            ReadOutcome::Request(request) => {
                let _guard = state.metrics.begin_request();
                let started = Instant::now();
                let (endpoint, response) = api::dispatch(state, &request, ctx);
                state
                    .metrics
                    .observe(endpoint, response.status, started.elapsed());
                // Close after the response when the client asked for it
                // or the server is draining.
                let close = request.wants_close() || state.shutdown.load(Ordering::Relaxed);
                if conn.write_response(&response, close).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// One sweep executor: pulls attacker-chunks from the fair-share ring and
/// runs each on the rayon pool. The pool has `config.sweep_workers` of
/// these, so several jobs progress simultaneously; the registry's
/// round-robin deal keeps any one job from monopolizing them.
///
/// Each chunk runs under `catch_unwind`: a panicking sweep marks *that
/// job* failed ([`JobRegistry::fail_chunk`]) and the executor keeps
/// serving everyone else — combined with the registry's poison-recovering
/// locks, one bad job cannot take the job layer down.
fn sweep_executor(state: &ServerState<'_>) {
    while let Some(chunk) = state.jobs.next_chunk() {
        match catch_unwind(AssertUnwindSafe(|| run_chunk(state, &chunk))) {
            Ok(ChunkResult::Sweep { rows, cache }) => {
                state.jobs.finish_chunk(&chunk, &rows, cache);
            }
            Ok(ChunkResult::Stream(output)) => state.jobs.finish_stream_chunk(&chunk, output),
            Err(panic) => {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                state
                    .jobs
                    .fail_chunk(&chunk, format!("job executor panicked: {detail}"));
            }
        }
    }
}

/// What one chunk of executor work produced.
enum ChunkResult {
    Sweep { rows: Vec<u32>, cache: &'static str },
    Stream(StreamOutput),
}

/// Runs one chunk: a slice of a sweep's attacker pool, or a stream job's
/// whole event tape.
fn run_chunk(state: &ServerState<'_>, chunk: &Chunk) -> ChunkResult {
    match &chunk.job.spec {
        JobSpec::Sweep(spec) => {
            let (rows, cache) = run_sweep_chunk(state, &chunk.job, spec, chunk);
            ChunkResult::Sweep { rows, cache }
        }
        JobSpec::Stream(spec) => ChunkResult::Stream(run_stream_chunk(state, &chunk.job, spec)),
    }
}

/// Runs one chunk of a job's sweep, updating the job's progress atomics
/// per attack. Cacheable jobs fetch the shared baseline per chunk — after
/// the first chunk that is always a cache hit, and the job's reported
/// outcome keeps the coldest chunk's answer.
fn run_sweep_chunk(
    state: &ServerState<'_>,
    job: &Job,
    spec: &jobs::SweepSpec,
    chunk: &Chunk,
) -> (Vec<u32>, &'static str) {
    if let Some(coordinator) = &state.fanout {
        match run_fanout_chunk(coordinator, job, spec) {
            Ok(rows) => return (rows, "fanout"),
            // The cancel flag is already set, so the registry discards
            // these rows and finalizes Cancelled; only the length matters.
            Err(FanoutError::Cancelled) => return (vec![0; spec.pool.len()], "fanout"),
            Err(e) => {
                eprintln!("warning: fan-out sweep for job {} failed ({e}); falling back to local execution", job.id);
                job.completed.store(0, Ordering::Relaxed);
            }
        }
    }
    let started_at = job.started_at();
    let total = job.total.load(Ordering::Relaxed);
    let progress = |_p: SweepProgress| {
        // Job-level progress, not chunk-level: several chunks of this job
        // may tick concurrently from different executors.
        let done = job.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(started) = started_at {
            let elapsed = started.elapsed();
            let elapsed_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
            job.elapsed_ms.store(elapsed_ms, Ordering::Relaxed);
            let eta_ms = if done == 0 || done > total {
                ETA_UNKNOWN
            } else {
                elapsed_ms.saturating_mul((total - done) as u64) / done as u64
            };
            job.eta_ms.store(eta_ms, Ordering::Relaxed);
        }
    };
    let monitor = SweepMonitor::none()
        .with_telemetry(&state.telemetry)
        .with_progress(&progress)
        .with_cancel(&job.cancel);
    if spec.cacheable {
        let key = BaselineKey {
            target: spec.target.raw(),
            defense_fp: spec.defense_fp,
        };
        let (baseline, outcome) = state.cache.get_or_build(key, || {
            state.telemetry.record_baseline();
            let baseline = Baseline::build(
                state.sim.net(),
                &[Announcement::honest(spec.target)],
                &spec.defense.context_for(spec.target),
                state.sim.policy(),
                &mut Workspace::new(),
            );
            state
                .telemetry
                .record_baseline_bytes(baseline.heap_bytes() as u64);
            baseline
        });
        let rows = state.sim.sweep_chunk_monitored(
            spec.target,
            chunk.attackers(),
            &spec.defense,
            Some(&baseline),
            &monitor,
        );
        (rows, outcome.name())
    } else {
        let rows = state.sim.sweep_chunk_monitored(
            spec.target,
            chunk.attackers(),
            &spec.defense,
            None,
            &monitor,
        );
        (rows, "bypass")
    }
}

/// Ticks a [`Job`]'s progress and shard atomics from coordinator
/// callbacks, and routes the job's cancel flag into the fan-out run.
struct JobShardObserver<'j> {
    job: &'j Job,
    started_at: Option<Instant>,
    total: usize,
}

impl SweepObserver for JobShardObserver<'_> {
    fn on_plan(&self, shards: usize) {
        self.job
            .shards_total
            .store(shards as u64, Ordering::Relaxed);
    }

    fn on_shard_done(&self, attackers: usize) {
        self.job.shards_done.fetch_add(1, Ordering::Relaxed);
        // Progress advances a whole shard at a time: coarser ticks than
        // the local per-attack closure, same completed/ETA contract.
        let done = self.job.completed.fetch_add(attackers, Ordering::Relaxed) + attackers;
        if let Some(started) = self.started_at {
            let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            self.job.elapsed_ms.store(elapsed_ms, Ordering::Relaxed);
            let eta_ms = if done == 0 || done > self.total {
                ETA_UNKNOWN
            } else {
                elapsed_ms.saturating_mul((self.total - done) as u64) / done as u64
            };
            self.job.eta_ms.store(eta_ms, Ordering::Relaxed);
        }
    }

    fn on_retry(&self) {
        self.job.shards_retried.fetch_add(1, Ordering::Relaxed);
    }

    fn on_hedge(&self) {
        self.job.shards_hedged.fetch_add(1, Ordering::Relaxed);
    }

    fn cancelled(&self) -> bool {
        self.job.cancel.load(Ordering::Relaxed)
    }
}

/// Runs a sweep job's (single, whole-pool) chunk through the fan-out
/// coordinator. The merged rows are bit-identical to what the local path
/// would produce — `crates/fanout` pins that equivalence.
fn run_fanout_chunk(
    coordinator: &Coordinator,
    job: &Job,
    spec: &jobs::SweepSpec,
) -> Result<Vec<u32>, FanoutError> {
    let observer = JobShardObserver {
        job,
        started_at: job.started_at(),
        total: job.total.load(Ordering::Relaxed),
    };
    let request = SweepRequest {
        target_asn: spec.target_asn,
        pool_asns: spec.pool_asns.clone(),
        validator_asns: spec.validator_asns.clone(),
        stub_defense: spec.stub_defense,
    };
    coordinator.run_sweep(&request, &observer)
}

/// Runs a stream job's whole event tape through the incremental detector,
/// ticking the job's progress atomics and the stream counter bank per
/// event. The store lock is held only for each event's appends, so
/// `GET /v1/stream/:id/range` reads a consistent mid-stream snapshot
/// between events. Cancellation is polled per event; a cancelled run
/// still reports the summary of the prefix it processed (the registry
/// discards it, matching sweep semantics).
fn run_stream_chunk(state: &ServerState<'_>, job: &Job, spec: &StreamSpec) -> StreamOutput {
    let topo = state.sim.topology();
    // Same probe cohort as the CLI `bgpsim stream` runner (fig7 parity):
    // the live feed and the batch detection experiment watch the internet
    // through the same monitors.
    let degree_threshold = ((500.0 * state.lab.config().scale().sqrt()).round() as usize).max(4);
    let sets = vec![
        ProbeSet::tier1(topo),
        ProbeSet::bgpmon_like(topo, 24, state.lab.config().seed ^ 0xb69),
        ProbeSet::degree_at_least(topo, degree_threshold),
    ];
    let mut detector =
        StreamDetector::new(&state.sim, &sets, &spec.plan, DetectorMode::Incremental);
    let started_at = job.started_at();
    let total = job.total.load(Ordering::Relaxed);
    let mut processed = 0u64;
    for event in &spec.plan.events {
        if job.cancel.load(Ordering::Relaxed) {
            break;
        }
        {
            let mut store = jobs::lock_recover(&spec.store);
            detector.apply(event, &mut store);
        }
        processed += 1;
        state.metrics.stream_event();
        let done = job.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(started) = started_at {
            let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            job.elapsed_ms.store(elapsed_ms, Ordering::Relaxed);
            let eta_ms = if done == 0 || done > total {
                ETA_UNKNOWN
            } else {
                elapsed_ms.saturating_mul((total - done) as u64) / done as u64
            };
            job.eta_ms.store(eta_ms, Ordering::Relaxed);
        }
    }
    let records = detector.finish();
    let latencies: Vec<u64> = records.iter().filter_map(|h| h.latency()).collect();
    let output = StreamOutput {
        events: processed,
        injected: records.len() as u64,
        detected: latencies.len() as u64,
        mean_latency_events: if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64)
        },
        max_latency_events: latencies.iter().max().copied(),
    };
    state
        .metrics
        .stream_finished(output.injected, output.detected);
    output
}

/// Handle to a server running on a background thread (tests and the
/// `examples/loadgen` harness use this; the CLI runs [`serve`] directly
/// on the main thread).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared shutdown flag.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests shutdown and joins the server thread.
    ///
    /// # Errors
    ///
    /// Propagates the server's exit error, mapping a panicked server
    /// thread to [`io::ErrorKind::Other`].
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Boots a server on a background thread and waits until it is ready to
/// answer requests.
///
/// # Errors
///
/// Returns the boot error (typically a failed bind) if the server exits
/// before reporting ready.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let shutdown = Arc::new(AtomicBool::new(false));
    let (ready_tx, ready_rx) = mpsc::channel::<SocketAddr>();
    let thread_shutdown = Arc::clone(&shutdown);
    let join = thread::Builder::new()
        .name("bgpsim-server".to_string())
        .spawn(move || {
            serve(&config, &thread_shutdown, move |addr| {
                let _ = ready_tx.send(addr);
            })
        })?;
    match ready_rx.recv() {
        Ok(addr) => Ok(ServerHandle {
            addr,
            shutdown,
            join,
        }),
        Err(_) => {
            // The server exited before signalling ready: surface its error.
            match join.join() {
                Ok(Ok(())) => Err(io::Error::other("server exited before becoming ready")),
                Ok(Err(e)) => Err(e),
                Err(_) => Err(io::Error::other("server thread panicked during boot")),
            }
        }
    }
}
