//! End-to-end tests against a live `bgpsim-server` on an ephemeral port.
//!
//! Each test boots its own tiny (300-AS) lab so cache and job counters
//! start from zero, talks real HTTP over a `TcpStream`, and — where the
//! contract demands it — replays the same question against a direct
//! `Simulator` built from the identical `ExperimentConfig` to pin the
//! service's answers to the library's, value for value.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bgpsim_core::manifest::Json;
use bgpsim_core::{ExperimentConfig, Lab};
use bgpsim_hijack::{Attack, Defense};
use bgpsim_server::{spawn, ServerConfig, ServerHandle};
use bgpsim_topology::gen::InternetParams;

/// A unique per-test scratch directory (std-only; no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bgpsim-service-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny_experiment() -> ExperimentConfig {
    ExperimentConfig {
        params: InternetParams::tiny(),
        ..ExperimentConfig::quick()
    }
}

fn tiny_server() -> ServerHandle {
    let mut config = ServerConfig::new(tiny_experiment(), "custom");
    config.addr = "127.0.0.1:0".to_string();
    spawn(config).expect("server boots")
}

/// Blocking single-request HTTP client; opens a fresh connection each
/// time so tests cannot accidentally depend on keep-alive state.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, response_body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, response_body.to_string())
}

fn json(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, text) = http(addr, method, path, body);
    let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}"));
    (status, parsed)
}

/// Like [`json`] but with one extra request header (`"Name: value"`).
fn json_with_header(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    header: &str,
    body: &str,
) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n{header}\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, response_body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let parsed = Json::parse(response_body).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}"));
    (status, parsed)
}

fn get<'a>(json: &'a Json, key: &str) -> &'a Json {
    match json {
        Json::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key {key:?}")),
        other => panic!("expected object with {key:?}, got {other:?}"),
    }
}

fn num(json: &Json) -> f64 {
    match json {
        Json::Num(n) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn str_of(json: &Json) -> &str {
    match json {
        Json::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn u32s(json: &Json) -> Vec<u32> {
    match json {
        Json::Arr(items) => items.iter().map(|v| num(v) as u32).collect(),
        other => panic!("expected array, got {other:?}"),
    }
}

/// Reads one counter value out of the Prometheus exposition.
fn metric(addr: std::net::SocketAddr, name_and_labels: &str) -> u64 {
    let (status, text) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    text.lines()
        .find(|line| line.starts_with(name_and_labels))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name_and_labels:?} not found"))
}

fn wait_done(addr: std::net::SocketAddr, job: &str) -> Json {
    for _ in 0..600 {
        let (status, body) = json(addr, "GET", &format!("/v1/jobs/{job}"), "");
        assert_eq!(status, 200);
        let state = str_of(get(&body, "state")).to_string();
        if state == "done" {
            return body;
        }
        assert!(
            state == "queued" || state == "running",
            "job {job} ended as {state:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job {job} did not finish");
}

#[test]
fn attack_matches_direct_simulator_and_warm_cache_is_faster() {
    let server = tiny_server();
    let addr = server.addr();
    let (status, healthz) = json(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(str_of(get(&healthz, "status")), "ok");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    let aggressive = num(get(get(&healthz, "cast"), "aggressive_attacker")) as u32;
    // A stub attacker under stub defense is filtered at its providers, so
    // its delta replay is near-free and the cold/warm gap isolates the
    // baseline build the cache exists to amortize.
    let cheap_attacker = num(get(get(&healthz, "cast"), "resistant_stub")) as u32;
    let cheap_body = format!(
        "{{\"attacker\":{cheap_attacker},\"target\":{target},\"defense\":{{\"stub_defense\":true}}}}"
    );

    let (status, cold) = json(addr, "POST", "/v1/attacks", &cheap_body);
    assert_eq!(status, 200, "cold attack failed: {cold:?}");
    assert_eq!(str_of(get(get(&cold, "meta"), "cache")), "miss");
    let cold_wall = num(get(get(&cold, "meta"), "wall_us"));

    // Warm repeats hit the cache and skip the honest re-convergence.
    let mut warm_walls = Vec::new();
    for _ in 0..9 {
        let (status, warm) = json(addr, "POST", "/v1/attacks", &cheap_body);
        assert_eq!(status, 200);
        assert_eq!(str_of(get(get(&warm, "meta"), "cache")), "hit");
        assert_eq!(get(&warm, "result"), get(&cold, "result"));
        warm_walls.push(num(get(get(&warm, "meta"), "wall_us")));
    }
    warm_walls.sort_by(f64::total_cmp);
    let warm_p50 = warm_walls[warm_walls.len() / 2];
    assert!(
        cold_wall >= 2.0 * warm_p50,
        "warm cache not faster: cold {cold_wall} µs vs warm p50 {warm_p50} µs"
    );

    // A different attacker against the same (target, defense) reuses the
    // baseline, and the service's answer must be value-identical to the
    // library's for both attacks.
    let (status, big) = json(
        addr,
        "POST",
        "/v1/attacks",
        &format!(
        "{{\"attacker\":{aggressive},\"target\":{target},\"defense\":{{\"stub_defense\":true}}}}"
    ),
    );
    assert_eq!(status, 200);
    assert_eq!(str_of(get(get(&big, "meta"), "cache")), "hit");

    let lab = Lab::new(tiny_experiment());
    let sim = lab.simulator();
    let topo = lab.topology();
    let t = topo.index_of(bgpsim_topology::AsId::new(target)).unwrap();
    let defense = Defense::none().with_stub_defense();
    for (attacker, response) in [(cheap_attacker, &cold), (aggressive, &big)] {
        let a = topo.index_of(bgpsim_topology::AsId::new(attacker)).unwrap();
        let direct = sim.run(Attack::origin(a, t), &defense);
        let result = get(response, "result");
        assert_eq!(
            num(get(result, "pollution_count")) as usize,
            direct.pollution_count()
        );
        // `polluted` is index-sorted and the service renders it in the
        // same order, so plain equality pins the full set.
        let direct_polluted: Vec<u32> = direct
            .polluted
            .iter()
            .map(|&ix| topo.id_of(ix).value())
            .collect();
        assert_eq!(u32s(get(result, "polluted")), direct_polluted);
    }

    assert_eq!(
        metric(
            addr,
            "bgpsim_baseline_cache_lookups_total{outcome=\"miss\"}"
        ),
        1
    );
    assert_eq!(
        metric(addr, "bgpsim_baseline_cache_lookups_total{outcome=\"hit\"}"),
        10
    );
    server.stop().expect("clean shutdown");
}

#[test]
fn concurrent_identical_sweeps_build_one_baseline_and_match_direct() {
    let server = tiny_server();
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    let body = format!(
        "{{\"target\":{target},\"defense\":{{\"stub_defense\":true}},\"attackers\":\"transit\"}}"
    );

    // Submit two identical sweeps back-to-back before either runs.
    let (status, first) = json(addr, "POST", "/v1/sweeps", &body);
    assert_eq!(status, 202, "submit failed: {first:?}");
    let (status, second) = json(addr, "POST", "/v1/sweeps", &body);
    assert_eq!(status, 202, "submit failed: {second:?}");
    let first_id = str_of(get(&first, "id")).to_string();
    let second_id = str_of(get(&second, "id")).to_string();
    wait_done(addr, &first_id);
    wait_done(addr, &second_id);

    // Exactly one baseline build; the second sweep reused it.
    assert_eq!(metric(addr, "bgpsim_sim_baselines_built_total"), 1);
    assert_eq!(
        metric(
            addr,
            "bgpsim_baseline_cache_lookups_total{outcome=\"miss\"}"
        ),
        1
    );

    let (status, results) = json(addr, "GET", &format!("/v1/results/{first_id}"), "");
    assert_eq!(status, 200);
    let (status, results2) = json(addr, "GET", &format!("/v1/results/{second_id}"), "");
    assert_eq!(status, 200);

    // Identical question, identical answer — and both identical to a
    // direct library sweep over the same pool.
    let lab = Lab::new(tiny_experiment());
    let sim = lab.simulator();
    let topo = lab.topology();
    let t = topo.index_of(bgpsim_topology::AsId::new(target)).unwrap();
    let pool: Vec<_> = lab
        .strided_transit_attackers()
        .into_iter()
        .filter(|&a| a != t)
        .collect();
    let direct = sim.sweep_attackers(t, &pool, &Defense::none().with_stub_defense());
    let direct_attackers: Vec<u32> = pool.iter().map(|&ix| topo.id_of(ix).value()).collect();

    for response in [&results, &results2] {
        let result = get(response, "result");
        assert_eq!(u32s(get(result, "attackers")), direct_attackers);
        assert_eq!(u32s(get(result, "counts")), direct);
    }
    assert_eq!(str_of(get(get(&results, "meta"), "cache")), "miss");
    assert_eq!(str_of(get(get(&results2, "meta"), "cache")), "hit");
    server.stop().expect("clean shutdown");
}

#[test]
fn full_queue_answers_429() {
    let mut config = ServerConfig::new(tiny_experiment(), "custom");
    config.addr = "127.0.0.1:0".to_string();
    config.max_queued_jobs = 1;
    let server = spawn(config).expect("server boots");
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    // Undefended full-pool sweeps take the slow scratch path, so the
    // single executor falls behind a burst of submissions and the
    // one-deep queue must overflow. Submissions take ~µs, sweeps ~ms:
    // absorbing all ten would need the executor to outrun the client.
    let body = format!("{{\"target\":{target},\"attackers\":\"all\"}}");
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for _ in 0..10 {
        let (status, response) = json(addr, "POST", "/v1/sweeps", &body);
        match status {
            202 => accepted.push(str_of(get(&response, "id")).to_string()),
            429 => rejected += 1,
            other => panic!("unexpected status {other}: {response:?}"),
        }
    }
    assert!(
        rejected > 0,
        "ten instant submissions never overflowed the one-deep queue"
    );
    for id in &accepted {
        wait_done(addr, id);
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn cancelled_job_reaches_a_terminal_state() {
    let server = tiny_server();
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    let body = format!("{{\"target\":{target}}}");
    // Two submissions: the second is queued behind the first, so the
    // DELETE usually lands before it starts (but a fast executor may
    // legitimately finish it — both outcomes are valid).
    let (_, first) = json(addr, "POST", "/v1/sweeps", &body);
    let (_, second) = json(addr, "POST", "/v1/sweeps", &body);
    let first_id = str_of(get(&first, "id")).to_string();
    let second_id = str_of(get(&second, "id")).to_string();
    let (status, cancelled) = json(addr, "DELETE", &format!("/v1/jobs/{second_id}"), "");
    assert_eq!(status, 200, "cancel failed: {cancelled:?}");
    wait_done(addr, &first_id);
    let mut state = String::new();
    for _ in 0..600 {
        let (_, job) = json(addr, "GET", &format!("/v1/jobs/{second_id}"), "");
        state = str_of(get(&job, "state")).to_string();
        if state == "cancelled" || state == "done" {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        state == "cancelled" || state == "done",
        "cancelled job stuck in {state:?}"
    );
    if state == "cancelled" {
        // No results for a cancelled job — the conflict names the state.
        let (status, body) = json(addr, "GET", &format!("/v1/results/{second_id}"), "");
        assert_eq!(status, 409, "expected conflict, got: {body:?}");
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn error_paths() {
    let mut config = ServerConfig::new(tiny_experiment(), "custom");
    config.addr = "127.0.0.1:0".to_string();
    config.max_body_bytes = 512;
    let server = spawn(config).expect("server boots");
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;

    let (status, _) = http(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/v1/attacks", "");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "POST", "/v1/attacks", "{not json");
    assert_eq!(status, 400);
    let (status, _) = http(
        addr,
        "POST",
        "/v1/attacks",
        "{\"attacker\":999999,\"target\":1}",
    );
    assert_eq!(status, 422);
    let (status, _) = http(
        addr,
        "POST",
        "/v1/attacks",
        &format!("{{\"attacker\":{target},\"target\":{target}}}"),
    );
    assert_eq!(status, 422);
    let (status, _) = http(addr, "GET", "/v1/jobs/job-999", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/v1/jobs/banana", "");
    assert_eq!(status, 404);
    // Declare an over-cap body without sending it: the server rejects on
    // the Content-Length alone, and not sending the payload avoids the
    // TCP reset a close-with-unread-data would trigger.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /v1/attacks HTTP/1.1\r\nHost: test\r\nContent-Length: 4096\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("413 response");
    let raw = String::from_utf8_lossy(&raw);
    assert!(raw.starts_with("HTTP/1.1 413"), "expected 413, got: {raw}");
    // Framing errors are counted for /v1/metrics.
    assert!(metric(addr, "bgpsim_http_malformed_requests_total") >= 1);
    server.stop().expect("clean shutdown");
}

#[test]
fn batch_attacks_match_singles_with_per_item_errors() {
    let server = tiny_server();
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    let stub = num(get(get(&healthz, "cast"), "resistant_stub")) as u32;
    let aggressive = num(get(get(&healthz, "cast"), "aggressive_attacker")) as u32;

    // The same two questions, asked one at a time...
    let single = |attacker: u32, defense: &str| {
        let (status, response) = json(
            addr,
            "POST",
            "/v1/attacks",
            &format!("{{\"attacker\":{attacker},\"target\":{target},\"defense\":{defense}}}"),
        );
        assert_eq!(status, 200, "single attack failed: {response:?}");
        response
    };
    let single_defended = single(stub, "{\"stub_defense\":true}");
    let single_undefended = single(aggressive, "null");

    // ...then as one batch, with two broken entries mixed in. The batch
    // default defense covers entry 0; entry 1 overrides it to none.
    let batch_body = format!(
        "{{\"defense\":{{\"stub_defense\":true}},\"attacks\":[\
         {{\"attacker\":{stub},\"target\":{target}}},\
         {{\"attacker\":{aggressive},\"target\":{target},\"defense\":null}},\
         {{\"attacker\":999999,\"target\":{target}}},\
         {{\"attacker\":{target},\"target\":{target}}}]}}"
    );
    let (status, batch) = json(addr, "POST", "/v1/attacks:batch", &batch_body);
    assert_eq!(status, 200, "batch failed: {batch:?}");
    let results = match get(&batch, "results") {
        Json::Arr(items) => items.clone(),
        other => panic!("results must be an array, got {other:?}"),
    };
    assert_eq!(results.len(), 4, "one result slot per input entry");

    // Valid slots carry byte-identical `result` objects to the single
    // endpoint's answers for the same questions.
    assert_eq!(get(&results[0], "result"), get(&single_defended, "result"));
    assert_eq!(
        str_of(get(get(&results[0], "meta"), "engine")),
        str_of(get(get(&single_defended, "meta"), "engine"))
    );
    assert_eq!(
        get(&results[1], "result"),
        get(&single_undefended, "result")
    );
    // Broken slots answer in place without sinking the batch.
    assert_eq!(num(get(&results[2], "status")) as u16, 422);
    assert!(str_of(get(&results[2], "error")).contains("unknown ASN"));
    assert_eq!(num(get(&results[3], "status")) as u16, 422);

    let meta = get(&batch, "meta");
    assert_eq!(num(get(meta, "items")) as usize, 4);
    assert_eq!(num(get(meta, "ok")) as usize, 2);
    assert_eq!(num(get(meta, "failed")) as usize, 2);
    // Entry 0 is the only baseline-eligible entry (entry 1 is
    // undefended on the Auto engine → scratch path).
    assert_eq!(num(get(meta, "baseline_groups")) as usize, 1);

    // Envelope-level problems fail the whole request.
    let (status, _) = http(addr, "POST", "/v1/attacks:batch", "{\"attacks\":[]}");
    assert_eq!(status, 422);
    let (status, _) = http(addr, "POST", "/v1/attacks:batch", "{\"attacks\":7}");
    assert_eq!(status, 422);
    let (status, _) = http(addr, "POST", "/v1/attacks:batch", "{}");
    assert_eq!(status, 422);

    // The endpoint has its own metrics label.
    assert_eq!(
        metric(
            addr,
            "bgpsim_http_requests_total{endpoint=\"attacks_batch\",code=\"2xx\"}"
        ),
        1
    );
    server.stop().expect("clean shutdown");
}

#[test]
fn concurrent_sweeps_make_joint_progress_under_fair_share() {
    // A 1000-AS lab (vs the usual 300) makes each scratch attack slow
    // enough that three full-pool sweeps visibly outlast the short job's
    // poll loop on any machine.
    let experiment = ExperimentConfig {
        params: InternetParams::sized(1000),
        ..ExperimentConfig::quick()
    };
    let mut config = ServerConfig::new(experiment, "custom");
    config.addr = "127.0.0.1:0".to_string();
    // One executor makes the fairness property sharp: without chunked
    // round-robin dealing, a single worker would run the whole long job
    // before touching the short one.
    config.sweep_workers = 1;
    let server = spawn(config).expect("server boots");
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    let attackers = u32s(get(&healthz, "sample_attackers"));
    let short_pool: Vec<String> = attackers.iter().take(3).map(u32::to_string).collect();

    // Three paper-shaped long jobs (every AS attacks, scratch path)
    // followed by a three-attacker quick check. Under FIFO whole-job
    // scheduling the single worker would drain all three long sweeps
    // before touching the short one; under fair-share the short job's one
    // chunk is dealt in the first round-robin lap.
    let long_body = format!("{{\"target\":{target},\"attackers\":\"all\"}}");
    let mut long_ids = Vec::new();
    let mut long_total = 0u64;
    for _ in 0..3 {
        let (status, long) = json(addr, "POST", "/v1/sweeps", &long_body);
        assert_eq!(status, 202, "long submit failed: {long:?}");
        long_ids.push(str_of(get(&long, "id")).to_string());
        long_total = num(get(&long, "total")) as u64;
    }
    assert!(
        long_total > 128,
        "long job too small ({long_total} attackers) to span multiple chunks"
    );
    let (status, short) = json(
        addr,
        "POST",
        "/v1/sweeps",
        &format!(
            "{{\"target\":{target},\"attackers\":[{}]}}",
            short_pool.join(",")
        ),
    );
    assert_eq!(status, 202, "short submit failed: {short:?}");
    let short_id = str_of(get(&short, "id")).to_string();

    // The short job finishes while the long backlog is still going.
    wait_done(addr, &short_id);
    let unfinished = long_ids
        .iter()
        .filter(|id| {
            let (_, job) = json(addr, "GET", &format!("/v1/jobs/{id}"), "");
            str_of(get(&job, "state")) != "done"
        })
        .count();
    assert!(
        unfinished > 0,
        "all three long sweeps finished before the short one — \
         fair-share never interleaved them"
    );
    for id in &long_ids {
        wait_done(addr, id);
    }

    // Every job answered correctly despite the interleaving.
    let (status, short_results) = json(addr, "GET", &format!("/v1/results/{short_id}"), "");
    assert_eq!(status, 200);
    assert_eq!(u32s(get(get(&short_results, "result"), "counts")).len(), 3);
    for id in &long_ids {
        let (status, long_results) = json(addr, "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 200);
        assert_eq!(
            u32s(get(get(&long_results, "result"), "counts")).len() as u64,
            long_total
        );
    }
    // The scheduler telemetry shows the chunked dealing: the long job
    // alone spans multiple 64-attacker chunks.
    assert!(
        metric(addr, "bgpsim_jobs_chunks_total") >= 4,
        "expected several chunks, scheduler reported {}",
        metric(addr, "bgpsim_jobs_chunks_total")
    );
    server.stop().expect("clean shutdown");
}

#[test]
fn results_survive_a_restart_byte_identically() {
    let state_dir = scratch_dir("restart");
    let mut config = ServerConfig::new(tiny_experiment(), "custom");
    config.addr = "127.0.0.1:0".to_string();
    config.state_dir = Some(state_dir.clone());
    let server = spawn(config.clone()).expect("server boots");
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;
    let attackers = u32s(get(&healthz, "sample_attackers"));
    let pool: Vec<String> = attackers.iter().take(4).map(u32::to_string).collect();
    let (status, submitted) = json(
        addr,
        "POST",
        "/v1/sweeps",
        &format!(
            "{{\"target\":{target},\"defense\":{{\"stub_defense\":true}},\
             \"attackers\":[{}]}}",
            pool.join(",")
        ),
    );
    assert_eq!(status, 202, "submit failed: {submitted:?}");
    let id = str_of(get(&submitted, "id")).to_string();
    wait_done(addr, &id);
    let (status, before) = http(addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200);
    server.stop().expect("clean shutdown");

    // Same state dir, fresh process state: the terminal record reloads
    // and the results body is byte-identical.
    let server = spawn(config).expect("restarted server boots");
    let addr = server.addr();
    let (status, after) = http(addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200, "results lost across restart: {after}");
    assert_eq!(before, after, "results changed across restart");
    let (_, job) = json(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(str_of(get(&job, "state")), "done");
    // Terminal jobs never report a stale ETA.
    assert_eq!(get(&job, "eta_ms"), &Json::Null);
    assert_eq!(metric(addr, "bgpsim_jobs_restored_total"), 1);
    // A restored record is retained, not rescheduled: nothing ran here.
    assert_eq!(metric(addr, "bgpsim_jobs_chunks_total"), 0);
    server.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn corrupt_state_files_quarantine_instead_of_failing_boot() {
    let state_dir = scratch_dir("quarantine");
    std::fs::write(state_dir.join("job-7.json"), b"{definitely not json").unwrap();
    let mut config = ServerConfig::new(tiny_experiment(), "custom");
    config.addr = "127.0.0.1:0".to_string();
    config.state_dir = Some(state_dir.clone());
    let server = spawn(config).expect("server boots despite corrupt state");
    let addr = server.addr();
    let (status, healthz) = json(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(str_of(get(&healthz, "status")), "ok");
    // The unreadable file moved aside rather than being deleted or
    // crashing the boot; nothing was restored from it.
    assert!(!state_dir.join("job-7.json").exists());
    assert!(state_dir.join("quarantine").join("job-7.json").exists());
    assert_eq!(metric(addr, "bgpsim_state_files_quarantined_total"), 1);
    assert_eq!(metric(addr, "bgpsim_jobs_restored_total"), 0);
    let (status, _) = http(addr, "GET", "/v1/results/job-7", "");
    assert_eq!(status, 404);
    server.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn stream_round_trip_ranges_and_summary() {
    let server = tiny_server();
    let addr = server.addr();
    let (status, submitted) = json(addr, "POST", "/v1/stream", "{\"events\":400,\"targets\":2}");
    assert_eq!(status, 202, "stream submit failed: {submitted:?}");
    assert_eq!(str_of(get(&submitted, "kind")), "stream");
    assert_eq!(num(get(&submitted, "total")), 400.0);
    let injected = num(get(&submitted, "injected"));
    assert!(injected > 0.0, "seeded tape should inject hijacks");
    assert_eq!(u32s(get(&submitted, "targets")).len(), 2);
    let id = str_of(get(&submitted, "id")).to_string();
    assert_eq!(
        str_of(get(&submitted, "range")),
        format!("/v1/stream/{id}/range")
    );
    let job = wait_done(addr, &id);
    assert_eq!(str_of(get(&job, "kind")), "stream");
    assert_eq!(num(get(&job, "completed")), 400.0);

    // Raw range over the whole tape: pollution samples one per event, in
    // seq order, with no ring eviction at this size.
    let (status, range) = json(addr, "GET", &format!("/v1/stream/{id}/range"), "");
    assert_eq!(status, 200, "range failed: {range:?}");
    assert_eq!(str_of(get(&range, "series")), "pollution");
    assert_eq!(num(get(&range, "appended")), 400.0);
    assert_eq!(num(get(&range, "evicted")), 0.0);
    let samples = match get(&range, "samples") {
        Json::Arr(items) => items,
        other => panic!("expected samples array, got {other:?}"),
    };
    assert_eq!(samples.len(), 400);
    let seqs: Vec<u64> = samples
        .iter()
        .map(|s| match s {
            Json::Arr(pair) => num(&pair[0]) as u64,
            other => panic!("expected [seq, value] pair, got {other:?}"),
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs out of order");

    // Windowed aggregation: 8 full 50-event windows, each with stats.
    let (status, agg) = json(
        addr,
        "GET",
        &format!("/v1/stream/{id}/range?agg=window&window=50&from=0&to=399"),
        "",
    );
    assert_eq!(status, 200);
    let windows = match get(&agg, "windows") {
        Json::Arr(items) => items,
        other => panic!("expected windows array, got {other:?}"),
    };
    assert_eq!(windows.len(), 8);
    for w in windows {
        assert_eq!(num(get(w, "count")), 50.0);
        assert!(!matches!(get(w, "mean"), Json::Null));
    }

    // A series no event ever touched answers 404, not empty data.
    let (status, _) = http(
        addr,
        "GET",
        &format!("/v1/stream/{id}/range?series=no-such-series"),
        "",
    );
    assert_eq!(status, 404);

    // The summary matches the submit-time ground truth.
    let (status, results) = json(addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200, "results failed: {results:?}");
    assert_eq!(str_of(get(&results, "kind")), "stream");
    let result = get(&results, "result");
    assert_eq!(num(get(result, "events")), 400.0);
    assert_eq!(num(get(result, "injected")), injected);
    let detected = num(get(result, "detected"));
    assert!(detected <= injected);
    if detected > 0.0 {
        assert!(num(get(result, "mean_latency_events")) >= 0.0);
    } else {
        assert_eq!(get(result, "mean_latency_events"), &Json::Null);
    }

    // Per-stream counters landed on /v1/metrics.
    assert_eq!(metric(addr, "bgpsim_stream_events_total"), 400);
    assert_eq!(metric(addr, "bgpsim_stream_runs_total"), 1);
    assert_eq!(
        metric(addr, "bgpsim_stream_hijacks_injected_total"),
        injected as u64
    );
    assert_eq!(
        metric(addr, "bgpsim_stream_hijacks_detected_total"),
        detected as u64
    );

    // /range on a sweep job is a category error, not a 404.
    let target = {
        let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
        num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32
    };
    let (status, sweep) = json(
        addr,
        "POST",
        "/v1/sweeps",
        &format!("{{\"target\":{target}}}"),
    );
    assert_eq!(status, 202);
    let sweep_id = str_of(get(&sweep, "id")).to_string();
    let (status, _) = http(addr, "GET", &format!("/v1/stream/{sweep_id}/range"), "");
    assert_eq!(status, 409);
    server.stop().expect("clean shutdown");
}

#[test]
fn restored_streams_keep_their_summary_but_not_their_tape() {
    let state_dir = scratch_dir("stream-restart");
    let mut config = ServerConfig::new(tiny_experiment(), "custom");
    config.addr = "127.0.0.1:0".to_string();
    config.state_dir = Some(state_dir.clone());
    let server = spawn(config.clone()).expect("server boots");
    let addr = server.addr();
    let (status, submitted) = json(addr, "POST", "/v1/stream", "{\"events\":150}");
    assert_eq!(status, 202, "stream submit failed: {submitted:?}");
    let id = str_of(get(&submitted, "id")).to_string();
    wait_done(addr, &id);
    let (status, before) = http(addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200);
    server.stop().expect("clean shutdown");

    let server = spawn(config).expect("restarted server boots");
    let addr = server.addr();
    // The summary survives byte-identical...
    let (status, after) = http(addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200, "stream summary lost across restart: {after}");
    assert_eq!(before, after, "stream summary changed across restart");
    // ...but per-event samples are summary-only by design: permanently
    // gone, which is 410, not 404.
    let (status, _) = http(addr, "GET", &format!("/v1/stream/{id}/range"), "");
    assert_eq!(status, 410);
    server.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn http_shutdown_drains_the_server() {
    let server = tiny_server();
    let addr = server.addr();
    let (status, body) = json(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(str_of(get(&body, "status")), "shutting down");
    // The accept loop notices the flag and the whole scope drains;
    // stop() then joins an already-exiting thread.
    server.stop().expect("clean drain after HTTP shutdown");
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A listener backlog race can accept one last connection;
            // what matters is that nothing answers.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            s.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n").ok();
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        }
    );
}

#[test]
fn idempotent_submissions_replay_the_original_job() {
    let server = tiny_server();
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;

    // Body-field variant on /v1/sweeps: the duplicate answers 200 with
    // the original job id and schedules nothing new.
    let body = format!(
        "{{\"target\":{target},\"attackers\":\"transit\",\"idempotency_key\":\"sweep-a\"}}"
    );
    let (status, first) = json(addr, "POST", "/v1/sweeps", &body);
    assert_eq!(status, 202, "first keyed submit: {first:?}");
    let (status, dup) = json(addr, "POST", "/v1/sweeps", &body);
    assert_eq!(status, 200, "duplicate keyed submit: {dup:?}");
    assert_eq!(str_of(get(&first, "id")), str_of(get(&dup, "id")));

    // A different key is a different job.
    let other = body.replace("sweep-a", "sweep-b");
    let (status, second) = json(addr, "POST", "/v1/sweeps", &other);
    assert_eq!(status, 202, "distinct key must schedule: {second:?}");
    assert_ne!(str_of(get(&first, "id")), str_of(get(&second, "id")));

    // Header variant wins over an unkeyed body.
    let plain = format!("{{\"target\":{target},\"attackers\":\"transit\"}}");
    let (status, h1) = json_with_header(
        addr,
        "POST",
        "/v1/sweeps",
        "Idempotency-Key: sweep-hdr",
        &plain,
    );
    assert_eq!(status, 202, "header-keyed submit: {h1:?}");
    let (status, h2) = json_with_header(
        addr,
        "POST",
        "/v1/sweeps",
        "Idempotency-Key: sweep-hdr",
        &plain,
    );
    assert_eq!(status, 200, "header-keyed duplicate: {h2:?}");
    assert_eq!(str_of(get(&h1, "id")), str_of(get(&h2, "id")));

    // /v1/stream honours the same contract.
    let stream_body = "{\"events\":50,\"targets\":1,\"idempotency_key\":\"tape-a\"}";
    let (status, s1) = json(addr, "POST", "/v1/stream", stream_body);
    assert_eq!(status, 202, "keyed stream submit: {s1:?}");
    let (status, s2) = json(addr, "POST", "/v1/stream", stream_body);
    assert_eq!(status, 200, "duplicate stream submit: {s2:?}");
    assert_eq!(str_of(get(&s1, "id")), str_of(get(&s2, "id")));

    // Malformed keys are rejected up front, not silently unkeyed.
    let (status, err) = json(
        addr,
        "POST",
        "/v1/sweeps",
        &format!("{{\"target\":{target},\"attackers\":\"transit\",\"idempotency_key\":\"  \"}}"),
    );
    assert_eq!(status, 422, "blank key must be rejected: {err:?}");
    let (status, err) = json(
        addr,
        "POST",
        "/v1/sweeps",
        &format!("{{\"target\":{target},\"attackers\":\"transit\",\"idempotency_key\":7}}"),
    );
    assert_eq!(status, 422, "non-string key must be rejected: {err:?}");

    for id in [
        str_of(get(&first, "id")).to_string(),
        str_of(get(&second, "id")).to_string(),
        str_of(get(&h1, "id")).to_string(),
        str_of(get(&s1, "id")).to_string(),
    ] {
        wait_done(addr, &id);
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn jobs_list_enumerates_newest_first() {
    let server = tiny_server();
    let addr = server.addr();
    let (_, healthz) = json(addr, "GET", "/v1/healthz", "");
    let target = num(get(get(&healthz, "cast"), "vulnerable_stub")) as u32;

    // Empty registry lists cleanly.
    let (status, empty) = json(addr, "GET", "/v1/jobs", "");
    assert_eq!(status, 200);
    assert_eq!(num(get(&empty, "total")), 0.0);
    assert!(matches!(get(&empty, "truncated"), Json::Bool(false)));

    let mut ids = Vec::new();
    for key in ["list-a", "list-b", "list-c"] {
        let body = format!(
            "{{\"target\":{target},\"attackers\":\"transit\",\"idempotency_key\":\"{key}\"}}"
        );
        let (status, submitted) = json(addr, "POST", "/v1/sweeps", &body);
        assert_eq!(status, 202, "{submitted:?}");
        ids.push(str_of(get(&submitted, "id")).to_string());
    }
    for id in &ids {
        wait_done(addr, id);
    }

    let (status, listing) = json(addr, "GET", "/v1/jobs", "");
    assert_eq!(status, 200);
    assert_eq!(num(get(&listing, "total")), 3.0);
    assert!(matches!(get(&listing, "truncated"), Json::Bool(false)));
    let jobs = match get(&listing, "jobs") {
        Json::Arr(items) => items,
        other => panic!("expected jobs array, got {other:?}"),
    };
    assert_eq!(jobs.len(), 3);
    // Newest first: the listing reverses submission order, and each
    // entry carries the same shape as GET /v1/jobs/{id}.
    let listed: Vec<&str> = jobs.iter().map(|j| str_of(get(j, "id"))).collect();
    let newest_first: Vec<&str> = ids.iter().rev().map(String::as_str).collect();
    assert_eq!(listed, newest_first);
    for job in jobs {
        assert_eq!(str_of(get(job, "kind")), "sweep");
        assert_eq!(str_of(get(job, "state")), "done");
    }
    server.stop().expect("clean shutdown");
}

#[test]
fn healthz_reports_fleet_identity_and_capacity() {
    let server = tiny_server();
    let addr = server.addr();
    let (status, healthz) = json(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);

    // Fleet handshake identity: a fan-out coordinator matches on
    // (schema_version, scale, seed, num_ases), all of which must be
    // advertised here.
    assert_eq!(num(get(&healthz, "seed")), tiny_experiment().seed as f64);
    assert_eq!(str_of(get(&healthz, "scale")), "custom");
    assert!(num(get(&healthz, "num_ases")) > 0.0);

    // Capacity introspection: executor width, cache byte budget (null
    // when unbounded), and whether terminal jobs survive a restart.
    assert!(num(get(&healthz, "sweep_workers")) >= 1.0);
    assert!(matches!(get(&healthz, "cache_bytes"), Json::Null));
    assert!(matches!(get(&healthz, "state_dir"), Json::Bool(false)));
    server.stop().expect("clean shutdown");
}
