//! Cross-sweep workspace pooling.
//!
//! The vendored rayon has no work-stealing pool: `map_init` re-runs its
//! init closure once per worker on *every* parallel call. A chunked sweep
//! (the server's fair-share executor runs jobs one attacker-chunk at a
//! time) would therefore reallocate every per-thread workspace — each
//! O(ASes + slots) once warmed — per worker per chunk. At paper scale
//! (42,697 ASes, ~278k directed slots) that is tens of megabytes of
//! allocator churn per chunk before a single attack runs. A
//! [`WorkspacePool`] parks workspaces between calls instead: `map_init`
//! checks one out (creating it only the first time) and the guard returns
//! it on drop, so a sweep's thousandth chunk reuses the warmed allocations
//! of its first.
//!
//! The pool never shrinks; its high-water mark is the largest number of
//! workspaces ever live at once, which rayon caps at the worker count.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A lock-guarded stash of reusable workspaces. The mutex is touched once
/// per checkout/return — per rayon worker per parallel call, never per
/// attack — so contention is negligible next to the work it brackets.
#[derive(Debug, Default)]
pub(crate) struct WorkspacePool<T> {
    stash: Mutex<Vec<T>>,
}

impl<T: Default> WorkspacePool<T> {
    /// Takes a parked workspace, or creates a fresh one if the stash is
    /// empty. The guard returns it on drop — including during a panic
    /// unwind, so a poisoned run cannot leak the allocation.
    pub(crate) fn checkout(&self) -> PoolGuard<'_, T> {
        let item = lock_recover(&self.stash).pop().unwrap_or_default();
        PoolGuard {
            pool: self,
            item: Some(item),
        }
    }
}

/// Checkout handle: derefs to the workspace, returns it to the pool on
/// drop.
#[derive(Debug)]
pub(crate) struct PoolGuard<'a, T: Default> {
    pool: &'a WorkspacePool<T>,
    item: Option<T>,
}

impl<T: Default> Deref for PoolGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("present until drop")
    }
}

impl<T: Default> DerefMut for PoolGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("present until drop")
    }
}

impl<T: Default> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            lock_recover(&self.pool.stash).push(item);
        }
    }
}

/// Locks ignoring poison: a workspace parked by a panicking worker is
/// still structurally valid (the engines' epoch stamping makes any
/// half-written state invisible to the next run).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_items() {
        let pool: WorkspacePool<Vec<u32>> = WorkspacePool::default();
        {
            let mut a = pool.checkout();
            a.push(7);
            a.reserve(100);
        }
        // The same allocation comes back: contents intact (callers reset
        // state themselves — the engines' epoch stamps make that free).
        let b = pool.checkout();
        assert_eq!(*b, vec![7]);
        assert!(b.capacity() >= 100);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_items() {
        let pool: WorkspacePool<Vec<u32>> = WorkspacePool::default();
        let mut a = pool.checkout();
        let mut b = pool.checkout();
        a.push(1);
        b.push(2);
        assert_eq!((*a).as_slice(), &[1]);
        assert_eq!((*b).as_slice(), &[2]);
        drop(a);
        drop(b);
        assert_eq!(lock_recover(&pool.stash).len(), 2);
    }

    #[test]
    fn guard_returns_item_during_unwind() {
        let pool: WorkspacePool<Vec<u32>> = WorkspacePool::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = pool.checkout();
            g.push(9);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(lock_recover(&pool.stash).len(), 1);
    }
}
