//! Owned defensive configurations, reusable across many attacks.
//!
//! [`bgpsim_routing::FilterContext`] borrows its validator set and binds a
//! specific authorized origin; [`Defense`] is the owning, attack-agnostic
//! form: the simulator derives a per-attack `FilterContext` from it by
//! plugging in the target under attack.

use bgpsim_routing::{AsSet, FilterContext};
use bgpsim_topology::{AsIndex, Topology};

/// A deployment of defensive mechanisms, independent of any particular
/// attack.
#[derive(Debug, Clone, Default)]
pub struct Defense {
    validators: Option<AsSet>,
    stub_defense: bool,
}

impl Defense {
    /// No defenses at all — the paper's baseline.
    pub fn none() -> Defense {
        Defense::default()
    }

    /// Route-origin validation deployed at the given ASes.
    pub fn validators<I>(topo: &Topology, members: I) -> Defense
    where
        I: IntoIterator<Item = AsIndex>,
    {
        Defense {
            validators: Some(AsSet::from_members(topo, members)),
            stub_defense: false,
        }
    }

    /// Enables provider-side defensive filtering of stub customers (the
    /// paper's §IV "optimistic case") on top of the current configuration.
    #[must_use]
    pub fn with_stub_defense(mut self) -> Defense {
        self.stub_defense = true;
        self
    }

    /// Only stub defense, no origin validation.
    pub fn stub_defense_only() -> Defense {
        Defense::none().with_stub_defense()
    }

    /// Number of ASes performing origin validation.
    pub fn num_validators(&self) -> usize {
        self.validators.as_ref().map_or(0, AsSet::count)
    }

    /// Whether the given AS validates origins under this defense.
    pub fn is_validator(&self, ix: AsIndex) -> bool {
        self.validators.as_ref().is_some_and(|v| v.contains(ix))
    }

    /// Whether provider-side stub filtering is enabled.
    pub fn has_stub_defense(&self) -> bool {
        self.stub_defense
    }

    /// Whether this defense can keep an attacker's contamination cone
    /// local (any origin validation or stub filtering deployed). This is
    /// the predicate [`crate::Simulator`]'s adaptive dispatch keys on:
    /// localizing defenses make baseline replay profitable, while against
    /// an undefended network the cone is the whole graph and racing the
    /// origins directly is cheaper. Servers use the same predicate to
    /// decide whether a cached baseline is worth building.
    pub fn localizes(&self) -> bool {
        self.num_validators() > 0 || self.stub_defense
    }

    /// Binds this defense to a prefix whose legitimate origin is
    /// `authorized`, producing the per-propagation filter context.
    pub fn context_for(&self, authorized: AsIndex) -> FilterContext<'_> {
        FilterContext {
            authorized_origin: Some(authorized),
            validators: self.validators.as_ref(),
            stub_defense: self.stub_defense,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, LinkKind::*};

    #[test]
    fn construction_and_queries() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (2, 3, PeerToPeer)]);
        let d = Defense::validators(&topo, [AsIndex::new(0), AsIndex::new(2)]);
        assert_eq!(d.num_validators(), 2);
        assert!(d.is_validator(AsIndex::new(0)));
        assert!(!d.is_validator(AsIndex::new(1)));
        assert!(!d.has_stub_defense());
        let d = d.with_stub_defense();
        assert!(d.has_stub_defense());
        let ctx = d.context_for(AsIndex::new(1));
        assert_eq!(ctx.authorized_origin, Some(AsIndex::new(1)));
        assert!(ctx.stub_defense);
        assert!(ctx.rejects_origin(AsIndex::new(0), AsIndex::new(2)));
        assert!(!ctx.rejects_origin(AsIndex::new(0), AsIndex::new(1)));
    }

    #[test]
    fn none_rejects_nothing() {
        let d = Defense::none();
        assert_eq!(d.num_validators(), 0);
        let ctx = d.context_for(AsIndex::new(0));
        assert!(!ctx.rejects_origin(AsIndex::new(1), AsIndex::new(2)));
    }
}
