//! Attack specifications and single-attack outcomes.

use bgpsim_topology::{AddressSpace, AsIndex};

/// The kind of prefix hijack being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttackKind {
    /// The attacker originates the target's exact prefix; the two
    /// announcements compete under normal route selection (the paper's
    /// primary scenario).
    #[default]
    OriginHijack,
    /// The attacker originates a more-specific prefix. Longest-prefix match
    /// means there is no competition: every AS that hears the bogus
    /// announcement is polluted regardless of its route to the target
    /// (listed as future work in the paper's §VIII; included as an
    /// extension).
    SubPrefixHijack,
    /// The attacker announces the target's exact prefix with a *forged AS
    /// path* that ends in the target's own ASN ("type-1" hijack). Origin
    /// validation sees the legitimate origin and passes the route — this
    /// is the attack class that motivates full path validation (S*BGP),
    /// discussed in the paper's §II. Included as an extension.
    ForgedOriginHijack,
}

/// One attacker / target pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Attack {
    /// The AS originating the bogus announcement.
    pub attacker: AsIndex,
    /// The legitimate holder of the prefix.
    pub target: AsIndex,
    /// Exact-prefix or sub-prefix hijack.
    pub kind: AttackKind,
}

impl Attack {
    /// An origin hijack of `target`'s prefix by `attacker`.
    ///
    /// # Panics
    ///
    /// Panics if `attacker == target`.
    pub fn origin(attacker: AsIndex, target: AsIndex) -> Attack {
        assert_ne!(attacker, target, "an AS cannot hijack itself");
        Attack {
            attacker,
            target,
            kind: AttackKind::OriginHijack,
        }
    }

    /// A sub-prefix hijack of `target`'s prefix by `attacker`.
    ///
    /// # Panics
    ///
    /// Panics if `attacker == target`.
    pub fn sub_prefix(attacker: AsIndex, target: AsIndex) -> Attack {
        assert_ne!(attacker, target, "an AS cannot hijack itself");
        Attack {
            attacker,
            target,
            kind: AttackKind::SubPrefixHijack,
        }
    }

    /// A forged-origin (path-prepending) hijack of `target`'s prefix by
    /// `attacker`.
    ///
    /// # Panics
    ///
    /// Panics if `attacker == target`.
    pub fn forged_origin(attacker: AsIndex, target: AsIndex) -> Attack {
        assert_ne!(attacker, target, "an AS cannot hijack itself");
        Attack {
            attacker,
            target,
            kind: AttackKind::ForgedOriginHijack,
        }
    }
}

/// Result of simulating one attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The attack that was simulated.
    pub attack: Attack,
    /// ASes whose best route for the contested prefix leads to the
    /// attacker (excluding the attacker itself), in index order.
    pub polluted: Vec<AsIndex>,
    /// Generations until convergence.
    pub generations: u32,
    /// Whether the propagation hit the generation cap.
    pub truncated: bool,
}

impl AttackOutcome {
    /// Number of polluted ASes — the paper's headline metric.
    pub fn pollution_count(&self) -> usize {
        self.polluted.len()
    }

    /// Whether a specific AS was polluted.
    pub fn is_polluted(&self, ix: AsIndex) -> bool {
        self.polluted.binary_search(&ix).is_ok()
    }

    /// Number of polluted ASes within `members` (a sorted or unsorted
    /// region roster) — §VII counts compromised ASes per region.
    pub fn pollution_within(&self, members: &[AsIndex]) -> usize {
        members.iter().filter(|&&m| self.is_polluted(m)).count()
    }

    /// Fraction of total address space originated by polluted ASes —
    /// fig. 1 reports "96 % of the internet address space can no longer
    /// reach the target".
    pub fn address_space_fraction(&self, space: &AddressSpace) -> f64 {
        space.fraction_of(self.polluted.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, LinkKind::*, Topology};

    fn space(topo: &Topology) -> AddressSpace {
        AddressSpace::uniform(topo, 2)
    }

    #[test]
    #[should_panic(expected = "cannot hijack itself")]
    fn self_attack_panics() {
        let _ = Attack::origin(AsIndex::new(1), AsIndex::new(1));
    }

    #[test]
    fn outcome_accessors() {
        let topo = topology_from_triples(&[(1, 2, ProviderToCustomer), (1, 3, PeerToPeer)]);
        let outcome = AttackOutcome {
            attack: Attack::origin(AsIndex::new(0), AsIndex::new(1)),
            polluted: vec![AsIndex::new(2)],
            generations: 3,
            truncated: false,
        };
        assert_eq!(outcome.pollution_count(), 1);
        assert!(outcome.is_polluted(AsIndex::new(2)));
        assert!(!outcome.is_polluted(AsIndex::new(1)));
        assert_eq!(
            outcome.pollution_within(&[AsIndex::new(1), AsIndex::new(2)]),
            1
        );
        let f = outcome.address_space_fraction(&space(&topo));
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kinds_differ() {
        let a = Attack::origin(AsIndex::new(0), AsIndex::new(1));
        let s = Attack::sub_prefix(AsIndex::new(0), AsIndex::new(1));
        assert_ne!(a.kind, s.kind);
        assert_eq!(AttackKind::default(), AttackKind::OriginHijack);
    }
}
