//! The hijack simulator: single attacks and parallel sweeps.
//!
//! Sweeps are *incremental*: all attacks against one target share the
//! target's honest convergence. [`Simulator::sweep_attackers_within`] and
//! [`Simulator::run_batch`] build one [`Baseline`] (converged state plus
//! recorded message schedule) per target, share it read-only across rayon
//! workers, and re-converge each attacker with [`propagate_delta`] in a
//! per-thread [`DeltaWorkspace`] — bit-identical outcomes (the
//! `delta_equivalence` suite in the routing crate pins this) at a fraction
//! of the cost, since only the attacker's contamination cone is simulated.
//! Strict Gao-Rexford configurations dispatch to the closed-form stable
//! solver instead, which is faster still.
//!
//! Dispatch is *adaptive*: against an undefended network an exact-prefix
//! hijack perturbs nearly every AS (the paper's §IV observation that
//! attackers pollute up to ~96% of the network), so the contamination cone
//! is the whole graph and schedule replay costs slightly more than just
//! racing both origins from scratch. Baseline reuse therefore kicks in
//! only when the defense (origin validation and/or defensive stub
//! filtering) can quench the attacker's routes and keep the cone local —
//! the §V regime, where re-convergence collapses to microseconds per
//! attacker. The `sweep_delta` Criterion bench measures both regimes.

use std::collections::HashMap;

use bgpsim_routing::{
    propagate_announcements, propagate_delta, solve, Announcement, Baseline, DeltaWorkspace,
    NullObserver, Observer, PolicyConfig, Propagation, SimNet, Workspace,
};
use bgpsim_topology::{AsIndex, Topology};
use rayon::prelude::*;

use crate::attack::{Attack, AttackKind, AttackOutcome};
use crate::defense::Defense;

/// Simulates origin and sub-prefix hijacks on one topology.
///
/// Owns the precomputed [`SimNet`] so repeated attacks share its tables;
/// the parallel sweep methods distribute attacks across rayon workers with
/// one reusable [`Workspace`] per thread.
///
/// # Examples
///
/// ```
/// use bgpsim_hijack::{Attack, Defense, Simulator};
/// use bgpsim_routing::PolicyConfig;
/// use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*};
///
/// let topo = topology_from_triples(&[
///     (1, 9, ProviderToCustomer),
///     (1, 8, ProviderToCustomer),
/// ]);
/// let sim = Simulator::new(&topo, PolicyConfig::paper());
/// let t = topo.index_of(AsId::new(9)).unwrap();
/// let a = topo.index_of(AsId::new(8)).unwrap();
/// let outcome = sim.run(Attack::origin(a, t), &Defense::none());
/// assert!(outcome.pollution_count() <= topo.num_ases());
/// ```
#[derive(Debug)]
pub struct Simulator<'t> {
    net: SimNet<'t>,
    policy: PolicyConfig,
}

impl<'t> Simulator<'t> {
    /// Builds a simulator over `topo` with the given policy.
    pub fn new(topo: &'t Topology, policy: PolicyConfig) -> Simulator<'t> {
        Simulator {
            net: SimNet::new(topo),
            policy,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.net.topology()
    }

    /// The precomputed simulation network.
    pub fn net(&self) -> &SimNet<'t> {
        &self.net
    }

    /// The active policy configuration.
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// Simulates one attack with a fresh workspace.
    pub fn run(&self, attack: Attack, defense: &Defense) -> AttackOutcome {
        self.run_observed(attack, defense, &mut Workspace::new(), &mut NullObserver)
    }

    /// Simulates one attack with a caller-provided workspace and observer
    /// (pass a [`bgpsim_routing::TraceRecorder`] to capture every message
    /// for visualization).
    pub fn run_observed<O: Observer>(
        &self,
        attack: Attack,
        defense: &Defense,
        ws: &mut Workspace,
        obs: &mut O,
    ) -> AttackOutcome {
        let ctx = defense.context_for(attack.target);
        let announcements: Vec<Announcement> = match attack.kind {
            // Exact-prefix: both origins compete for the same prefix.
            AttackKind::OriginHijack => vec![
                Announcement::honest(attack.target),
                Announcement::honest(attack.attacker),
            ],
            // Sub-prefix: longest-prefix match sidesteps competition — only
            // the bogus more-specific announcement propagates.
            AttackKind::SubPrefixHijack => vec![Announcement::honest(attack.attacker)],
            // Forged origin: the bogus path claims the target's ASN, so
            // route-origin validation cannot distinguish it.
            AttackKind::ForgedOriginHijack => vec![
                Announcement::honest(attack.target),
                Announcement::forged(attack.attacker, attack.target),
            ],
        };
        let p = propagate_announcements(&self.net, &announcements, &ctx, &self.policy, ws, obs);
        let polluted = polluted_set(&p, attack);
        AttackOutcome {
            attack,
            polluted,
            generations: p.stats().generations,
            truncated: p.stats().truncated,
        }
    }

    /// Attacks `target` from every AS in `attackers` (skipping the target
    /// itself) and returns one pollution count per attacker, in input
    /// order. Runs on all rayon workers.
    ///
    /// This is the paper's §IV measurement: "sequentially attacking a
    /// target AS by each of the 42,696 other ASes and recording the number
    /// of polluted ASes".
    pub fn sweep_attackers(
        &self,
        target: AsIndex,
        attackers: &[AsIndex],
        defense: &Defense,
    ) -> Vec<u32> {
        self.sweep_attackers_within(target, attackers, defense, None)
    }

    /// Like [`Simulator::sweep_attackers`], but counting only polluted ASes
    /// inside `region` when given (§VII's regional containment metric).
    ///
    /// With a defense deployed, the honest propagation of `target` runs
    /// once; each attacker re-converges incrementally from that shared
    /// baseline, so counting is O(contamination cone) per attacker, not
    /// O(network). Undefended sweeps race both origins from scratch (the
    /// cone is the whole network there, see the module docs); strict
    /// Gao-Rexford policy uses the closed-form stable solver instead.
    pub fn sweep_attackers_within(
        &self,
        target: AsIndex,
        attackers: &[AsIndex],
        defense: &Defense,
        region: Option<&[AsIndex]>,
    ) -> Vec<u32> {
        let mask: Option<Vec<bool>> = region.map(|members| {
            let mut m = vec![false; self.net.num_ases()];
            for &ix in members {
                m[ix.usize()] = true;
            }
            m
        });
        let in_mask = |ix: AsIndex| mask.as_deref().is_none_or(|m| m[ix.usize()]);
        let ctx = defense.context_for(target);
        if !self.policy.tier1_shortest_path {
            // Strict Gao-Rexford: the stable solution is unique and the
            // closed-form solver computes it directly.
            return attackers
                .par_iter()
                .map(|&attacker| {
                    if attacker == target {
                        return 0;
                    }
                    let p = solve(&self.net, &[target, attacker], &ctx, &self.policy);
                    p.captured_by(attacker).filter(|&ix| in_mask(ix)).count() as u32
                })
                .collect();
        }
        if !defense_localizes(defense) {
            // Undefended: every AS hears the attacker, the cone is the
            // whole graph, and replaying the baseline schedule on top of
            // it costs more than racing the two origins directly.
            return attackers
                .par_iter()
                .map_init(Workspace::new, |ws, &attacker| {
                    if attacker == target {
                        return 0;
                    }
                    let p = propagate_announcements(
                        &self.net,
                        &[Announcement::honest(target), Announcement::honest(attacker)],
                        &ctx,
                        &self.policy,
                        ws,
                        &mut NullObserver,
                    );
                    p.captured_by(attacker).filter(|&ix| in_mask(ix)).count() as u32
                })
                .collect();
        }
        let baseline = Baseline::build(
            &self.net,
            &[Announcement::honest(target)],
            &ctx,
            &self.policy,
            &mut Workspace::new(),
        );
        attackers
            .par_iter()
            .map_init(DeltaWorkspace::new, |dws, &attacker| {
                if attacker == target {
                    return 0;
                }
                let delta = propagate_delta(
                    &self.net,
                    &baseline,
                    &[Announcement::honest(attacker)],
                    &ctx,
                    &self.policy,
                    dws,
                    &mut NullObserver,
                );
                // The baseline routes only to the target, so every AS now
                // routing to the attacker is in the cone: counting over
                // `touched` is exhaustive.
                delta
                    .touched()
                    .filter(|&ix| {
                        ix != attacker
                            && in_mask(ix)
                            && delta.choice(ix).is_some_and(|c| c.origin == attacker)
                    })
                    .count() as u32
            })
            .collect()
    }

    /// Runs a batch of arbitrary attacks in parallel, returning full
    /// outcomes (polluted lists included) in input order.
    ///
    /// Exact-prefix attacks (origin and forged-origin hijacks) sharing a
    /// target re-converge incrementally from one shared baseline of that
    /// target whenever a localizing defense is deployed and the target
    /// draws at least two such attacks; everything else runs from scratch.
    /// Outcomes are bit-identical either way, except `generations`, which
    /// counts the waves of whichever engine ran (an incremental run steps
    /// only the attacker's re-convergence).
    pub fn run_batch(&self, attacks: &[Attack], defense: &Defense) -> Vec<AttackOutcome> {
        // A baseline pays for itself once a target is attacked twice —
        // and only if the defense keeps contamination cones local.
        let mut exact_attacks: HashMap<AsIndex, u32> = HashMap::new();
        if defense_localizes(defense) {
            for attack in attacks {
                if attack.kind != AttackKind::SubPrefixHijack {
                    *exact_attacks.entry(attack.target).or_default() += 1;
                }
            }
        }
        let mut ws = Workspace::new();
        let baselines: HashMap<AsIndex, Baseline> = exact_attacks
            .iter()
            .filter(|&(_, &count)| count >= 2)
            .map(|(&target, _)| {
                let ctx = defense.context_for(target);
                let baseline = Baseline::build(
                    &self.net,
                    &[Announcement::honest(target)],
                    &ctx,
                    &self.policy,
                    &mut ws,
                );
                (target, baseline)
            })
            .collect();
        attacks
            .par_iter()
            .map_init(
                || (Workspace::new(), DeltaWorkspace::new()),
                |(ws, dws), &attack| match baselines.get(&attack.target) {
                    Some(baseline) if attack.kind != AttackKind::SubPrefixHijack => {
                        self.run_delta(attack, baseline, defense, dws)
                    }
                    _ => self.run_observed(attack, defense, ws, &mut NullObserver),
                },
            )
            .collect()
    }

    /// One incremental attack against a prebuilt baseline of the target's
    /// honest propagation (exact-prefix kinds only).
    fn run_delta(
        &self,
        attack: Attack,
        baseline: &Baseline,
        defense: &Defense,
        dws: &mut DeltaWorkspace,
    ) -> AttackOutcome {
        let ctx = defense.context_for(attack.target);
        let injection = match attack.kind {
            AttackKind::OriginHijack => Announcement::honest(attack.attacker),
            AttackKind::ForgedOriginHijack => Announcement::forged(attack.attacker, attack.target),
            AttackKind::SubPrefixHijack => unreachable!("sub-prefix attacks run from scratch"),
        };
        let delta = propagate_delta(
            &self.net,
            baseline,
            &[injection],
            &ctx,
            &self.policy,
            dws,
            &mut NullObserver,
        );
        let polluted = match attack.kind {
            AttackKind::OriginHijack => {
                // Origin capture implies a changed selection, so the cone
                // is exhaustive; sort to restore the index-order contract.
                let mut polluted: Vec<AsIndex> = delta
                    .touched()
                    .filter(|&ix| {
                        ix != attack.attacker
                            && delta
                                .choice(ix)
                                .is_some_and(|c| c.origin == attack.attacker)
                    })
                    .collect();
                polluted.sort_unstable();
                polluted
            }
            // The forged path claims the target's origin; pollution is a
            // property of the learned-from chain, which the memoized walk
            // needs the full selection map for.
            _ => polluted_set(&delta.to_propagation(), attack),
        };
        AttackOutcome {
            attack,
            polluted,
            generations: delta.stats().generations,
            truncated: delta.stats().truncated,
        }
    }
}

/// Whether a defense can keep contamination cones local. Without any
/// filtering every AS adopts or at least hears the bogus route, the cone
/// is the whole network, and incremental re-convergence cannot beat a
/// from-scratch race (measured ~3× slower on the 2k-AS lab topology);
/// with validators or stub filtering deployed, cones collapse and the
/// delta engine wins by 1–2 orders of magnitude.
fn defense_localizes(defense: &Defense) -> bool {
    defense.num_validators() > 0 || defense.has_stub_defense()
}

/// Computes the polluted set for an outcome: for honest hijacks, every AS
/// whose selected route origin is the attacker; for forged-origin hijacks,
/// every AS whose selection chain physically terminates at the attacker
/// (the route *claims* the target as origin — that is the evasion).
fn polluted_set(p: &Propagation, attack: Attack) -> Vec<AsIndex> {
    match attack.kind {
        AttackKind::OriginHijack | AttackKind::SubPrefixHijack => {
            p.captured_by(attack.attacker).collect()
        }
        AttackKind::ForgedOriginHijack => {
            // Memoized chain walk: does the learned_from chain end at the
            // attacker?
            let n = p.choices().len();
            let mut state = vec![0u8; n]; // 0 unknown, 1 clean, 2 polluted
            let mut stack: Vec<AsIndex> = Vec::new();
            let mut polluted = Vec::new();
            for i in 0..n {
                let mut cur = AsIndex::new(i as u32);
                stack.clear();
                let verdict = loop {
                    match state[cur.usize()] {
                        1 => break 1,
                        2 => break 2,
                        _ => {}
                    }
                    let Some(choice) = p.choice(cur) else { break 1 };
                    match choice.learned_from {
                        None => break if cur == attack.attacker { 2 } else { 1 },
                        Some(from) => {
                            stack.push(cur);
                            cur = from;
                        }
                    }
                };
                state[cur.usize()] = verdict;
                for &visited in &stack {
                    state[visited.usize()] = verdict;
                }
                if verdict == 2 && state[i] == 2 && i != attack.attacker.usize() {
                    polluted.push(AsIndex::new(i as u32));
                }
            }
            polluted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_topology::{topology_from_triples, AsId, LinkKind::*, Topology};

    fn ix(topo: &Topology, n: u32) -> AsIndex {
        topo.index_of(AsId::new(n)).unwrap()
    }

    /// Two providers peering, each with customers.
    fn topo() -> Topology {
        topology_from_triples(&[
            (1, 2, PeerToPeer),
            (1, 9, ProviderToCustomer),
            (2, 8, ProviderToCustomer),
            (1, 5, ProviderToCustomer),
            (2, 6, ProviderToCustomer),
        ])
    }

    #[test]
    fn origin_hijack_outcome() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let outcome = sim.run(Attack::origin(ix(&t, 8), ix(&t, 9)), &Defense::none());
        // Attacker's side of the mesh: 2 and 6.
        assert_eq!(outcome.pollution_count(), 2);
        assert!(outcome.is_polluted(ix(&t, 2)));
        assert!(outcome.is_polluted(ix(&t, 6)));
        assert!(!outcome.is_polluted(ix(&t, 9)));
        assert!(!outcome.truncated);
        assert!(outcome.generations >= 1);
    }

    #[test]
    fn sub_prefix_hijack_pollutes_everyone_reachable() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let outcome = sim.run(Attack::sub_prefix(ix(&t, 8), ix(&t, 9)), &Defense::none());
        // No competition: every other AS (including the target) follows the
        // more-specific bogus prefix.
        assert_eq!(outcome.pollution_count(), t.num_ases() - 1);
        assert!(outcome.is_polluted(ix(&t, 9)));
    }

    #[test]
    fn sub_prefix_hijack_still_blocked_by_validators() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let all: Vec<AsIndex> = t.indices().collect();
        let defense = Defense::validators(&t, all);
        let outcome = sim.run(Attack::sub_prefix(ix(&t, 8), ix(&t, 9)), &defense);
        assert_eq!(outcome.pollution_count(), 0);
    }

    #[test]
    fn forged_origin_evades_universal_rov() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let all: Vec<AsIndex> = t.indices().collect();
        let defense = Defense::validators(&t, all);
        let (a, tgt) = (ix(&t, 8), ix(&t, 9));
        // Universal origin validation stops the plain origin hijack...
        let plain = sim.run(Attack::origin(a, tgt), &defense);
        assert_eq!(plain.pollution_count(), 0);
        // ...but the forged-origin path sails through ROV.
        let forged = sim.run(Attack::forged_origin(a, tgt), &defense);
        assert!(
            forged.pollution_count() > 0,
            "forged-origin hijack must evade origin validation"
        );
        // The victim itself still rejects the forgery (its own ASN is on
        // the bogus path), so it is never polluted.
        assert!(!forged.is_polluted(tgt));
    }

    #[test]
    fn forged_origin_is_weaker_than_unvalidated_origin_hijack() {
        // The forged path is one hop longer, so with no defenses it
        // captures no more than the plain hijack.
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let (a, tgt) = (ix(&t, 8), ix(&t, 9));
        let plain = sim.run(Attack::origin(a, tgt), &Defense::none());
        let forged = sim.run(Attack::forged_origin(a, tgt), &Defense::none());
        assert!(forged.pollution_count() <= plain.pollution_count());
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let target = ix(&t, 9);
        let attackers: Vec<AsIndex> = t.indices().collect();
        let counts = sim.sweep_attackers(target, &attackers, &Defense::none());
        assert_eq!(counts.len(), attackers.len());
        for (&attacker, &count) in attackers.iter().zip(&counts) {
            if attacker == target {
                assert_eq!(count, 0, "target row must be zero");
                continue;
            }
            let single = sim.run(Attack::origin(attacker, target), &Defense::none());
            assert_eq!(
                single.pollution_count() as u32,
                count,
                "sweep mismatch for attacker {attacker}"
            );
        }
    }

    #[test]
    fn regional_mask_restricts_counts() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let target = ix(&t, 9);
        let attackers = vec![ix(&t, 8)];
        let region = vec![ix(&t, 6)];
        let within =
            sim.sweep_attackers_within(target, &attackers, &Defense::none(), Some(&region));
        assert_eq!(within, vec![1]); // only AS6 counted
        let total = sim.sweep_attackers(target, &attackers, &Defense::none());
        assert!(total[0] >= within[0]);
    }

    #[test]
    fn run_batch_preserves_order() {
        let t = topo();
        let sim = Simulator::new(&t, PolicyConfig::paper());
        let attacks = vec![
            Attack::origin(ix(&t, 8), ix(&t, 9)),
            Attack::origin(ix(&t, 9), ix(&t, 8)),
        ];
        let outcomes = sim.run_batch(&attacks, &Defense::none());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].attack, attacks[0]);
        assert_eq!(outcomes[1].attack, attacks[1]);
    }
}
